"""Export surfaces: JSONL event sink, Prometheus text format, summaries.

Three consumers are served:

* **Tooling / offline analysis** — :class:`JsonlSink` appends one JSON
  object per line: every finished span (``{"type": "span", ...}``) and,
  on demand, whole-registry snapshots (``{"type": "metrics", ...}``).
* **Scrapers** — :func:`write_prom` renders the registry in the
  Prometheus text exposition format (version 0.0.4) for a node
  exporter's textfile collector or a CI artifact.
* **Tests** — :func:`summary` flattens the registry into plain dicts
  keyed by metric name and serialised label set.

:class:`InMemorySink` collects span dicts in a list — the natural sink
for assertions about span trees.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "JsonlSink",
    "InMemorySink",
    "render_prom",
    "write_prom",
    "summary",
    "metrics_event",
]


class InMemorySink:
    """Collects finished-span dicts in :attr:`spans` (newest last)."""

    def __init__(self) -> None:
        self.spans: List[Dict] = []

    def on_span(self, record: Dict) -> None:
        self.spans.append(record)

    def by_name(self, name: str) -> List[Dict]:
        """All collected spans with the given name."""
        return [s for s in self.spans if s["name"] == name]


class JsonlSink:
    """Append-only JSONL event file; usable as a context manager.

    Registered as a tracing sink it receives every finished span;
    :meth:`write_event` lets callers interleave their own records (the
    CLI appends a final ``{"type": "metrics"}`` registry snapshot).
    Lines are flushed per event so a crashed run still leaves a
    readable prefix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")

    def on_span(self, record: Dict) -> None:
        self.write_event(record)

    def write_event(self, record: Dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_string(names, values, extra: Optional[Dict[str, str]] = None) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.extend(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in extra.items()
        )
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    return repr(float(value))


def render_prom(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text format (a string, ``\\n``-joined)."""
    registry = registry or get_registry()
    lines: List[str] = []
    for metric in registry.instruments():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        names = metric.label_names
        if isinstance(metric, (Counter, Gauge)):
            for values, child in metric.series():
                lines.append(
                    f"{metric.name}{_label_string(names, values)} "
                    f"{_format_value(child)}"
                )
        elif isinstance(metric, HistogramMetric):
            for values, child in metric.series():
                running = 0
                for bound, count in zip(metric.buckets, child.counts):
                    running += count
                    le = _label_string(names, values, {"le": repr(bound)})
                    lines.append(f"{metric.name}_bucket{le} {running}")
                inf = _label_string(names, values, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{inf} {child.count}")
                plain = _label_string(names, values)
                lines.append(
                    f"{metric.name}_sum{plain} {_format_value(child.sum)}"
                )
                lines.append(f"{metric.name}_count{plain} {child.count}")
    return "\n".join(lines) + "\n"


def write_prom(
    path: Union[str, Path], registry: Optional[MetricsRegistry] = None
) -> Path:
    """Write :func:`render_prom` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_prom(registry), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Plain-dict summaries
# ----------------------------------------------------------------------
def _series_key(names, values) -> str:
    return ",".join(f"{n}={v}" for n, v in zip(names, values))


def summary(registry: Optional[MetricsRegistry] = None) -> Dict[str, Dict]:
    """Flatten the registry: ``{metric: {label_key: value-or-snapshot}}``.

    The label key is ``""`` for unlabelled series, otherwise
    ``"name=value"`` pairs joined by commas in declaration order.
    Counter/gauge series map to floats; histogram series map to
    ``{"count", "sum", "buckets"}`` dicts with cumulative buckets.
    """
    registry = registry or get_registry()
    out: Dict[str, Dict] = {}
    for metric in registry.instruments():
        series: Dict[str, object] = {}
        names = metric.label_names
        if isinstance(metric, (Counter, Gauge)):
            for values, child in metric.series():
                series[_series_key(names, values)] = float(child)
        elif isinstance(metric, HistogramMetric):
            for values, child in metric.series():
                running = 0
                buckets: Dict[str, int] = {}
                for bound, count in zip(metric.buckets, child.counts):
                    running += count
                    buckets[repr(bound)] = running
                buckets["+Inf"] = child.count
                series[_series_key(names, values)] = {
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": buckets,
                }
        out[metric.name] = series
    return out


def metrics_event(registry: Optional[MetricsRegistry] = None) -> Dict:
    """A ``{"type": "metrics"}`` JSONL record snapshotting the registry."""
    return {
        "type": "metrics",
        "time": time.time(),
        "metrics": summary(registry),
    }
