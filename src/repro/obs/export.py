"""Export surfaces: JSONL event sink, Prometheus text format, summaries.

Three consumers are served:

* **Tooling / offline analysis** — :class:`JsonlSink` appends one JSON
  object per line: every finished span (``{"type": "span", ...}``) and,
  on demand, whole-registry snapshots (``{"type": "metrics", ...}``).
* **Scrapers** — :func:`write_prom` renders the registry in the
  Prometheus text exposition format (version 0.0.4) for a node
  exporter's textfile collector or a CI artifact.
* **Tests** — :func:`summary` flattens the registry into plain dicts
  keyed by metric name and serialised label set.

:class:`InMemorySink` collects span dicts in a list — the natural sink
for assertions about span trees.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "JsonlSink",
    "InMemorySink",
    "render_prom",
    "write_prom",
    "parse_prom",
    "summary",
    "metrics_event",
    "funnel_snapshot",
    "FUNNEL_STAGES",
]


class InMemorySink:
    """Collects finished-span dicts in :attr:`spans` (newest last)."""

    def __init__(self) -> None:
        self.spans: List[Dict] = []

    def on_span(self, record: Dict) -> None:
        self.spans.append(record)

    def by_name(self, name: str) -> List[Dict]:
        """All collected spans with the given name."""
        return [s for s in self.spans if s["name"] == name]


class JsonlSink:
    """Append-only JSONL event file; usable as a context manager.

    Registered as a tracing sink it receives every finished span;
    :meth:`write_event` lets callers interleave their own records (the
    CLI appends a final ``{"type": "metrics"}`` registry snapshot).
    Lines are flushed per event so a crashed run still leaves a
    readable prefix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")

    def on_span(self, record: Dict) -> None:
        self.write_event(record)

    def write_event(self, record: Dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition spec (v0.0.4).

    Backslash, double-quote and line feed are the three characters the
    spec requires escaping — and host labels sourced from quarantined
    ingest can contain all of them (arbitrary bytes survive the CSV
    dead-letter path).  Carriage returns would also tear the line
    grammar, so they are normalised into the ``\\n`` escape as well.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\r\n", "\n")
        .replace("\r", "\n")
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and line feed (not double-quote)."""
    return (
        text.replace("\\", "\\\\")
        .replace("\r\n", "\n")
        .replace("\r", "\n")
        .replace("\n", "\\n")
    )


def _label_string(names, values, extra: Optional[Dict[str, str]] = None) -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.extend(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in extra.items()
        )
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    return repr(float(value))


def render_prom(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text format (a string, ``\\n``-joined)."""
    registry = registry or get_registry()
    lines: List[str] = []
    for metric in registry.instruments():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        names = metric.label_names
        if isinstance(metric, (Counter, Gauge)):
            for values, child in metric.series():
                lines.append(
                    f"{metric.name}{_label_string(names, values)} "
                    f"{_format_value(child)}"
                )
        elif isinstance(metric, HistogramMetric):
            for values, child in metric.series():
                running = 0
                for bound, count in zip(metric.buckets, child.counts):
                    running += count
                    le = _label_string(names, values, {"le": repr(bound)})
                    lines.append(f"{metric.name}_bucket{le} {running}")
                inf = _label_string(names, values, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{inf} {child.count}")
                plain = _label_string(names, values)
                lines.append(
                    f"{metric.name}_sum{plain} {_format_value(child.sum)}"
                )
                lines.append(f"{metric.name}_count{plain} {child.count}")
    return "\n".join(lines) + "\n"


def write_prom(
    path: Union[str, Path], registry: Optional[MetricsRegistry] = None
) -> Path:
    """Write :func:`render_prom` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_prom(registry), encoding="utf-8")
    return path


def _parse_labels(body: str) -> Dict[str, str]:
    """The label dict of one ``{name="value",...}`` sample section."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq].lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        j = eq + 2
        raw: List[str] = []
        while True:
            ch = body[j]
            if ch == "\\":
                raw.append(body[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        labels[name] = _unescape_label_value("".join(raw))
        i = j + 1
    return labels


def parse_prom(text: str) -> Dict[str, Dict]:
    """Parse text-exposition samples back into nested dicts.

    Returns ``{sample_name: {label_items: value}}`` where
    ``label_items`` is the sorted ``(name, value)`` tuple of the
    sample's labels (``()`` for unlabelled samples).  Histogram
    ``_bucket``/``_sum``/``_count`` samples appear under those expanded
    names.  This is the inverse of :func:`render_prom` for counters and
    gauges — the escaping round-trip test and the live-scrape validator
    are its consumers; it is deliberately strict and raises
    ``ValueError`` on lines it cannot parse.
    """
    out: Dict[str, Dict] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                body, value_part = rest.rsplit("}", 1)
                labels = _parse_labels(body)
            else:
                name, value_part = line.split(" ", 1)
                labels = {}
            value = float(value_part.strip())
        except (ValueError, IndexError) as exc:
            raise ValueError(f"line {lineno}: cannot parse {line!r}") from exc
        out.setdefault(name, {})[tuple(sorted(labels.items()))] = value
    return out


# ----------------------------------------------------------------------
# Plain-dict summaries
# ----------------------------------------------------------------------
def _series_key(names, values) -> str:
    return ",".join(f"{n}={v}" for n, v in zip(names, values))


def summary(registry: Optional[MetricsRegistry] = None) -> Dict[str, Dict]:
    """Flatten the registry: ``{metric: {label_key: value-or-snapshot}}``.

    The label key is ``""`` for unlabelled series, otherwise
    ``"name=value"`` pairs joined by commas in declaration order.
    Counter/gauge series map to floats; histogram series map to
    ``{"count", "sum", "buckets"}`` dicts with cumulative buckets.
    """
    registry = registry or get_registry()
    out: Dict[str, Dict] = {}
    for metric in registry.instruments():
        series: Dict[str, object] = {}
        names = metric.label_names
        if isinstance(metric, (Counter, Gauge)):
            for values, child in metric.series():
                series[_series_key(names, values)] = float(child)
        elif isinstance(metric, HistogramMetric):
            for values, child in metric.series():
                running = 0
                buckets: Dict[str, int] = {}
                for bound, count in zip(metric.buckets, child.counts):
                    running += count
                    buckets[repr(bound)] = running
                buckets["+Inf"] = child.count
                series[_series_key(names, values)] = {
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": buckets,
                }
        out[metric.name] = series
    return out


def metrics_event(registry: Optional[MetricsRegistry] = None) -> Dict:
    """A ``{"type": "metrics"}`` JSONL record snapshotting the registry."""
    return {
        "type": "metrics",
        "time": time.time(),
        "metrics": summary(registry),
    }


#: Canonical stage order of the detection funnel (Figure 9).
FUNNEL_STAGES = ("reduction", "theta_vol", "theta_churn", "theta_hm")

_FUNNEL_GAUGES = (
    ("repro_stage_input_hosts", "input_hosts"),
    ("repro_stage_surviving_hosts", "surviving_hosts"),
    ("repro_stage_threshold", "threshold"),
)


def funnel_snapshot(registry: Optional[MetricsRegistry] = None) -> List[Dict]:
    """The current stage-funnel state as a list of per-stage dicts.

    Reads the ``repro_stage_*`` gauges (set by both the batch pipeline
    and the online detector's evaluations) and returns
    ``[{"stage", "input_hosts", "surviving_hosts", "threshold"}, ...]``
    in canonical funnel order; stages never recorded are omitted.  The
    ``/summary`` HTTP endpoint and the run ledger both serve this.
    """
    flat = summary(registry)
    stages: Dict[str, Dict] = {}
    for metric, field in _FUNNEL_GAUGES:
        for key, value in flat.get(metric, {}).items():
            if not key.startswith("stage="):
                continue
            stages.setdefault(key[len("stage=") :], {})[field] = value
    known = [s for s in FUNNEL_STAGES if s in stages]
    extra = sorted(s for s in stages if s not in FUNNEL_STAGES)
    return [{"stage": s, **stages[s]} for s in known + extra]
