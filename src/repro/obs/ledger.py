"""Persistent run ledger: one atomic directory per pipeline run.

An eight-day deployment produces hundreds of windows and dozens of
configuration tweaks; reconstructing *why* run A flagged host H while
run B did not must not require re-reading a single flow.  The ledger
records every run's conclusions durably:

``<ledger_dir>/<run_id>/``
    ``run.json``      — the manifest: run id, kind, status (ok/error
                        with the exception summary), wall time, config
                        snapshot, environment, stage-funnel counts,
                        sorted suspect list + SHA-256 checksum,
                        degradation report, extra result fields.
    ``spans.jsonl``   — every finished span of the run (the full tree,
                        worker spans included), one JSON dict per line.
    ``metrics.json``  — the final registry summary
                        (:func:`repro.obs.export.summary` form).
    ``metrics.prom``  — the same registry in Prometheus text format.

Atomicity: a run records into a hidden staging directory
(``.staging-<run_id>``) that is ``os.rename``'d to its final name only
once every file is written — readers never observe a half-written run,
and a crash leaves only a staging directory that the next
:class:`RunLedger` construction sweeps away.

Failures are first-class: the recorder is a context manager, and a run
body that raises is recorded with ``status="error"`` and the exception
type/message before the exception propagates — a crashed run is
exactly the run you want a ledger entry for.

The read side (:meth:`RunLedger.runs`, :meth:`RunLedger.load`,
:func:`diff_runs`) powers the ``repro-obs`` CLI: ``list`` / ``show`` /
``diff`` / ``funnel`` answer suspect-set and per-stage-attrition
questions across runs from the manifests alone.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from . import metrics as _metrics
from . import tracing as _tracing
from .export import InMemorySink, funnel_snapshot, render_prom, summary
from .logconf import get_logger

__all__ = ["LEDGER_ENV", "RunLedger", "RunRecorder", "diff_runs"]

#: Environment fallback for ``--ledger-dir`` (both CLIs honour it).
LEDGER_ENV = "REPRO_LEDGER_DIR"

MANIFEST_NAME = "run.json"
SPANS_NAME = "spans.jsonl"
METRICS_NAME = "metrics.json"
PROM_NAME = "metrics.prom"
_STAGING_PREFIX = ".staging-"

logger = get_logger("obs.ledger")


def _utcnow() -> datetime:
    return datetime.now(timezone.utc)


def _environment() -> Dict:
    """The run's provenance: interpreter, platform, process, argv."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def suspects_checksum(suspects: Iterable[str]) -> str:
    """Order-independent SHA-256 of a suspect set (its canonical JSON)."""
    canonical = json.dumps(sorted(str(s) for s in suspects))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _jsonable(value):
    """Best-effort plain-data coercion for config/degradation objects."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(v) for v in value]
        return sorted(items, key=str) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class RunRecorder:
    """Record one run; write its ledger directory atomically on exit.

    Created by :meth:`RunLedger.record`.  While the context is open the
    recorder collects every finished span through a private sink;
    :meth:`set_funnel`, :meth:`set_suspects`, :meth:`set_degradations`
    and :meth:`annotate` attach the run's conclusions.  On exit —
    normal or exceptional — the final registry snapshot is taken, the
    staging directory is populated and renamed into place, and (only
    then) any exception propagates.
    """

    def __init__(
        self,
        ledger: "RunLedger",
        kind: str,
        config: Optional[object] = None,
        command: Optional[Sequence[str]] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.ledger = ledger
        self.kind = kind
        self.config = config
        self.command = list(command) if command is not None else None
        self.registry = registry or _metrics.get_registry()
        started = _utcnow()
        self.started_at = started
        self.run_id = (
            f"{started.strftime('%Y%m%dT%H%M%S')}-{kind}-{os.getpid()}"
        )
        self._t0 = time.perf_counter()
        self._sink = InMemorySink()
        self._funnel: Optional[List[Dict]] = None
        self._suspects: Optional[List[str]] = None
        self._degradations: List[Dict] = []
        self._extra: Dict[str, object] = {}
        self._closed = False

    # -- annotation API -------------------------------------------------
    def set_funnel(self, funnel: Sequence[Dict]) -> None:
        """Record explicit per-stage funnel counts (else gauges are read)."""
        self._funnel = [dict(stage) for stage in funnel]

    def set_suspects(self, suspects: Iterable[str]) -> None:
        """Record the run's final suspect set (sorted + checksummed)."""
        self._suspects = sorted(str(s) for s in suspects)

    def set_degradations(self, degradations: Iterable[object]) -> None:
        """Record the run's resilience summary (Degradation objects/dicts)."""
        self._degradations = [_jsonable(d) for d in degradations]

    def record_pipeline_result(self, result) -> None:
        """Convenience: funnel + suspects + degradations from a
        :class:`~repro.detection.pipeline.PipelineResult`."""
        self.set_funnel(result.funnel())
        self.set_suspects(result.suspects)
        self.set_degradations(result.degradations)

    def annotate(self, **fields: object) -> None:
        """Attach arbitrary result fields to the manifest (``result`` key)."""
        for key, value in fields.items():
            self._extra[key] = _jsonable(value)

    # -- context protocol -----------------------------------------------
    def __enter__(self) -> "RunRecorder":
        _tracing.add_sink(self._sink)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _tracing.remove_sink(self._sink)
        status = "ok" if exc_type is None else "error"
        error = None if exc is None else f"{exc_type.__name__}: {exc}"
        try:
            self._write(status, error)
        except OSError:
            if exc_type is None:
                raise
            # The run is already failing; losing its ledger entry to a
            # second I/O failure must not mask the original exception.
            logger.warning(
                "could not write ledger entry for failed run %s",
                self.run_id,
                exc_info=True,
            )

    # -- persistence ----------------------------------------------------
    def _manifest(self, status: str, error: Optional[str]) -> Dict:
        finished = _utcnow()
        funnel = (
            self._funnel
            if self._funnel is not None
            else funnel_snapshot(self.registry)
        )
        manifest = {
            "ledger_version": 1,
            "run_id": self.run_id,
            "kind": self.kind,
            "status": status,
            "error": error,
            "started": self.started_at.isoformat(),
            "finished": finished.isoformat(),
            "duration_seconds": time.perf_counter() - self._t0,
            "command": self.command,
            "config": _jsonable(self.config),
            "environment": _environment(),
            "funnel": funnel,
            "degradations": self._degradations,
            "n_spans": len(self._sink.spans),
            "result": self._extra,
        }
        if self._suspects is not None:
            manifest["suspects"] = self._suspects
            manifest["n_suspects"] = len(self._suspects)
            manifest["suspects_sha256"] = suspects_checksum(self._suspects)
        return manifest

    def _write(self, status: str, error: Optional[str]) -> Path:
        if self._closed:
            raise RuntimeError(f"run {self.run_id} already recorded")
        self._closed = True
        root = self.ledger.root
        root.mkdir(parents=True, exist_ok=True)
        final = root / self.run_id
        seq = 0
        while final.exists():  # same second + same pid: disambiguate
            seq += 1
            final = root / f"{self.run_id}.{seq}"
        staging = root / f"{_STAGING_PREFIX}{final.name}"
        if staging.exists():
            _remove_tree(staging)
        staging.mkdir(parents=True)
        manifest = self._manifest(status, error)
        manifest["run_id"] = final.name
        with open(staging / SPANS_NAME, "w", encoding="utf-8") as fh:
            for record in self._sink.spans:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        (staging / METRICS_NAME).write_text(
            json.dumps(summary(self.registry), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        (staging / PROM_NAME).write_text(
            render_prom(self.registry), encoding="utf-8"
        )
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.rename(staging, final)  # the atomic publish
        self.run_id = final.name
        logger.info("ledger: recorded run %s (%s)", final.name, status)
        return final


def _remove_tree(path: Path) -> None:
    for child in sorted(path.rglob("*"), reverse=True):
        if child.is_dir():
            child.rmdir()
        else:
            child.unlink()
    path.rmdir()


class RunLedger:
    """The on-disk collection of recorded runs under one directory."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self._sweep_staging()

    def _sweep_staging(self) -> None:
        """Remove half-written staging directories from crashed runs."""
        if not self.root.is_dir():
            return
        for entry in self.root.iterdir():
            if entry.name.startswith(_STAGING_PREFIX) and entry.is_dir():
                logger.warning(
                    "ledger: sweeping crashed staging dir %s", entry.name
                )
                _remove_tree(entry)

    # -- write side -----------------------------------------------------
    def record(
        self,
        kind: str,
        config: Optional[object] = None,
        command: Optional[Sequence[str]] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> RunRecorder:
        """A context-managed recorder for one run of the given kind."""
        return RunRecorder(self, kind, config, command, registry)

    # -- read side ------------------------------------------------------
    def run_ids(self) -> List[str]:
        """Recorded run ids, oldest first (ids sort chronologically)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(_STAGING_PREFIX)
            and (entry / MANIFEST_NAME).is_file()
        )

    def resolve(self, ref: str) -> str:
        """A full run id from an exact id, unique prefix, or negative
        index (``-1`` = most recent)."""
        ids = self.run_ids()
        if ref in ids:
            return ref
        try:
            index = int(ref)
        except ValueError:
            pass
        else:
            if -len(ids) <= index < len(ids):
                return ids[index]
            raise KeyError(f"run index {ref} out of range ({len(ids)} runs)")
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no run matches {ref!r}")
        raise KeyError(f"ambiguous run ref {ref!r}: {matches}")

    def load(self, ref: str) -> Dict:
        """The manifest of one run (``ref`` as in :meth:`resolve`)."""
        run_id = self.resolve(ref)
        path = self.root / run_id / MANIFEST_NAME
        return json.loads(path.read_text(encoding="utf-8"))

    def load_spans(self, ref: str) -> List[Dict]:
        """Every recorded span dict of one run, in finish order."""
        run_id = self.resolve(ref)
        path = self.root / run_id / SPANS_NAME
        if not path.is_file():
            return []
        return [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    def load_metrics(self, ref: str) -> Dict:
        """The final registry summary of one run."""
        run_id = self.resolve(ref)
        path = self.root / run_id / METRICS_NAME
        if not path.is_file():
            return {}
        return json.loads(path.read_text(encoding="utf-8"))

    def runs(self) -> List[Dict]:
        """All manifests, oldest first (skipping unreadable entries)."""
        out = []
        for run_id in self.run_ids():
            try:
                out.append(self.load(run_id))
            except (OSError, ValueError):
                logger.warning("ledger: unreadable manifest for %s", run_id)
        return out


def diff_runs(a: Dict, b: Dict) -> Dict:
    """Structured comparison of two run manifests (no flow data read).

    Returns suspect-set delta (added/removed/common counts), per-stage
    funnel deltas, changed config keys, status/duration movement — the
    payload behind ``repro-obs diff``.
    """
    suspects_a = set(a.get("suspects") or ())
    suspects_b = set(b.get("suspects") or ())
    funnel_a = {s["stage"]: s for s in a.get("funnel") or ()}
    funnel_b = {s["stage"]: s for s in b.get("funnel") or ()}
    stages = list(funnel_a) + [s for s in funnel_b if s not in funnel_a]
    funnel_delta = []
    for stage in stages:
        sa, sb = funnel_a.get(stage, {}), funnel_b.get(stage, {})
        entry = {"stage": stage}
        for field in ("input_hosts", "surviving_hosts", "threshold"):
            va, vb = sa.get(field), sb.get(field)
            entry[field] = {
                "a": va,
                "b": vb,
                "delta": (vb - va) if va is not None and vb is not None else None,
            }
        funnel_delta.append(entry)
    config_a = a.get("config") or {}
    config_b = b.get("config") or {}
    if not isinstance(config_a, dict) or not isinstance(config_b, dict):
        config_changes = {} if config_a == config_b else {"config": [config_a, config_b]}
    else:
        config_changes = {
            key: [config_a.get(key), config_b.get(key)]
            for key in sorted(set(config_a) | set(config_b))
            if config_a.get(key) != config_b.get(key)
        }
    return {
        "a": a.get("run_id"),
        "b": b.get("run_id"),
        "status": {"a": a.get("status"), "b": b.get("status")},
        "duration_seconds": {
            "a": a.get("duration_seconds"),
            "b": b.get("duration_seconds"),
        },
        "suspects": {
            "added": sorted(suspects_b - suspects_a),
            "removed": sorted(suspects_a - suspects_b),
            "common": len(suspects_a & suspects_b),
            "checksum_equal": (
                a.get("suspects_sha256") is not None
                and a.get("suspects_sha256") == b.get("suspects_sha256")
            ),
        },
        "funnel": funnel_delta,
        "config_changes": config_changes,
        "degradations": {
            "a": len(a.get("degradations") or ()),
            "b": len(b.get("degradations") or ()),
        },
    }
