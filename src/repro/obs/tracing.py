"""Lightweight span tracing for the detection pipeline.

A *span* measures one named unit of work — a pipeline stage, a
clustering pass, an online-window evaluation — recording wall-clock
and CPU time plus arbitrary attributes (host counts, thresholds,
backends).  Spans nest: a context-variable stack links each span to
its parent, so one ``find_plotters`` run produces a tree::

    find_plotters
      reduction        input_hosts=412 surviving_hosts=206 threshold=0.031
      theta_vol        input_hosts=206 surviving_hosts=104 ...
      theta_churn      ...
      theta_hm         input_hosts=129 surviving_hosts=18  ...
        cluster_hosts  hosts=97 pairs=4656 backend=vectorized
          emd_matrix
          linkage

Usage::

    with span("theta_hm", hosts=len(union)) as s:
        result = ...
        s.set(surviving=len(result.selected))

Tracing obeys the same module-level switch as the metrics registry
(:func:`repro.obs.metrics.enable`): while disabled, :func:`span`
yields a shared no-op object and touches neither the clock nor the
context variable.  Finished spans are serialised to dicts and handed
to every registered sink (see :class:`repro.obs.export.JsonlSink`);
each span's wall time is additionally observed into the
``repro_span_seconds{span=...}`` histogram so stage durations appear
in the Prometheus exposition without a separate code path.

Exceptions propagate: a span whose body raises is finalised with
``status="error"`` and the exception's type/message, then re-raised.
The context-variable stack makes nesting correct across threads and
asyncio tasks alike.  Sinks must not raise; a sink that does is
reported through the ``repro.obs`` logger and otherwise ignored, so
telemetry failures never break detection.
"""

from __future__ import annotations

import contextvars
import itertools
import logging
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from . import metrics as _metrics

__all__ = [
    "Span",
    "span",
    "current_span",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "replay_span_records",
]

_STACK: contextvars.ContextVar[Tuple["Span", ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)
_NEXT_ID = itertools.count(1)
_SINKS: List[object] = []

#: Every finished span's wall time lands here, labelled by span name —
#: this is how stage durations reach the Prometheus exposition.
_SPAN_SECONDS = _metrics.histogram(
    "repro_span_seconds",
    "Wall-clock duration of traced spans",
    labels=("span",),
)


class Span:
    """One traced unit of work; mutable until its context exits."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attrs",
        "start_wall",
        "wall_seconds",
        "cpu_seconds",
        "status",
        "error",
    )

    def __init__(
        self, name: str, span_id: int, parent: Optional["Span"], attrs: Dict
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.attrs = attrs
        self.start_wall = time.time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, object]:
        """The JSONL event form of the finished span."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start_wall,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Stands in for a :class:`Span` while observability is disabled."""

    __slots__ = ()
    name = None
    span_id = None
    parent_id = None
    depth = -1
    attrs: Dict[str, object] = {}
    status = "disabled"

    def set(self, **attrs: object) -> None:
        pass


_NOOP = _NoopSpan()


def current_span() -> Optional[Span]:
    """The innermost live span of this context, or ``None``."""
    stack = _STACK.get()
    return stack[-1] if stack else None


def add_sink(sink: object) -> None:
    """Register a sink; it receives ``on_span(dict)`` per finished span."""
    if sink not in _SINKS:
        _SINKS.append(sink)


def remove_sink(sink: object) -> None:
    """Unregister a sink (no error if absent)."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def clear_sinks() -> None:
    """Unregister every sink."""
    del _SINKS[:]


def replay_span_records(records) -> None:
    """Deliver already-finished span dicts to this process's sinks.

    The cross-process merge path: a pool worker collects its finished
    spans in an :class:`~repro.obs.export.InMemorySink` and ships the
    dicts home with its metrics delta; the parent replays them here so
    JSONL traces include worker-side spans.  Replay is *sink-only* —
    the worker already observed each span into its own
    ``repro_span_seconds`` histogram, which arrives via the metrics
    delta, so re-observing here would double-count.  Sinks must not
    raise; one that does is logged and skipped, as in live emission.
    """
    for record in records:
        for sink in list(_SINKS):
            try:
                sink.on_span(record)
            except Exception:  # telemetry must never break detection
                logging.getLogger("repro.obs").warning(
                    "span sink %r failed on replay", sink, exc_info=True
                )


def _emit(finished: Span) -> None:
    _SPAN_SECONDS.observe(finished.wall_seconds or 0.0, span=finished.name)
    if not _SINKS:
        return
    record = finished.to_dict()
    for sink in list(_SINKS):
        try:
            sink.on_span(record)
        except Exception:  # telemetry must never break detection
            logging.getLogger("repro.obs").warning(
                "span sink %r failed", sink, exc_info=True
            )


@contextmanager
def span(name: str, **attrs: object):
    """Trace one unit of work; yields the live :class:`Span`.

    No-op (yields a shared inert object) while observability is
    disabled.  On exit the span is timed, pushed to every sink, and its
    wall time observed into ``repro_span_seconds``.
    """
    if not _metrics.is_enabled():
        yield _NOOP
        return
    parent = current_span()
    live = Span(name, next(_NEXT_ID), parent, dict(attrs))
    token = _STACK.set(_STACK.get() + (live,))
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        yield live
    except BaseException as exc:
        live.status = "error"
        live.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        live.wall_seconds = time.perf_counter() - wall0
        live.cpu_seconds = time.process_time() - cpu0
        _STACK.reset(token)
        _emit(live)
