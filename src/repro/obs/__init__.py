"""repro.obs — the pipeline-wide observability layer.

One import point for the three concerns:

* **Metrics** (:mod:`repro.obs.metrics`) — process-local counters,
  gauges and histograms with labels, behind a module-level no-op
  switch (:func:`enable` / :func:`disable`).
* **Tracing** (:mod:`repro.obs.tracing`) — nested wall/CPU-timed spans
  (``with span("theta_hm", hosts=n):``) delivered to pluggable sinks.
* **Export** (:mod:`repro.obs.export`) — JSONL event files, Prometheus
  text exposition, and plain-dict summaries for tests.

Everything is off by default and costs one boolean check per
instrumented site; a typical opt-in looks like::

    from repro import obs

    obs.enable()
    sink = obs.JsonlSink("metrics.jsonl")
    obs.add_sink(sink)
    try:
        result = find_plotters(store, hosts)
    finally:
        sink.write_event(obs.metrics_event())
        obs.write_prom("metrics.prom")
        obs.remove_sink(sink)
        sink.close()
        obs.disable()

See ``docs/observability.md`` for the metric and span inventory.
"""

from .export import (
    InMemorySink,
    JsonlSink,
    metrics_event,
    render_prom,
    summary,
    write_prom,
)
from .logconf import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    is_enabled,
)
from .tracing import (
    Span,
    add_sink,
    clear_sinks,
    current_span,
    remove_sink,
    span,
)

__all__ = [
    # switch
    "enable",
    "disable",
    "is_enabled",
    # metrics
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    # tracing
    "Span",
    "span",
    "current_span",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    # export
    "JsonlSink",
    "InMemorySink",
    "render_prom",
    "write_prom",
    "summary",
    "metrics_event",
    # logging
    "configure_logging",
    "get_logger",
]
