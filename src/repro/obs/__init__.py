"""repro.obs — the pipeline-wide observability layer.

One import point for the three concerns:

* **Metrics** (:mod:`repro.obs.metrics`) — process-local counters,
  gauges and histograms with labels, behind a module-level no-op
  switch (:func:`enable` / :func:`disable`).
* **Tracing** (:mod:`repro.obs.tracing`) — nested wall/CPU-timed spans
  (``with span("theta_hm", hosts=n):``) delivered to pluggable sinks.
* **Export** (:mod:`repro.obs.export`) — JSONL event files, Prometheus
  text exposition, and plain-dict summaries for tests.
* **Live endpoint** (:mod:`repro.obs.http`) — a background-thread HTTP
  server exposing ``/metrics``, ``/healthz`` and ``/summary`` mid-run.
* **Run ledger** (:mod:`repro.obs.ledger`) — one atomic directory per
  run (manifest, spans, final metrics); inspected with ``repro-obs``.
* **Session** (:mod:`repro.obs.session`) — :class:`ObsSession`, the
  crash-safe lifecycle behind the CLIs' shared telemetry flags.

Metrics are also *cross-process*: the registry is delta-serializable,
and pool workers ship their deltas home with each shard result (see
:mod:`repro.flows.parallel`), so parallel runs report the same totals
as sequential ones.

Everything is off by default and costs one boolean check per
instrumented site; a typical opt-in looks like::

    from repro import obs

    with obs.ObsSession(
        metrics_out="metrics.jsonl",
        prom_out="metrics.prom",
        ledger_dir="runs/",
        kind="adhoc",
    ) as session:
        result = find_plotters(store, hosts)
        session.record_result(result)

See ``docs/observability.md`` for the metric and span inventory.
"""

from .export import (
    FUNNEL_STAGES,
    InMemorySink,
    JsonlSink,
    funnel_snapshot,
    metrics_event,
    parse_prom,
    render_prom,
    summary,
    write_prom,
)
from .http import MetricsServer
from .ledger import RunLedger, RunRecorder, diff_runs
from .logconf import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    is_enabled,
)
from .session import ObsSession, add_observability_args
from .tracing import (
    Span,
    add_sink,
    clear_sinks,
    current_span,
    remove_sink,
    replay_span_records,
    span,
)

__all__ = [
    # switch
    "enable",
    "disable",
    "is_enabled",
    # metrics
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    # tracing
    "Span",
    "span",
    "current_span",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "replay_span_records",
    # export
    "JsonlSink",
    "InMemorySink",
    "render_prom",
    "write_prom",
    "parse_prom",
    "summary",
    "metrics_event",
    "funnel_snapshot",
    "FUNNEL_STAGES",
    # live endpoint / ledger / session
    "MetricsServer",
    "RunLedger",
    "RunRecorder",
    "diff_runs",
    "ObsSession",
    "add_observability_args",
    # logging
    "configure_logging",
    "get_logger",
]
