"""Live telemetry endpoint: a background-thread HTTP metrics server.

One :class:`MetricsServer` exposes the process's observability state
over three read-only endpoints while a run is in flight:

* ``GET /metrics`` — the registry in Prometheus text exposition format
  (version 0.0.4, via :func:`repro.obs.export.render_prom`), ready for
  a Prometheus scrape job;
* ``GET /healthz`` — a small JSON liveness document (status, uptime,
  whether recording is enabled);
* ``GET /summary`` — the flattened registry
  (:func:`repro.obs.export.summary`) plus the current stage-funnel
  snapshot (:func:`repro.obs.export.funnel_snapshot`) and any extra
  state the embedding component contributes — the JSON face of the
  same telemetry, for dashboards and scripts.

The server runs on a daemon thread (one per instance) and binds
``127.0.0.1`` by default — it is an introspection port, not a public
API.  ``port=0`` asks the OS for an ephemeral port; the bound port is
readable from :attr:`MetricsServer.port` and the full base URL from
:attr:`MetricsServer.url`.  Handlers only *read* registry snapshots,
so scraping mid-run never blocks or perturbs detection beyond the
instruments' own per-series locks.

Embedding components can mount additional endpoints next to the three
built-ins with :meth:`MetricsServer.add_route` (or the ``routes=``
constructor argument): a route maps ``(method, path)`` to a callable
``handler(body, query) -> (status, payload)`` where ``payload`` is a
dict (rendered as JSON), ``str`` (text/plain) or ready
``(content_type, bytes)``.  A handler may instead return a three-tuple
``(status, payload, headers)`` to attach extra response headers (the
serve plane's ``Retry-After`` on 429).  ``POST`` routes receive the
request body; this is how :mod:`repro.serve` turns the metrics server
into the service control plane (``/ingest``, ``/verdicts``,
``/shards``, …) without a second HTTP stack.

Clients that hang up mid-response (a curl ^C, a drained soak harness)
raise ``BrokenPipeError``/``ConnectionResetError`` inside the handler
thread; those are a fact of network life, not a server fault, so they
are logged at DEBUG and never as a traceback.

Both CLIs expose this as ``--prom-port``; ``OnlineDetector`` accepts a
``prom_port=`` argument so a tumbling-window run can be scraped while
it fills.  Use as a context manager or call :meth:`close`::

    with MetricsServer(port=0) as server:
        print(server.url)          # http://127.0.0.1:49512
        run_long_pipeline()        # scrape /metrics at any moment
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from . import metrics as _metrics
from .export import funnel_snapshot, render_prom, summary
from .logconf import get_logger

__all__ = ["MetricsServer", "PROM_CONTENT_TYPE", "RouteHandler"]

#: Signature of a mounted route: ``handler(body, query)`` returning
#: ``(status, payload)`` — ``payload`` a dict (JSON), ``str``
#: (text/plain) or a ``(content_type, bytes)`` pair — or
#: ``(status, payload, headers)`` with a ``{name: value}`` dict of
#: extra response headers.
RouteHandler = Callable[[Optional[bytes], str], Tuple[int, object]]

#: Content type of the text exposition format, version 0.0.4.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

logger = get_logger("obs.http")


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`MetricsServer` instance."""

    # Set per-server via the type() call in MetricsServer.__init__.
    server_ref: "MetricsServer"

    protocol_version = "HTTP/1.1"

    def _send(
        self,
        status: int,
        content_type: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        payload: Dict,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        self._send(
            status, "application/json; charset=utf-8", body, headers=headers
        )

    def _send_payload(
        self,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Render a route handler's payload (dict/str/(ctype, bytes))."""
        if isinstance(payload, dict):
            self._send_json(payload, status=status, headers=headers)
        elif isinstance(payload, str):
            self._send(
                status,
                "text/plain; charset=utf-8",
                payload.encode("utf-8"),
                headers=headers,
            )
        else:
            content_type, body = payload
            self._send(status, content_type, bytes(body), headers=headers)

    def _dispatch(self, method: str, body: Optional[bytes]) -> None:
        server = self.server_ref
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        try:
            route = server.route(method, path)
            if route is not None:
                result = route(body, query)
                if len(result) == 3:
                    status, payload, headers = result
                else:
                    status, payload = result
                    headers = None
                self._send_payload(status, payload, headers=headers)
            elif method == "GET" and path == "/metrics":
                prom = render_prom(server.registry).encode("utf-8")
                self._send(200, PROM_CONTENT_TYPE, prom)
            elif method == "GET" and path == "/healthz":
                self._send_json(server.health())
            elif method == "GET" and path in ("/summary", "/"):
                self._send_json(server.summary())
            else:
                self._send_json({"error": f"unknown path {path}"}, status=404)
        except (BrokenPipeError, ConnectionResetError) as exc:
            # The client hung up; the run is fine.  No traceback, no
            # WARNING — disconnects are routine under chaos soaks.
            logger.debug("client disconnected on %s: %s", path, exc)
            self.close_connection = True  # nothing left to say to them
        except Exception as exc:  # telemetry must never take down a run
            logger.warning("metrics endpoint %s failed: %s", path, exc)
            try:
                self._send_json({"error": str(exc)}, status=500)
            except OSError:
                pass  # client hung up mid-error; nothing left to say

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET", None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        body = self.rfile.read(length) if length > 0 else b""
        self._dispatch("POST", body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)


class _QuietServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that does not traceback on disconnects.

    The stock ``handle_error`` prints a full traceback to stderr for
    *any* exception escaping a handler thread — including the
    ``BrokenPipeError`` of a client vanishing between our dispatch
    try/except and the socket teardown.  Keep real faults loud, make
    disconnects a DEBUG line.
    """

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            logger.debug("client %s disconnected: %s", client_address, exc)
            return
        logger.warning(
            "error handling request from %s: %s", client_address, exc
        )


class MetricsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/summary`` from a thread.

    Parameters
    ----------
    port:
        TCP port to bind (``0`` = ephemeral, read :attr:`port` after).
    host:
        Bind address (default loopback).
    registry:
        Metrics registry to expose (default: the process registry).
    extra_summary:
        Optional zero-argument callable whose dict return value is
        merged into the ``/summary`` document under ``"state"`` — how
        the online detector publishes its window index and history
        depth without the server knowing detector internals.
    routes:
        Optional ``{(method, path): handler}`` map of additional
        endpoints (see :data:`RouteHandler`); routes win over the
        built-in paths and can also be added later with
        :meth:`add_route`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[_metrics.MetricsRegistry] = None,
        extra_summary: Optional[Callable[[], Dict]] = None,
        routes: Optional[Dict[Tuple[str, str], RouteHandler]] = None,
    ) -> None:
        self.registry = registry or _metrics.get_registry()
        self.extra_summary = extra_summary
        self._routes: Dict[Tuple[str, str], RouteHandler] = dict(routes or {})
        self.started_at = time.time()
        handler = type("_BoundHandler", (_Handler,), {"server_ref": self})
        self._httpd = _QuietServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        logger.info("serving telemetry on %s", self.url)

    # -- routing --------------------------------------------------------
    def add_route(self, method: str, path: str, handler: RouteHandler) -> None:
        """Mount ``handler`` at ``(method, path)`` (e.g. ``POST /ingest``)."""
        self._routes[(method.upper(), path.rstrip("/") or "/")] = handler

    def route(self, method: str, path: str) -> Optional[RouteHandler]:
        """The mounted handler for ``(method, path)``, or ``None``."""
        return self._routes.get((method.upper(), path))

    # -- documents ------------------------------------------------------
    def health(self) -> Dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "recording": _metrics.is_enabled(),
        }

    def summary(self) -> Dict:
        doc = {
            "metrics": summary(self.registry),
            "funnel": funnel_snapshot(self.registry),
            "recording": _metrics.is_enabled(),
        }
        if self.extra_summary is not None:
            try:
                doc["state"] = dict(self.extra_summary())
            except Exception as exc:  # never fail the scrape over extras
                doc["state"] = {"error": str(exc)}
        return doc

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join(timeout=5.0)
            self._httpd = None  # type: ignore[assignment]

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
