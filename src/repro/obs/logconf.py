"""Namespaced logging for the repro package.

Library modules log through ``logging.getLogger("repro.<area>")`` and
never touch handlers; an application (the CLIs, a notebook, a service)
opts into output once with :func:`configure_logging`.  The helper is
idempotent — repeated calls re-level the existing handler instead of
stacking duplicates — and leaves the root logger alone, so embedding
the library in a host application with its own logging setup stays
clean.

Diagnostics go to *stderr* by default: both CLIs write their data
(tables, per-host listings) to stdout, and keeping the streams separate
means ``repro-experiments fig9 > results.txt`` captures the figure
while progress lines stay visible.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO, Union

__all__ = ["configure_logging", "get_logger"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Attribute stamped on the handler installed by :func:`configure_logging`
#: so repeated calls find and reuse it.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(area: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<area>`` child."""
    return logging.getLogger("repro" if not area else f"repro.{area}")


def configure_logging(
    level: Union[int, str] = logging.INFO,
    stream: Optional[TextIO] = None,
    fmt: str = _FORMAT,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger and set its level.

    Parameters
    ----------
    level:
        A :mod:`logging` level (int or name, e.g. ``"DEBUG"``).
    stream:
        Destination (default ``sys.stderr``).
    fmt:
        Record format string.

    Returns the configured ``repro`` logger.  Idempotent: a second call
    updates the existing handler's level/stream/format in place.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_MARK, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt, datefmt=_DATE_FORMAT))
    # The handler does the talking; don't double-log through the root.
    logger.propagate = False
    return logger
