"""Process-local metrics: counters, gauges and histograms with labels.

The observability layer is *opt-in*: a single module-level switch
(:func:`enable` / :func:`disable`) gates every mutation.  While
disabled — the default — each instrument method returns after one
boolean check, so instrumented hot paths cost essentially nothing
(the θ_hm kernel additionally hoists the check out of its block loop;
see :func:`repro.stats.emd._condensed_blocks`).

Instruments are Prometheus-shaped:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — a value that can go up and down (set/inc/dec);
* :class:`HistogramMetric` — cumulative-bucket observations with
  ``sum`` and ``count``.

Every instrument may declare label *names* at creation; each distinct
combination of label *values* gets its own independent child series,
addressed by keyword arguments on the mutation methods::

    pairs = counter("repro_emd_pairs_total", "EMD pairs", labels=("backend",))
    pairs.inc(1225, backend="vectorized")
    pairs.value(backend="vectorized")  # 1225.0

All mutations are thread-safe (one lock per instrument).  Metrics are
*recorded* process-locally, but the registry is **delta-serializable**:
:meth:`MetricsRegistry.state` snapshots every series into plain
picklable containers, :meth:`MetricsRegistry.delta_since` subtracts a
baseline snapshot from the current values, and
:meth:`MetricsRegistry.merge_delta` folds such a delta into another
process's registry.  The multi-process extraction engine
(:mod:`repro.flows.parallel`) uses exactly this loop: each worker
snapshots its registry at shard start, ships the delta back with the
shard payload, and the parent merges — so worker-side counters
(``repro_storage_*``, kernel histograms) survive the pool instead of
dying with it, and a merged parallel run's counter totals are
bit-equal to a sequential run's.

The module-level :func:`counter` / :func:`gauge` / :func:`histogram`
helpers create instruments in the default registry, which
:func:`repro.obs.export.write_prom` and
:func:`repro.obs.export.summary` read.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "DEFAULT_BUCKETS",
]

#: The global no-op switch.  Mutations check this first and return
#: immediately when ``False``; reads always work.
_ENABLED = False


def enable() -> None:
    """Turn metric recording (and span tracing) on, process-wide."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn metric recording off; instruments become no-ops again."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    """Whether the observability layer is currently recording."""
    return _ENABLED


#: Default histogram buckets — tuned for sub-second kernel/stage
#: timings (seconds).  The +Inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _Instrument:
    """Shared plumbing: name/help/labels and the child-series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.label_names)

    def _child(self, labels: Dict[str, object], default):
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children.setdefault(key, default())
        return child

    def clear(self) -> None:
        """Drop every child series (used by registry reset)."""
        with self._lock:
            self._children.clear()

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Snapshot of ``(label_values, child)`` pairs, sorted."""
        with self._lock:
            return sorted(self._children.items())

    # -- delta serialization -------------------------------------------
    def _spec(self) -> Dict[str, object]:
        """The instrument's identity as plain picklable data."""
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
        }

    def _series_state(self) -> Dict[Tuple[str, ...], object]:
        """``{label_values: plain-value}`` for every child series."""
        raise NotImplementedError

    def _apply_delta(self, key: Tuple[str, ...], value: object) -> None:
        """Fold one serialized series delta into this instrument."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up; inc() needs amount >= 0")
        with self._lock:
            key = self._key(labels)
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def _series_state(self) -> Dict[Tuple[str, ...], object]:
        with self._lock:
            return {key: float(value) for key, value in self._children.items()}

    def _apply_delta(self, key: Tuple[str, ...], value: object) -> None:
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + float(value)


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._children[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not _ENABLED:
            return
        with self._lock:
            key = self._key(labels)
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def _series_state(self) -> Dict[Tuple[str, ...], object]:
        with self._lock:
            return {key: float(value) for key, value in self._children.items()}

    def _apply_delta(self, key: Tuple[str, ...], value: object) -> None:
        # Gauges describe a current level, not a flow: the shipped
        # value overwrites (last writer wins), exactly as a local
        # ``set`` would.
        with self._lock:
            self._children[key] = float(value)


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class HistogramMetric(_Instrument):
    """Bucketed observations with Prometheus cumulative exposition."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not _ENABLED:
            return
        with self._lock:
            series = self._child(
                labels, lambda: _HistogramSeries(len(self.buckets) + 1)
            )
            index = len(self.buckets)  # +Inf bucket
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def snapshot(self, **labels: object) -> Dict[str, object]:
        """``{"count", "sum", "buckets": {le: cumulative}}`` for a series."""
        with self._lock:
            series = self._children.get(self._key(labels))
            if series is None:
                return {"count": 0, "sum": 0.0, "buckets": {}}
            cumulative: Dict[str, int] = {}
            running = 0
            for bound, count in zip(self.buckets, series.counts):
                running += count
                cumulative[repr(bound)] = running
            cumulative["+Inf"] = series.count
            return {
                "count": series.count,
                "sum": series.sum,
                "buckets": cumulative,
            }

    def _spec(self) -> Dict[str, object]:
        spec = super()._spec()
        spec["buckets"] = list(self.buckets)
        return spec

    def _series_state(self) -> Dict[Tuple[str, ...], object]:
        with self._lock:
            return {
                key: {
                    "counts": list(series.counts),
                    "sum": series.sum,
                    "count": series.count,
                }
                for key, series in self._children.items()
            }

    def _apply_delta(self, key: Tuple[str, ...], value: object) -> None:
        counts = value["counts"]
        with self._lock:
            series = self._child(
                {n: v for n, v in zip(self.label_names, key)},
                lambda: _HistogramSeries(len(self.buckets) + 1),
            )
            if len(counts) != len(series.counts):
                raise ValueError(
                    f"histogram {self.name!r}: delta has {len(counts)} "
                    f"buckets, instrument has {len(series.counts)}"
                )
            for i, c in enumerate(counts):
                series.counts[i] += int(c)
            series.sum += float(value["sum"])
            series.count += int(value["count"])


def _series_delta(kind: str, current, baseline):
    """The serialized difference of one series since ``baseline``."""
    if kind == "counter":
        diff = float(current) - float(baseline or 0.0)
        return diff if diff != 0.0 else None
    if kind == "gauge":
        if baseline is not None and float(current) == float(baseline):
            return None
        return float(current)
    # histogram
    if baseline is None:
        base_counts: Sequence[int] = ()
        base_sum, base_count = 0.0, 0
    else:
        base_counts = baseline["counts"]
        base_sum, base_count = baseline["sum"], baseline["count"]
    counts = [
        int(c) - int(b)
        for c, b in zip(
            current["counts"],
            list(base_counts) + [0] * len(current["counts"]),
        )
    ]
    delta = {
        "counts": counts,
        "sum": float(current["sum"]) - float(base_sum),
        "count": int(current["count"]) - int(base_count),
    }
    if delta["count"] == 0 and delta["sum"] == 0.0:
        return None
    return delta


class MetricsRegistry:
    """Get-or-create home for instruments; the export surface reads it.

    Re-requesting an existing name returns the same instrument if the
    kind and label names match, and raises ``ValueError`` otherwise —
    instrument identity is global per registry, as in Prometheus.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(
                    labels
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            instrument = cls(name, help, labels, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramMetric:
        return self._get_or_create(
            HistogramMetric, name, help, labels, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        """Snapshot of registered instruments, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every series while keeping the instruments registered.

        Instruments are created once at import time by the modules they
        observe; reset clears their values (for tests and fresh runs)
        without invalidating those module-level references.
        """
        for instrument in self.instruments():
            instrument.clear()

    # -- cross-process aggregation -------------------------------------
    def state(self) -> Dict[str, Dict]:
        """A full, picklable snapshot of every instrument and series.

        ``{name: {"kind", "help", "labels", ["buckets"], "series"}}``
        where ``series`` maps label-value tuples to floats (counters,
        gauges) or ``{"counts", "sum", "count"}`` dicts (histograms).
        Plain builtins only, so the snapshot crosses process boundaries
        through pickle (process pools) or JSON (after key flattening).
        """
        out: Dict[str, Dict] = {}
        for instrument in self.instruments():
            spec = instrument._spec()
            spec["series"] = instrument._series_state()
            out[instrument.name] = spec
        return out

    def delta_since(self, baseline: Optional[Dict[str, Dict]]) -> Dict[str, Dict]:
        """What changed since a :meth:`state` snapshot, same shape.

        Counters and histograms subtract (per series, per bucket);
        gauges are included at their current value when it differs from
        the baseline.  Unchanged series — and instruments with no
        changed series — are omitted, so a quiet worker ships an empty
        dict.  ``baseline=None`` means "everything" (a fresh process).
        """
        baseline = baseline or {}
        delta: Dict[str, Dict] = {}
        for name, spec in self.state().items():
            base_series = baseline.get(name, {}).get("series", {})
            changed = {}
            for key, value in spec["series"].items():
                diff = _series_delta(spec["kind"], value, base_series.get(key))
                if diff is not None:
                    changed[key] = diff
            if changed:
                spec["series"] = changed
                delta[name] = spec
        return delta

    def merge_delta(self, delta: Dict[str, Dict]) -> None:
        """Fold a :meth:`delta_since` payload into this registry.

        Instruments are get-or-created with the shipped kind/help/
        labels (and buckets), so a metric that only exists worker-side
        still lands here; a name already registered with a different
        shape raises ``ValueError``, exactly as local creation would.
        Merging is an explicit aggregation API: it applies regardless
        of the :func:`enable` switch, since the delta was necessarily
        recorded while a producer had observability on.
        """
        for name, spec in delta.items():
            kind = spec["kind"]
            if kind == "counter":
                instrument = self.counter(name, spec["help"], spec["labels"])
            elif kind == "gauge":
                instrument = self.gauge(name, spec["help"], spec["labels"])
            elif kind == "histogram":
                instrument = self.histogram(
                    name, spec["help"], spec["labels"], spec["buckets"]
                )
            else:
                raise ValueError(f"unknown instrument kind {kind!r} in delta")
            for key, value in spec["series"].items():
                instrument._apply_delta(tuple(key), value)


#: The default registry; the module-level helpers and the exporters in
#: :mod:`repro.obs.export` use it.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
    """Get-or-create a counter in the default registry."""
    return _REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return _REGISTRY.gauge(name, help, labels)


def histogram(
    name: str,
    help: str = "",
    labels: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> HistogramMetric:
    """Get-or-create a histogram in the default registry."""
    return _REGISTRY.histogram(name, help, labels, buckets)
