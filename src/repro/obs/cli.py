"""``repro-obs`` — inspect the persistent run ledger.

Answers the operational questions an eight-day deployment raises
without re-reading any flow data, straight from the manifests that
``--ledger-dir`` runs leave behind:

* ``repro-obs list`` — every recorded run: id, kind, status, duration,
  suspect count.
* ``repro-obs show <run>`` — one run's full manifest (config snapshot,
  environment, degradations, suspects).
* ``repro-obs diff <run-a> <run-b>`` — what changed between two runs:
  suspect-set additions/removals, per-stage funnel deltas, changed
  config keys.
* ``repro-obs funnel <run>`` — the per-stage attrition table
  (Figure 9's shape) of one run.

Run references are forgiving: a full run id, a unique prefix, or a
negative index (``-1`` = most recent).  The ledger directory comes
from ``--ledger-dir`` or the ``REPRO_LEDGER_DIR`` environment
variable.  ``--json`` on any subcommand emits the machine-readable
form for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .ledger import LEDGER_ENV, RunLedger, diff_runs

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect the persistent run ledger written by "
        "--ledger-dir runs.",
    )
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        default=None,
        help=f"ledger directory (default: ${LEDGER_ENV})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list recorded runs, oldest first")

    p_show = sub.add_parser("show", help="print one run's full manifest")
    p_show.add_argument("run", help="run id, unique prefix, or index (-1)")

    p_diff = sub.add_parser(
        "diff", help="compare two runs' suspects, funnel and config"
    )
    p_diff.add_argument("run_a", help="baseline run reference")
    p_diff.add_argument("run_b", help="comparison run reference")

    p_funnel = sub.add_parser(
        "funnel", help="print one run's per-stage attrition table"
    )
    p_funnel.add_argument("run", help="run id, unique prefix, or index (-1)")
    return parser


def _open_ledger(args) -> RunLedger:
    import os

    root = args.ledger_dir or os.environ.get(LEDGER_ENV)
    if not root:
        raise SystemExit(
            f"repro-obs: no ledger directory (use --ledger-dir or ${LEDGER_ENV})"
        )
    return RunLedger(root)


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds:.2f}s" if seconds < 120 else f"{seconds / 60:.1f}m"


def _cmd_list(ledger: RunLedger, args) -> int:
    runs = ledger.runs()
    if args.json:
        print(json.dumps(runs, indent=2, sort_keys=True))
        return 0
    if not runs:
        print(f"no runs recorded under {ledger.root}")
        return 0
    header = f"{'run':<36} {'kind':<12} {'status':<7} {'time':>8} {'suspects':>8}"
    print(header)
    print("-" * len(header))
    for run in runs:
        n_susp = run.get("n_suspects")
        print(
            f"{run.get('run_id', '?'):<36} "
            f"{run.get('kind', '?'):<12} "
            f"{run.get('status', '?'):<7} "
            f"{_fmt_duration(run.get('duration_seconds')):>8} "
            f"{n_susp if n_susp is not None else '-':>8}"
        )
    return 0


def _cmd_show(ledger: RunLedger, args) -> int:
    manifest = ledger.load(args.run)
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _cmd_diff(ledger: RunLedger, args) -> int:
    delta = diff_runs(ledger.load(args.run_a), ledger.load(args.run_b))
    if args.json:
        print(json.dumps(delta, indent=2, sort_keys=True))
        return 0
    print(f"diff {delta['a']} -> {delta['b']}")
    status = delta["status"]
    print(f"  status:   {status['a']} -> {status['b']}")
    dur = delta["duration_seconds"]
    print(
        f"  duration: {_fmt_duration(dur['a'])} -> {_fmt_duration(dur['b'])}"
    )
    susp = delta["suspects"]
    print(
        f"  suspects: {susp['common']} common, "
        f"+{len(susp['added'])} added, -{len(susp['removed'])} removed"
        + ("  (checksums equal)" if susp["checksum_equal"] else "")
    )
    for host in susp["added"]:
        print(f"    + {host}")
    for host in susp["removed"]:
        print(f"    - {host}")
    if delta["funnel"]:
        print("  funnel (surviving hosts, a -> b):")
        for stage in delta["funnel"]:
            surv = stage["surviving_hosts"]
            move = (
                f" ({surv['delta']:+g})"
                if surv.get("delta") not in (None, 0)
                else ""
            )
            print(
                f"    {stage['stage']:<12} "
                f"{surv['a']} -> {surv['b']}{move}"
            )
    if delta["config_changes"]:
        print("  config changes:")
        for key, (va, vb) in sorted(delta["config_changes"].items()):
            print(f"    {key}: {va!r} -> {vb!r}")
    deg = delta["degradations"]
    if deg["a"] or deg["b"]:
        print(f"  degradations: {deg['a']} -> {deg['b']}")
    return 0


def _cmd_funnel(ledger: RunLedger, args) -> int:
    manifest = ledger.load(args.run)
    funnel = manifest.get("funnel") or []
    if args.json:
        print(json.dumps(funnel, indent=2, sort_keys=True))
        return 0
    if not funnel:
        print(f"run {manifest.get('run_id')} recorded no funnel")
        return 0
    print(f"funnel for {manifest.get('run_id')}:")
    header = f"{'stage':<12} {'in':>8} {'out':>8} {'kept':>7} {'threshold':>12}"
    print(header)
    print("-" * len(header))
    for stage in funnel:
        n_in = stage.get("input_hosts")
        n_out = stage.get("surviving_hosts")
        kept = (
            f"{100.0 * n_out / n_in:.1f}%"
            if n_in not in (None, 0) and n_out is not None
            else "-"
        )
        threshold = stage.get("threshold")
        print(
            f"{stage['stage']:<12} "
            f"{n_in if n_in is not None else '-':>8} "
            f"{n_out if n_out is not None else '-':>8} "
            f"{kept:>7} "
            f"{threshold if threshold is not None else '-':>12}"
        )
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "show": _cmd_show,
    "diff": _cmd_diff,
    "funnel": _cmd_funnel,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    ledger = _open_ledger(args)
    try:
        return _COMMANDS[args.command](ledger, args)
    except KeyError as exc:
        print(f"repro-obs: {exc.args[0]}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
