"""One observability lifecycle shared by every CLI entry point.

Both ``repro-experiments`` and ``repro-datasets`` accept the same four
telemetry flags (``--metrics-out``, ``--prom-out``, ``--prom-port``,
``--ledger-dir``); :class:`ObsSession` is the single implementation
behind them, so the CLIs cannot drift apart and neither has to
re-derive the failure semantics:

* requesting *any* output enables recording for the duration of the
  session and disables it again on exit;
* ``--metrics-out`` streams spans to a :class:`~repro.obs.export.JsonlSink`
  as they finish and appends a final registry snapshot;
* ``--prom-out`` writes the Prometheus text file;
* ``--prom-port`` serves ``/metrics`` / ``/healthz`` / ``/summary``
  live for the duration of the run;
* ``--ledger-dir`` records the run into a
  :class:`~repro.obs.ledger.RunLedger` directory.

**Crash safety is the point.**  Exports happen in ``__exit__``, which
runs whether the body returned or raised: a run that dies mid-pipeline
still flushes its JSONL trace, its ``.prom`` snapshot, and a ledger
entry with ``status="error"`` and the exception summary — the runs you
most need telemetry for are the ones that crash.  The exception itself
always propagates; telemetry never swallows failures.

Usage::

    session = ObsSession.from_args(args, kind="fig9", config=cfg)
    with session:
        result = run_pipeline()
        session.record_result(result)
    # JSONL/prom/ledger are on disk here, success or not.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from . import metrics as _metrics
from . import tracing as _tracing
from .export import JsonlSink, metrics_event, write_prom
from .http import MetricsServer
from .ledger import LEDGER_ENV, RunLedger, RunRecorder
from .logconf import get_logger

__all__ = ["ObsSession", "add_observability_args"]

logger = get_logger("obs.session")


def add_observability_args(parser) -> None:
    """Install the four shared telemetry flags on an argparse parser.

    Both CLIs call this (``repro-datasets`` on every subcommand), which
    is what keeps their observability surface identical.
    """
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write spans + a final metrics snapshot as JSONL to PATH",
    )
    parser.add_argument(
        "--prom-out",
        metavar="PATH",
        default=None,
        help="write final metrics in Prometheus text format to PATH",
    )
    parser.add_argument(
        "--prom-port",
        type=int,
        metavar="PORT",
        default=None,
        help="serve live /metrics, /healthz and /summary on PORT "
        "for the duration of the run (0 = ephemeral port)",
    )
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        default=None,
        help="record this run into the persistent run ledger at DIR "
        f"(default: ${LEDGER_ENV} if set); inspect with repro-obs",
    )


class ObsSession:
    """Context manager owning a run's telemetry outputs end to end."""

    def __init__(
        self,
        metrics_out: Optional[Union[str, Path]] = None,
        prom_out: Optional[Union[str, Path]] = None,
        prom_port: Optional[int] = None,
        ledger_dir: Optional[Union[str, Path]] = None,
        kind: str = "run",
        config: Optional[object] = None,
        command: Optional[Sequence[str]] = None,
    ) -> None:
        self.metrics_out = metrics_out
        self.prom_out = prom_out
        self.prom_port = prom_port
        self.ledger_dir = ledger_dir or os.environ.get(LEDGER_ENV)
        self.kind = kind
        self.config = config
        self.command = command
        self.sink: Optional[JsonlSink] = None
        self.server: Optional[MetricsServer] = None
        self.recorder: Optional[RunRecorder] = None
        self._was_enabled = False

    @classmethod
    def from_args(
        cls,
        args,
        kind: str,
        config: Optional[object] = None,
        command: Optional[Sequence[str]] = None,
    ) -> "ObsSession":
        """Build a session from parsed :func:`add_observability_args` flags."""
        return cls(
            metrics_out=args.metrics_out,
            prom_out=args.prom_out,
            prom_port=args.prom_port,
            ledger_dir=args.ledger_dir,
            kind=kind,
            config=config,
            command=command,
        )

    @property
    def active(self) -> bool:
        """Whether any telemetry output was requested."""
        return any(
            value is not None
            for value in (
                self.metrics_out,
                self.prom_out,
                self.prom_port,
                self.ledger_dir,
            )
        )

    # -- result annotation (forwarded to the ledger when present) -------
    def record_result(self, result) -> None:
        """Attach a PipelineResult's funnel/suspects/degradations."""
        if self.recorder is not None:
            self.recorder.record_pipeline_result(result)

    def set_funnel(self, funnel: Sequence[Dict]) -> None:
        if self.recorder is not None:
            self.recorder.set_funnel(funnel)

    def set_suspects(self, suspects) -> None:
        if self.recorder is not None:
            self.recorder.set_suspects(suspects)

    def set_degradations(self, degradations) -> None:
        if self.recorder is not None:
            self.recorder.set_degradations(degradations)

    def annotate(self, **fields: object) -> None:
        if self.recorder is not None:
            self.recorder.annotate(**fields)

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "ObsSession":
        if not self.active:
            return self
        self._was_enabled = _metrics.is_enabled()
        _metrics.enable()
        if self.metrics_out is not None:
            self.sink = JsonlSink(self.metrics_out)
            _tracing.add_sink(self.sink)
        if self.prom_port is not None:
            # MetricsServer logs the bound URL; stdout stays data-only.
            self.server = MetricsServer(port=self.prom_port)
        if self.ledger_dir is not None:
            ledger = RunLedger(self.ledger_dir)
            self.recorder = ledger.record(
                self.kind, config=self.config, command=self.command
            )
            self.recorder.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        # Flush order: JSONL snapshot and prom file first (cheap, local),
        # then the ledger (which also snapshots the registry), then tear
        # down the live server and the enable switch.  Every step runs
        # even when an earlier one — or the run body — raised.
        try:
            if self.sink is not None:
                try:
                    self.sink.write_event(metrics_event())
                finally:
                    _tracing.remove_sink(self.sink)
                    self.sink.close()
        except OSError:
            logger.warning("could not flush --metrics-out", exc_info=True)
            if exc_type is None:
                raise
        finally:
            try:
                if self.prom_out is not None:
                    write_prom(self.prom_out)
            except OSError:
                logger.warning("could not write --prom-out", exc_info=True)
                if exc_type is None:
                    raise
            finally:
                try:
                    if self.recorder is not None:
                        self.recorder.__exit__(exc_type, exc, tb)
                finally:
                    if self.server is not None:
                        self.server.close()
                    if not self._was_enabled:
                        _metrics.disable()
