"""repro — reproduction of Yen & Reiter, "Are Your Hosts Trading or
Plotting? Telling P2P File-Sharing and Bots Apart" (ICDCS 2010).

The package separates P2P botnet hosts ("Plotters") from P2P file-sharing
hosts ("Traders") using only bi-directional network flow records.  The
top-level namespace re-exports the pieces a typical user needs: the flow
model, the synthetic campus/honeynet dataset builders, and the
FindPlotters detection pipeline.
"""

from .flows import FlowRecord, FlowState, FlowStore, Protocol

__version__ = "1.0.0"

__all__ = [
    "FlowRecord",
    "FlowState",
    "FlowStore",
    "Protocol",
    "__version__",
]
