"""Baseline detectors the reproduction compares FindPlotters against."""

from .tdg import TdgDetector, TdgScore, build_tdg, score_tdg
from .volume_only import VolumeOnlyDetector
from .failedconn import FailedConnDetector
from .entropy import EntropyDetector, entropy_metric, timing_entropy

__all__ = [
    "TdgDetector",
    "TdgScore",
    "build_tdg",
    "score_tdg",
    "VolumeOnlyDetector",
    "FailedConnDetector",
    "EntropyDetector",
    "entropy_metric",
    "timing_entropy",
]
