"""Traffic-dispersion-graph (TDG) P2P detection — the Iliofotou et al.
baseline [29] the paper contrasts itself against (§II).

A TDG is the directed graph whose nodes are hosts and whose edges are
observed flows.  P2P overlays stand out globally: their subgraphs have a
high average degree and a large fraction of nodes that both *initiate
and receive* connections (an "InO" node — client and server at once).
Jelasity & Bilicki's evasion study [28] targets exactly this detector,
which is why the paper calls out that TDGs need a *global* view while
its own tests are per-host.

The classifier here follows the published recipe: build per-port-group
TDGs, score each by average degree and InO fraction, and flag the
internal hosts participating in graphs that exceed both thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from ..flows.record import FlowRecord
from ..flows.store import FlowStore

__all__ = ["TdgScore", "build_tdg", "score_tdg", "TdgDetector"]

#: Ports treated as "well-known services" and grouped individually;
#: everything else lands in one ephemeral-port graph, which is where
#: P2P traffic concentrates.
WELL_KNOWN_CUTOFF = 1024


@dataclass(frozen=True)
class TdgScore:
    """Structural summary of one traffic dispersion graph."""

    port_group: str
    n_nodes: int
    n_edges: int
    average_degree: float
    ino_fraction: float

    def is_p2p_like(self, degree_threshold: float, ino_threshold: float) -> bool:
        """The published TDG decision rule: both metrics high."""
        return (
            self.average_degree >= degree_threshold
            and self.ino_fraction >= ino_threshold
        )


def _port_group(flow: FlowRecord) -> str:
    """The TDG a flow belongs to: per well-known port, or ephemeral."""
    if flow.dport < WELL_KNOWN_CUTOFF:
        return f"port-{flow.dport}"
    return "ephemeral"


def build_tdg(store: FlowStore) -> Dict[str, nx.DiGraph]:
    """Build one directed graph per port group from successful flows."""
    graphs: Dict[str, nx.DiGraph] = {}
    for flow in store:
        if flow.failed:
            continue
        graph = graphs.setdefault(_port_group(flow), nx.DiGraph())
        graph.add_edge(flow.src, flow.dst)
    return graphs


def score_tdg(port_group: str, graph: nx.DiGraph) -> TdgScore:
    """Compute the degree / InO metrics for one graph."""
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n == 0:
        return TdgScore(port_group, 0, 0, 0.0, 0.0)
    ino = sum(
        1
        for node in graph.nodes
        if graph.in_degree(node) > 0 and graph.out_degree(node) > 0
    )
    return TdgScore(
        port_group=port_group,
        n_nodes=n,
        n_edges=m,
        average_degree=2.0 * m / n,
        ino_fraction=ino / n,
    )


class TdgDetector:
    """Flag internal hosts participating in P2P-like dispersion graphs.

    Parameters
    ----------
    degree_threshold:
        Minimum average degree for a graph to be called P2P-like.
    ino_threshold:
        Minimum fraction of nodes with both in- and out-edges.

    Notes
    -----
    The detector finds *P2P hosts* — it cannot tell Plotters from
    Traders, which is the comparison the benchmark harness draws: TDG
    recall over all P2P hosts versus its (non-existent) precision on
    Plotters specifically.
    """

    def __init__(
        self, degree_threshold: float = 2.8, ino_threshold: float = 0.10
    ) -> None:
        self.degree_threshold = degree_threshold
        self.ino_threshold = ino_threshold

    def detect(
        self, store: FlowStore, internal_hosts: Iterable[str]
    ) -> Tuple[Set[str], List[TdgScore]]:
        """Return (flagged internal hosts, per-graph scores)."""
        internal = set(internal_hosts)
        graphs = build_tdg(store)
        flagged: Set[str] = set()
        scores: List[TdgScore] = []
        for port_group, graph in sorted(graphs.items()):
            score = score_tdg(port_group, graph)
            scores.append(score)
            if score.is_p2p_like(self.degree_threshold, self.ino_threshold):
                flagged |= set(graph.nodes) & internal
        return flagged, scores
