"""Timing-entropy detector — the Gianvecchio et al. [6] idea.

The paper's related work (§II) cites the observation that human-driven
traffic shows *higher entropy* than bot traffic (made for Internet chat
in [6]).  This baseline transplants it to flow records: score each host
by the normalised Shannon entropy of its per-destination interstitial-
time distribution (over log-spaced bins) and flag the lowest-entropy
hosts as machine-driven.

It is a *per-host* test: unlike θ_hm it needs no similarity between
bots, so it can flag a single bot — but for the same reason it cannot
tell a bot from any other well-timed automation (NTP, pollers), which
is what the benchmark comparison shows.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set

import numpy as np

from ..detection.testbase import TestResult
from ..flows.metrics import interstitial_times
from ..flows.store import FlowStore
from ..stats.thresholds import percentile_threshold, select_below

__all__ = ["timing_entropy", "entropy_metric", "EntropyDetector"]

#: Bin edges: log-spaced from 1 ms to ~28 hours, a fixed grid so scores
#: are comparable across hosts (unlike FD binning, which adapts).
_LOG_EDGES = np.linspace(-3.0, 5.0, 41)

#: Minimum samples for a meaningful entropy estimate.
MIN_SAMPLES = 20


def timing_entropy(samples: Sequence[float]) -> float:
    """Normalised Shannon entropy of the interstitial distribution.

    0 means perfectly regular (all mass in one log-time bin — a hard
    timer); 1 means maximally spread over the grid.  Raises
    ``ValueError`` on an empty sample set.
    """
    if len(samples) == 0:
        raise ValueError("entropy of zero samples is undefined")
    logs = np.log10(np.maximum(np.asarray(samples, dtype=float), 1e-3))
    counts, _edges = np.histogram(logs, bins=_LOG_EDGES)
    total = counts.sum()
    if total == 0:  # everything out of range: treat as one spike
        return 0.0
    probabilities = counts[counts > 0] / total
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    max_entropy = math.log2(len(_LOG_EDGES) - 1)
    return entropy / max_entropy


def entropy_metric(
    store: FlowStore, hosts: Iterable[str], min_samples: int = MIN_SAMPLES
) -> Dict[str, float]:
    """Timing entropy per host (hosts with too few samples omitted)."""
    metric: Dict[str, float] = {}
    for host in hosts:
        samples = interstitial_times(store.flows_from(host))
        if len(samples) >= min_samples:
            metric[host] = timing_entropy(samples)
    return metric


class EntropyDetector:
    """Flag the lowest-timing-entropy hosts as machine-driven."""

    def __init__(self, percentile: float = 20.0) -> None:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        self.percentile = percentile

    def detect(self, store: FlowStore, hosts: Set[str]) -> TestResult:
        """Hosts whose entropy falls below the percentile threshold."""
        metric = entropy_metric(store, hosts)
        if not metric:
            return TestResult(
                name="timing-entropy", selected=frozenset(), threshold=0.0
            )
        threshold = percentile_threshold(list(metric.values()), self.percentile)
        selected = select_below(metric, threshold)
        return TestResult(
            name="timing-entropy",
            selected=frozenset(selected),
            threshold=threshold,
            metric=metric,
        )
