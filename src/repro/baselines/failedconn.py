"""Failed-connection-rate detector: the §V-A filter as a classifier.

Failed-connection rate was used by prior work ([45], [46]) to find P2P
hosts in general.  The paper deliberately demotes it to a data-reduction
step because it cannot separate Plotters from Traders — both fail
constantly.  This baseline applies it as a standalone detector so the
benchmarks can show that limitation.
"""

from __future__ import annotations

from typing import Set

from ..detection.reduction import initial_data_reduction
from ..detection.testbase import TestResult
from ..flows.store import FlowStore

__all__ = ["FailedConnDetector"]


class FailedConnDetector:
    """Flag hosts whose failed-connection rate exceeds a percentile."""

    def __init__(self, percentile: float = 50.0) -> None:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        self.percentile = percentile

    def detect(self, store: FlowStore, hosts: Set[str]) -> TestResult:
        """Flag high-failure hosts — Plotters, Traders and noise alike."""
        return initial_data_reduction(store, hosts, self.percentile)
