"""Volume-only detector: the strawman §IV-A warns about.

"Examining volume alone yields many false positives" — this baseline
makes that concrete: flag every host whose average uploaded bytes per
flow falls below a percentile threshold, with no churn or timing
refinement.  The Figure 6 ROC shows exactly how coarse this is.
"""

from __future__ import annotations

from typing import Set

from ..detection.testbase import TestResult
from ..detection.volume import theta_vol
from ..flows.store import FlowStore

__all__ = ["VolumeOnlyDetector"]


class VolumeOnlyDetector:
    """θ_vol applied in isolation as a complete classifier."""

    def __init__(self, percentile: float = 50.0) -> None:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        self.percentile = percentile

    def detect(self, store: FlowStore, hosts: Set[str]) -> TestResult:
        """Flag hosts with low average flow size — nothing else."""
        return theta_vol(store, hosts, self.percentile)
