"""``repro query`` — the analyst's front door to the query plane.

Every subcommand answers from indexes and the verdict DB; none of them
re-read a single flow (except ``rebuild-index``, whose job is exactly
that).  Common flags:

``--store-dir DIR``
    The segment store to index/query (traffic questions).
``--db PATH``
    The verdict database (verdict questions).  Falls back to
    ``$REPRO_VERDICT_DB``.
``--json``
    Machine-readable output (one JSON document on stdout).

Cookbook (see ``docs/query.md`` for more):

* ``repro query why 10.0.0.7 --db verdicts.sqlite`` — why was this
  host flagged (or cleared) in its most recent window?
* ``repro query funnel --survived theta_vol --died theta_hm --since
  1699000000 --db verdicts.sqlite`` — the week's near-misses.
* ``repro query history 10.0.0.7 --db verdicts.sqlite`` — the
  day-over-day verdict record.
* ``repro query timeline 10.0.0.7 --store-dir spool/`` — indexed
  first/last-seen, row counts, destination cardinality.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .api import QueryEngine
from .index import QueryIndex
from .verdicts import VerdictDB

__all__ = ["main"]

DB_ENV = "REPRO_VERDICT_DB"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro query",
        description="Indexed analyst queries over traffic and verdicts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, store=False, db=False):
        if store:
            p.add_argument(
                "--store-dir", help="segment-store directory to query"
            )
        if db:
            p.add_argument(
                "--db",
                default=os.environ.get(DB_ENV),
                help=f"verdict database path (default: ${DB_ENV})",
            )
        p.add_argument(
            "--json", action="store_true", help="emit JSON instead of text"
        )

    p = sub.add_parser("why", help="evidence trail for one host")
    p.add_argument("host")
    p.add_argument(
        "--window", type=int, default=None,
        help="window id (default: the host's most recent window)",
    )
    common(p, db=True)

    p = sub.add_parser("history", help="a host's verdict history")
    p.add_argument("host")
    p.add_argument(
        "--since", type=float, default=None,
        help="only windows evaluated at/after this epoch timestamp",
    )
    common(p, db=True)

    p = sub.add_parser(
        "funnel", help="hosts that survived one stage but died at another"
    )
    p.add_argument("--survived", required=True, help="e.g. theta_vol")
    p.add_argument("--died", required=True, help="e.g. theta_hm")
    p.add_argument("--since", type=float, default=None)
    common(p, db=True)

    p = sub.add_parser("reputation", help="hosts by decayed suspicion score")
    p.add_argument("--top", type=int, default=20)
    p.add_argument("--min-score", type=float, default=0.0)
    common(p, db=True)

    p = sub.add_parser("windows", help="recorded verdict windows")
    p.add_argument("--since", type=float, default=None)
    p.add_argument("--source", default=None)
    common(p, db=True)

    p = sub.add_parser("timeline", help="a host's indexed traffic timeline")
    p.add_argument("host")
    common(p, store=True)

    p = sub.add_parser("investigate", help="traffic + verdicts for one host")
    p.add_argument("host")
    common(p, store=True, db=True)

    p = sub.add_parser("overview", help="index freshness + DB row counts")
    common(p, store=True, db=True)

    p = sub.add_parser(
        "rebuild-index", help="force a full index rebuild from segments"
    )
    common(p, store=True)

    p = sub.add_parser(
        "import-ledger", help="record run-ledger manifests into the DB"
    )
    p.add_argument("--ledger-dir", required=True)
    common(p, db=True)

    return parser


def _emit(doc, as_json: bool, text_lines) -> None:
    if as_json:
        print(json.dumps(doc, indent=2, sort_keys=True, default=str))
    else:
        for line in text_lines:
            print(line)


def _require(value, flag: str) -> None:
    if not value:
        raise SystemExit(f"repro query: {flag} is required for this command")


def _why_lines(doc) -> List[str]:
    window = doc.get("window") or {}
    verdict = "FLAGGED" if doc["flagged"] else "not flagged"
    lines = [
        f"host {doc['host']}: {verdict} "
        f"(window {window.get('id')}, source {window.get('source')}, "
        f"evaluated_at {window.get('evaluated_at')})"
    ]
    for stage, ev in (doc.get("stages") or {}).items():
        mark = "PASS" if ev["passed"] else "stop"
        lines.append(f"  [{mark}] {stage:<14} {ev['comparison']}")
    cluster = doc.get("cluster")
    if cluster:
        members = ", ".join(cluster["co_members"][:6]) or "(none)"
        lines.append(
            f"  cluster {cluster['cluster_id']} "
            f"(diameter {cluster['diameter']}): co-members {members}"
        )
    rep = doc.get("reputation")
    if rep:
        lines.append(
            f"  reputation: score {rep['score']:.3f} over "
            f"{rep['seen_windows']} windows "
            f"({rep['flagged_windows']} flagged)"
        )
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an
        # error.  Point the dangling buffer at devnull so the
        # interpreter's shutdown flush stays quiet; closing the stream
        # would destroy a test harness's capture file.
        try:
            sys.stdout = open(os.devnull, "w")
        except OSError:
            pass
        return 0


def _run(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command

    if command == "rebuild-index":
        _require(args.store_dir, "--store-dir")
        from ..storage.store import SegmentStore

        store = SegmentStore.open(args.store_dir, repair=True)
        index = QueryIndex.build(store)
        path = index.save()
        doc = {
            "rebuilt": str(path),
            "hosts": index.n_hosts,
            "rows": index.total_rows,
            "generation": index.generation,
        }
        _emit(
            doc, args.json,
            [f"rebuilt {path}: {index.n_hosts} hosts, "
             f"{index.total_rows} rows, generation {index.generation}"],
        )
        return 0

    if command == "import-ledger":
        _require(args.db, "--db")
        from ..obs.ledger import RunLedger

        with VerdictDB(args.db) as db:
            imported = db.import_ledger(RunLedger(args.ledger_dir))
        _emit(
            {"imported": imported}, args.json,
            [f"imported {imported} ledger run(s) into {args.db}"],
        )
        return 0

    engine = QueryEngine(
        store_dir=getattr(args, "store_dir", None),
        db_path=getattr(args, "db", None),
    )
    with engine:
        if command == "why":
            _require(engine.has_db, "--db")
            doc = engine.why(args.host, args.window)
            if doc is None:
                print(
                    f"host {args.host}: no recorded verdicts", file=sys.stderr
                )
                return 1
            _emit(doc, args.json, _why_lines(doc))
            return 0

        if command == "history":
            _require(engine.has_db, "--db")
            rows = engine.history(args.host, since=args.since)
            lines = [
                f"window {r['window_id']} ({r['source']}) "
                f"evaluated_at {r['evaluated_at']}: "
                + ("FLAGGED" if r["flagged"] else "clear")
                for r in rows
            ] or [f"host {args.host}: no recorded windows"]
            _emit(rows, args.json, lines)
            return 0

        if command == "funnel":
            _require(engine.has_db, "--db")
            rows = engine.funnel_drop(
                args.survived, args.died, since=args.since
            )
            lines = [
                f"window {r['window_id']} host {r['host']}: "
                f"survived at {r['survived_value']:.4g} "
                f"(thr {r['survived_threshold']:.4g}), died at "
                f"{r['died_value'] if r['died_value'] is not None else 'n/a'}"
                f" (thr {r['died_threshold']:.4g})"
                for r in rows
            ] or ["(no hosts matched)"]
            _emit(rows, args.json, lines)
            return 0

        if command == "reputation":
            _require(engine.has_db, "--db")
            rows = engine.reputation_top(args.top, min_score=args.min_score)
            lines = [
                f"{r['host']:<20} score {r['score']:.3f} "
                f"({r['flagged_windows']}/{r['seen_windows']} windows flagged)"
                for r in rows
            ] or ["(no hosts at/above the score floor)"]
            _emit(rows, args.json, lines)
            return 0

        if command == "windows":
            _require(engine.has_db, "--db")
            rows = engine.db.windows(since=args.since, source=args.source)
            lines = [
                f"window {r['id']} [{r['source']}] "
                f"evaluated_at {r['evaluated_at']}: "
                f"{r['hosts_seen']} hosts, {r['n_suspects']} suspects"
                for r in rows
            ] or ["(no recorded windows)"]
            _emit(rows, args.json, lines)
            return 0

        if command == "timeline":
            _require(engine.has_store, "--store-dir")
            timeline = engine.timeline(args.host)
            if timeline is None:
                print(f"host {args.host}: no indexed traffic", file=sys.stderr)
                return 1
            doc = {
                "host": timeline.host,
                "rows": timeline.rows,
                "first_seen": timeline.first_seen,
                "last_seen": timeline.last_seen,
                "segments": [s.segment for s in timeline.spans],
                "distinct_destinations": timeline.distinct_destinations,
                "destinations_exact": timeline.destinations_exact,
            }
            approx = "" if timeline.destinations_exact else "~"
            _emit(
                doc, args.json,
                [
                    f"host {timeline.host}: {timeline.rows} flows over "
                    f"[{timeline.first_seen}, {timeline.last_seen}] in "
                    f"{len(timeline.spans)} segment span(s); "
                    f"{approx}{timeline.distinct_destinations} distinct "
                    f"destinations",
                ],
            )
            return 0

        if command == "investigate":
            # The combined document is inherently structured; always JSON.
            _emit(engine.investigate(args.host), True, [])
            return 0

        if command == "overview":
            doc = engine.overview()
            lines = []
            index = doc.get("index")
            if index:
                rebuilt = (
                    f" (rebuilt: {index['rebuilt']})"
                    if index["rebuilt"] else ""
                )
                lines.append(
                    f"index: {index['hosts']} hosts, {index['rows']} rows, "
                    f"generation {index['generation']}{rebuilt}"
                )
            db_stats = doc.get("db")
            if db_stats:
                lines.append(
                    f"db {db_stats['path']}: {db_stats['windows']} windows, "
                    f"{db_stats['verdict_hosts']} host verdicts, "
                    f"{db_stats['stage_outcomes']} stage outcomes, "
                    f"{db_stats['reputation']} reputations"
                )
            _emit(doc, args.json, lines or ["(nothing to report)"])
            return 0

    raise SystemExit(f"repro query: unhandled command {command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
