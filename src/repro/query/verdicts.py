"""Persistent verdict/evidence history: SQLite in WAL mode.

A single window's verdict separates loud bots from quiet hosts; it
cannot separate a bot from a *transient trader* — that takes evidence
accumulated **across** windows (PeerHunter and the stealthy-botnet
anomaly literature both land on this).  :class:`VerdictDB` is that
accumulator: every FindPlotters run — batch, ledger-imported, or the
serve plane's live verdict stream — is recorded as one *window* row
plus its per-host evidence:

* **stage outcomes** — per host and stage, the metric value, the
  dynamic threshold it was compared to, the comparison direction, and
  whether the host survived.  This is the row set behind "which hosts
  survived θ_vol but died at θ_hm this week".
* **cluster co-membership** — which timing cluster each host landed
  in, the cluster diameter, and the full member list (the paper's
  operational unit: a tight flagged cluster is one incident).
* **reputation** — a per-host suspicion score with exponential decay:
  ``score ← score·λ + 1[flagged]`` per evaluated window (λ = 0.8 by
  default), the same accumulate-and-forget shape as the related P2P
  repo's reputation manager.  A host flagged once in a noisy window
  fades; a host flagged week after week converges toward
  ``1/(1-λ)``.

Storage is stdlib ``sqlite3`` with ``journal_mode=WAL`` so the serve
coordinator can append verdicts while analysts read — readers never
block the writer and vice versa.  Writes are deduplicated on the
serve plane's identity ``(source, epoch, shard, grid_index)``: the HA
coordinator may observe the same shard verdict twice (failover replay)
and must record it once.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from datetime import datetime
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from ..resilience import faults

__all__ = ["DEFAULT_DECAY", "SCHEMA_VERSION", "VerdictDB", "stage_rows"]

logger = get_logger("query.verdicts")

#: Per-window exponential decay λ of the reputation score.
DEFAULT_DECAY = 0.8

SCHEMA_VERSION = 1

_WRITES = obs_metrics.counter(
    "repro_query_db_writes_total",
    "Verdict-DB window records written, by source",
    labels=("source",),
)
_DEDUPED = obs_metrics.counter(
    "repro_query_db_deduped_total",
    "Verdict-DB window records dropped as duplicates",
)
_QUERIES = obs_metrics.counter(
    "repro_query_db_queries_total",
    "Verdict-DB analyst queries served, by kind",
    labels=("kind",),
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS windows (
    id           INTEGER PRIMARY KEY,
    source       TEXT NOT NULL,
    epoch        INTEGER,
    shard        TEXT,
    grid_index   INTEGER,
    t_start      REAL,
    t_end        REAL,
    evaluated_at REAL NOT NULL,
    recorded_at  REAL NOT NULL,
    run_id       TEXT,
    hosts_seen   INTEGER NOT NULL,
    n_suspects   INTEGER NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS windows_identity
    ON windows (source, epoch, shard, grid_index);
CREATE INDEX IF NOT EXISTS windows_time ON windows (evaluated_at);
CREATE TABLE IF NOT EXISTS stage_outcomes (
    window_id  INTEGER NOT NULL REFERENCES windows(id),
    host       TEXT NOT NULL,
    stage      TEXT NOT NULL,
    value      REAL,
    threshold  REAL,
    keep_below INTEGER NOT NULL,
    passed     INTEGER NOT NULL,
    PRIMARY KEY (window_id, host, stage)
);
CREATE INDEX IF NOT EXISTS stage_by_host ON stage_outcomes (host, stage);
CREATE INDEX IF NOT EXISTS stage_by_stage
    ON stage_outcomes (stage, passed, window_id, host);
CREATE TABLE IF NOT EXISTS verdict_hosts (
    window_id        INTEGER NOT NULL REFERENCES windows(id),
    host             TEXT NOT NULL,
    flagged          INTEGER NOT NULL,
    cluster_id       INTEGER,
    cluster_diameter REAL,
    PRIMARY KEY (window_id, host)
);
CREATE INDEX IF NOT EXISTS verdicts_by_host ON verdict_hosts (host);
CREATE TABLE IF NOT EXISTS clusters (
    window_id  INTEGER NOT NULL REFERENCES windows(id),
    cluster_id INTEGER NOT NULL,
    diameter   REAL NOT NULL,
    kept       INTEGER NOT NULL,
    n_members  INTEGER NOT NULL,
    PRIMARY KEY (window_id, cluster_id)
);
CREATE TABLE IF NOT EXISTS cluster_members (
    window_id  INTEGER NOT NULL REFERENCES windows(id),
    cluster_id INTEGER NOT NULL,
    host       TEXT NOT NULL,
    PRIMARY KEY (window_id, cluster_id, host)
);
CREATE TABLE IF NOT EXISTS reputation (
    host            TEXT PRIMARY KEY,
    score           REAL NOT NULL,
    flagged_windows INTEGER NOT NULL,
    seen_windows    INTEGER NOT NULL,
    last_evaluated  REAL,
    last_flagged    REAL,
    updated_at      REAL NOT NULL
);
"""

#: CLI-friendly aliases for the canonical stage names.
_STAGE_ALIASES = {
    "theta_vol": "volume",
    "vol": "volume",
    "theta_churn": "churn",
    "theta_hm": "human-machine",
    "hm": "human-machine",
    "humanmachine": "human-machine",
}


def canonical_stage(stage: str) -> str:
    """Map a CLI/funnel stage spelling to the stored stage name."""
    return _STAGE_ALIASES.get(stage.strip().lower(), stage.strip().lower())


def stage_rows(result) -> List[Tuple[str, str, float, float, bool, bool]]:
    """Flatten a :class:`~repro.detection.pipeline.PipelineResult` into
    ``(host, stage, value, threshold, keep_below, passed)`` evidence
    rows — one per host per stage the host actually entered.

    This is the single source of truth for how a pipeline run becomes
    stage evidence: the recorder writes these rows and the equivalence
    suite recomputes them to check the DB answers bit-for-bit.
    """
    rows: List[Tuple[str, str, float, float, bool, bool]] = []

    def emit(hosts, stage, test, keep_below):
        threshold = test.threshold
        selected = test.selected
        for host in hosts:
            value = test.metric.get(host)
            rows.append(
                (
                    host,
                    stage,
                    value,
                    threshold,
                    keep_below,
                    host in selected,
                )
            )

    if result.reduction is not None:
        emit(sorted(result.input_hosts), "reduction", result.reduction, False)
    reduced = sorted(result.reduced_hosts)
    emit(reduced, "volume", result.volume, True)
    emit(reduced, "churn", result.churn, True)
    emit(sorted(result.union_vol_churn), "human-machine", result.hm, True)
    return rows


def _evidence(value, threshold, keep_below, passed) -> Dict[str, object]:
    if value is None or threshold is None:
        comparison = "not evaluated"
    else:
        op = "<" if keep_below else ">"
        comparison = f"{value:.4g} {op} {threshold:.4g}"
    return {
        "value": value,
        "threshold": threshold,
        "keep_below": bool(keep_below),
        "passed": bool(passed),
        "comparison": comparison,
    }


def _parse_when(value) -> Optional[float]:
    """ISO timestamp or epoch-seconds → epoch-seconds (best effort)."""
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return datetime.fromisoformat(str(value)).timestamp()
    except ValueError:
        return None


class VerdictDB:
    """The persistent cross-window verdict and evidence store."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        decay: float = DEFAULT_DECAY,
    ) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.path = Path(path)
        self.decay = decay
        self._lock = threading.Lock()
        faults.io_point("verdict-db")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=30.0
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            self._conn.commit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "VerdictDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def record_batch(
        self,
        result,
        *,
        evaluated_at: float,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        source: str = "batch",
        epoch: Optional[int] = None,
        shard: Optional[str] = None,
        grid_index: Optional[int] = None,
        run_id: Optional[str] = None,
    ) -> Optional[int]:
        """Record one full :class:`PipelineResult` window.

        Returns the new window id, or ``None`` when the window's serve
        identity ``(source, epoch, shard, grid_index)`` was already
        recorded (rows with a NULL identity component never collide, so
        repeated ad-hoc batch runs each get their own window).
        """
        from ..detection.humanmachine import HmClustering

        rows = stage_rows(result)
        suspects = result.suspects
        seen = set(result.input_hosts)
        clustering = (
            result.hm.detail
            if isinstance(result.hm.detail, HmClustering)
            else None
        )
        cluster_of: Dict[str, Tuple[int, float]] = {}
        cluster_rows: List[Tuple[int, float, bool, Tuple[str, ...]]] = []
        if clustering is not None:
            kept = set(clustering.kept)
            for cid, (members, diameter) in enumerate(
                zip(clustering.clusters, clustering.diameters)
            ):
                cluster_rows.append(
                    (cid, float(diameter), members in kept, members)
                )
                for host in members:
                    cluster_of[host] = (cid, float(diameter))

        faults.io_point("verdict-db")
        with self._lock:
            cur = self._conn.cursor()
            try:
                cur.execute(
                    "INSERT INTO windows (source, epoch, shard, grid_index,"
                    " t_start, t_end, evaluated_at, recorded_at, run_id,"
                    " hosts_seen, n_suspects)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        source,
                        epoch,
                        shard,
                        grid_index,
                        t_start,
                        t_end,
                        float(evaluated_at),
                        time.time(),
                        run_id,
                        len(seen),
                        len(suspects),
                    ),
                )
            except sqlite3.IntegrityError:
                self._conn.rollback()
                _DEDUPED.inc()
                return None
            window_id = cur.lastrowid
            cur.executemany(
                "INSERT INTO stage_outcomes (window_id, host, stage, value,"
                " threshold, keep_below, passed) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (window_id, host, stage, value, threshold,
                     int(keep_below), int(passed))
                    for host, stage, value, threshold, keep_below, passed
                    in rows
                ],
            )
            cur.executemany(
                "INSERT INTO verdict_hosts (window_id, host, flagged,"
                " cluster_id, cluster_diameter) VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        window_id,
                        host,
                        int(host in suspects),
                        cluster_of.get(host, (None, None))[0],
                        cluster_of.get(host, (None, None))[1],
                    )
                    for host in sorted(seen)
                ],
            )
            cur.executemany(
                "INSERT INTO clusters (window_id, cluster_id, diameter,"
                " kept, n_members) VALUES (?, ?, ?, ?, ?)",
                [
                    (window_id, cid, diameter, int(kept_flag), len(members))
                    for cid, diameter, kept_flag, members in cluster_rows
                ],
            )
            cur.executemany(
                "INSERT INTO cluster_members (window_id, cluster_id, host)"
                " VALUES (?, ?, ?)",
                [
                    (window_id, cid, host)
                    for cid, _, _, members in cluster_rows
                    for host in members
                ],
            )
            self._update_reputation(
                cur, float(evaluated_at), seen, set(suspects)
            )
            self._conn.commit()
        _WRITES.inc(source=source)
        return window_id

    def record_serve_verdict(
        self,
        epoch: int,
        shard: str,
        verdict,
        *,
        source: str = "serve",
    ) -> Optional[int]:
        """Record one live verdict from the serve coordinator's stream.

        ``verdict`` is an :class:`~repro.detection.incremental.OnlineVerdict`
        or its JSON-dict form.  Live verdicts carry host *sets* but not
        per-stage metrics, so only window/flag/reputation rows are
        written.  Dedupe key: ``(source, epoch, shard, window_index)``.
        """
        if not isinstance(verdict, dict):
            doc = json.loads(verdict.to_json())
        else:
            doc = verdict
        suspects = set(doc.get("suspects") or ())
        reduced = set(doc.get("reduced") or ())
        seen = reduced | suspects
        evaluated_at = float(doc.get("evaluated_at") or 0.0)

        faults.io_point("verdict-db")
        with self._lock:
            cur = self._conn.cursor()
            try:
                cur.execute(
                    "INSERT INTO windows (source, epoch, shard, grid_index,"
                    " t_start, t_end, evaluated_at, recorded_at, run_id,"
                    " hosts_seen, n_suspects)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        source,
                        int(epoch),
                        str(shard),
                        int(doc.get("window_index") or 0),
                        None,
                        None,
                        evaluated_at,
                        time.time(),
                        None,
                        int(doc.get("hosts_seen") or len(seen)),
                        len(suspects),
                    ),
                )
            except sqlite3.IntegrityError:
                self._conn.rollback()
                _DEDUPED.inc()
                return None
            window_id = cur.lastrowid
            cur.executemany(
                "INSERT INTO verdict_hosts (window_id, host, flagged,"
                " cluster_id, cluster_diameter) VALUES (?, ?, ?, NULL, NULL)",
                [
                    (window_id, host, int(host in suspects))
                    for host in sorted(seen)
                ],
            )
            self._update_reputation(cur, evaluated_at, seen, suspects)
            self._conn.commit()
        _WRITES.inc(source=source)
        return window_id

    def record_ledger_run(self, manifest: Dict) -> Optional[int]:
        """Record one run-ledger manifest (``run.json`` form).

        Manifests carry the final suspect list but no per-host stage
        metrics, so this writes window + flag + reputation rows only.
        Dedupe key: the ledger ``run_id`` (re-imports are no-ops).
        """
        run_id = manifest.get("run_id")
        suspects = set(manifest.get("suspects") or ())
        evaluated_at = _parse_when(manifest.get("started")) or 0.0

        faults.io_point("verdict-db")
        with self._lock:
            cur = self._conn.cursor()
            if run_id is not None:
                cur.execute(
                    "SELECT 1 FROM windows WHERE run_id = ?", (run_id,)
                )
                if cur.fetchone() is not None:
                    _DEDUPED.inc()
                    return None
            hosts_seen = 0
            for stage in manifest.get("funnel") or ():
                hosts_seen = max(hosts_seen, int(stage.get("input_hosts") or 0))
            cur.execute(
                "INSERT INTO windows (source, epoch, shard, grid_index,"
                " t_start, t_end, evaluated_at, recorded_at, run_id,"
                " hosts_seen, n_suspects)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    "ledger",
                    None,
                    None,
                    None,
                    None,
                    None,
                    evaluated_at,
                    time.time(),
                    run_id,
                    max(hosts_seen, len(suspects)),
                    len(suspects),
                ),
            )
            window_id = cur.lastrowid
            cur.executemany(
                "INSERT INTO verdict_hosts (window_id, host, flagged,"
                " cluster_id, cluster_diameter) VALUES (?, ?, 1, NULL, NULL)",
                [(window_id, host) for host in sorted(suspects)],
            )
            self._update_reputation(cur, evaluated_at, suspects, suspects)
            self._conn.commit()
        _WRITES.inc(source="ledger")
        return window_id

    def import_ledger(self, ledger) -> int:
        """Record every run of a :class:`~repro.obs.ledger.RunLedger`
        not yet in the DB.  Returns how many were newly recorded."""
        imported = 0
        for manifest in ledger.runs():
            if self.record_ledger_run(manifest) is not None:
                imported += 1
        return imported

    def _update_reputation(self, cur, evaluated_at, seen, flagged) -> None:
        """``score ← score·λ + 1[flagged]`` for every host seen in the
        window (hosts not seen keep their score — absence of traffic is
        not evidence of innocence, and decay-on-silence would let a bot
        launder its score by going quiet)."""
        now = time.time()
        for host in sorted(seen):
            is_flagged = host in flagged
            cur.execute(
                "SELECT score, flagged_windows, seen_windows FROM reputation"
                " WHERE host = ?",
                (host,),
            )
            row = cur.fetchone()
            if row is None:
                score, n_flagged, n_seen = 0.0, 0, 0
            else:
                score, n_flagged, n_seen = (
                    row["score"], row["flagged_windows"], row["seen_windows"]
                )
            score = score * self.decay + (1.0 if is_flagged else 0.0)
            cur.execute(
                "INSERT INTO reputation (host, score, flagged_windows,"
                " seen_windows, last_evaluated, last_flagged, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(host) DO UPDATE SET score = excluded.score,"
                " flagged_windows = excluded.flagged_windows,"
                " seen_windows = excluded.seen_windows,"
                " last_evaluated = excluded.last_evaluated,"
                " last_flagged = COALESCE(excluded.last_flagged,"
                "                         reputation.last_flagged),"
                " updated_at = excluded.updated_at",
                (
                    host,
                    score,
                    n_flagged + (1 if is_flagged else 0),
                    n_seen + 1,
                    evaluated_at,
                    evaluated_at if is_flagged else None,
                    now,
                ),
            )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def windows(
        self, *, since: Optional[float] = None, source: Optional[str] = None
    ) -> List[Dict]:
        """Recorded windows, oldest first."""
        _QUERIES.inc(kind="windows")
        sql = "SELECT * FROM windows"
        clauses, params = [], []
        if since is not None:
            clauses.append("evaluated_at >= ?")
            params.append(since)
        if source is not None:
            clauses.append("source = ?")
            params.append(source)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY evaluated_at, id"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [dict(row) for row in rows]

    def _window_row(self, window_id: int) -> Optional[Dict]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM windows WHERE id = ?", (window_id,)
            ).fetchone()
        return dict(row) if row is not None else None

    def why(
        self, host: str, window_id: Optional[int] = None
    ) -> Optional[Dict]:
        """The full evidence trail for ``host`` in one window.

        Defaults to the most recent window in which the host was seen.
        Returns ``None`` when the host has never been recorded.
        """
        _QUERIES.inc(kind="why")
        with self._lock:
            if window_id is None:
                row = self._conn.execute(
                    "SELECT v.window_id FROM verdict_hosts v"
                    " JOIN windows w ON w.id = v.window_id"
                    " WHERE v.host = ? ORDER BY w.evaluated_at DESC,"
                    " v.window_id DESC LIMIT 1",
                    (host,),
                ).fetchone()
                if row is None:
                    return None
                window_id = row["window_id"]
            verdict = self._conn.execute(
                "SELECT * FROM verdict_hosts WHERE window_id = ? AND host = ?",
                (window_id, host),
            ).fetchone()
            if verdict is None:
                return None
            stages = self._conn.execute(
                "SELECT stage, value, threshold, keep_below, passed"
                " FROM stage_outcomes WHERE window_id = ? AND host = ?"
                " ORDER BY CASE stage"
                "   WHEN 'reduction' THEN 0 WHEN 'volume' THEN 1"
                "   WHEN 'churn' THEN 2 ELSE 3 END",
                (window_id, host),
            ).fetchall()
            members: List[str] = []
            if verdict["cluster_id"] is not None:
                members = [
                    r["host"]
                    for r in self._conn.execute(
                        "SELECT host FROM cluster_members"
                        " WHERE window_id = ? AND cluster_id = ?"
                        " ORDER BY host",
                        (window_id, verdict["cluster_id"]),
                    ).fetchall()
                ]
            window = self._conn.execute(
                "SELECT * FROM windows WHERE id = ?", (window_id,)
            ).fetchone()
            reputation = self._conn.execute(
                "SELECT * FROM reputation WHERE host = ?", (host,)
            ).fetchone()
        return {
            "host": host,
            "window": dict(window) if window is not None else None,
            "flagged": bool(verdict["flagged"]),
            "stages": {
                r["stage"]: _evidence(
                    r["value"], r["threshold"], r["keep_below"], r["passed"]
                )
                for r in stages
            },
            "cluster": (
                None
                if verdict["cluster_id"] is None
                else {
                    "cluster_id": verdict["cluster_id"],
                    "diameter": verdict["cluster_diameter"],
                    "co_members": [m for m in members if m != host],
                }
            ),
            "reputation": dict(reputation) if reputation is not None else None,
        }

    def history(
        self, host: str, *, since: Optional[float] = None
    ) -> List[Dict]:
        """The host's day-over-day verdict history, oldest first."""
        _QUERIES.inc(kind="history")
        sql = (
            "SELECT w.id AS window_id, w.source, w.epoch, w.shard,"
            " w.grid_index, w.evaluated_at, w.run_id, v.flagged,"
            " v.cluster_id, v.cluster_diameter"
            " FROM verdict_hosts v JOIN windows w ON w.id = v.window_id"
            " WHERE v.host = ?"
        )
        params: List[object] = [host]
        if since is not None:
            sql += " AND w.evaluated_at >= ?"
            params.append(since)
        sql += " ORDER BY w.evaluated_at, w.id"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [
            {**dict(row), "flagged": bool(row["flagged"])} for row in rows
        ]

    def funnel_drop(
        self,
        survived: str,
        died: str,
        *,
        since: Optional[float] = None,
    ) -> List[Dict]:
        """Hosts that passed stage ``survived`` but failed stage
        ``died`` in the same window — e.g. "survived θ_vol, died at
        θ_hm this week".  Stage names accept the ``theta_*`` aliases.
        """
        _QUERIES.inc(kind="funnel_drop")
        survived = canonical_stage(survived)
        died = canonical_stage(died)
        sql = (
            "SELECT a.window_id, a.host, w.evaluated_at,"
            " a.value AS survived_value, a.threshold AS survived_threshold,"
            " b.value AS died_value, b.threshold AS died_threshold"
            " FROM stage_outcomes a"
            " JOIN stage_outcomes b ON b.window_id = a.window_id"
            "   AND b.host = a.host AND b.stage = ?"
            " JOIN windows w ON w.id = a.window_id"
            " WHERE a.stage = ? AND a.passed = 1 AND b.passed = 0"
        )
        params: List[object] = [died, survived]
        with self._lock:
            if since is not None:
                # Resolve the time filter to window ids first so the
                # (stage, passed, window_id, …) index prunes to the
                # selected windows instead of probing every window's
                # survivors — "this week" stays O(this week's rows).
                ids = [
                    row["id"]
                    for row in self._conn.execute(
                        "SELECT id FROM windows WHERE evaluated_at >= ?",
                        (since,),
                    ).fetchall()
                ]
                if not ids:
                    return []
                sql += (
                    " AND a.window_id IN ("
                    + ",".join("?" * len(ids))
                    + ")"
                )
                params.extend(ids)
            sql += " ORDER BY w.evaluated_at, a.window_id, a.host"
            rows = self._conn.execute(sql, params).fetchall()
        return [dict(row) for row in rows]

    def reputation_top(
        self, limit: int = 20, *, min_score: float = 0.0
    ) -> List[Dict]:
        """Hosts by decayed suspicion score, highest first."""
        _QUERIES.inc(kind="reputation")
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM reputation WHERE score >= ?"
                " ORDER BY score DESC, host LIMIT ?",
                (min_score, max(0, limit)),
            ).fetchall()
        return [dict(row) for row in rows]

    def suspects(self, *, since: Optional[float] = None) -> List[str]:
        """Distinct hosts flagged in any window (optionally since T)."""
        _QUERIES.inc(kind="suspects")
        sql = (
            "SELECT DISTINCT v.host FROM verdict_hosts v"
            " JOIN windows w ON w.id = v.window_id WHERE v.flagged = 1"
        )
        params: List[object] = []
        if since is not None:
            sql += " AND w.evaluated_at >= ?"
            params.append(since)
        sql += " ORDER BY v.host"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [row["host"] for row in rows]

    def stats(self) -> Dict[str, object]:
        """Row counts per table — the ``repro query windows`` footer."""
        out: Dict[str, object] = {"path": str(self.path)}
        with self._lock:
            for table in (
                "windows",
                "stage_outcomes",
                "verdict_hosts",
                "clusters",
                "reputation",
            ):
                row = self._conn.execute(
                    f"SELECT COUNT(*) AS n FROM {table}"
                ).fetchone()
                out[table] = row["n"]
        return out
