"""repro.query — the indexed analyst query plane (ROADMAP item 5).

Three cooperating pieces turn "why was host H flagged?" from a full
trace rescan into a millisecond lookup:

* :mod:`repro.query.index` — secondary indexes over the segment store
  (per-host timelines, destination sketches), maintained incrementally
  through :meth:`~repro.storage.store.SegmentStore.add_commit_hook`
  and persisted with the ``storage.format`` torn-tail discipline;
* :mod:`repro.query.verdicts` — the SQLite (WAL) verdict/evidence
  history with per-host decaying reputation scores, fed by batch runs,
  the run ledger, and the serve plane's live verdict stream;
* :mod:`repro.query.api` / :mod:`repro.query.cli` — the
  :class:`QueryEngine` facade and the ``repro query`` command.
"""

from .api import QueryEngine, rescan_timeline
from .index import (
    HostTimeline,
    QueryIndex,
    SegmentSpan,
    StaleIndexError,
    TornIndexError,
)
from .sketch import DestinationSketch
from .verdicts import DEFAULT_DECAY, VerdictDB, stage_rows

__all__ = [
    "QueryEngine",
    "rescan_timeline",
    "QueryIndex",
    "HostTimeline",
    "SegmentSpan",
    "TornIndexError",
    "StaleIndexError",
    "DestinationSketch",
    "VerdictDB",
    "DEFAULT_DECAY",
    "stage_rows",
]
