"""Secondary indexes over ``.rseg`` segments: the analyst's read path.

``SegmentStore`` answers "give me these hosts' rows"; an analyst asks
"*which* hosts, *when*, talking to *how many* destinations?".  Scanning
segments to answer that is exactly the rescan this subsystem exists to
kill, so :class:`QueryIndex` maintains three derived structures:

* **per-host flow timelines** — first/last seen, total rows, and the
  per-segment spans ``(segment, rows, t_min, t_max)`` that locate the
  host's rows inside the store (the row offsets a follow-up gather
  needs, at segment granularity);
* **destination-set sketches** — a :class:`~repro.query.sketch.DestinationSketch`
  per host: exact below a threshold, HyperLogLog above it;
* the **catalog fingerprint** — the store generation and segment list
  the index was built against, so staleness is detected, never guessed.

Maintenance is **incremental**: the index registers a
:meth:`~repro.storage.store.SegmentStore.add_commit_hook` and absorbs
each newly cut segment as it commits (one column scan over *new* data
only).  Compaction preserves rows, so sketches survive it and only the
segment spans are re-derived from footers; truncation and repair drop
rows, so they trigger a full rebuild — sketches are unions and cannot
be subtracted from.

Persistence follows the ``storage.format`` discipline exactly: one
``queryindex.rqix`` file next to the manifest, written through
:func:`~repro.resilience.io.atomic_write`, framed header + JSON body +
CRC/length trailer so truncation at *any* byte offset raises
:class:`TornIndexError` instead of returning a half-index.  A torn,
stale, missing or version-drifted index is never an error for the
caller: :func:`QueryIndex.open_or_rebuild` rebuilds it from segments —
the catalog is the truth, the index is a cache with a checksum.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from ..resilience import faults
from ..resilience.io import atomic_write
from ..storage.format import Segment, SegmentMeta, StorageError
from ..storage.store import SegmentStore
from .sketch import DEFAULT_EXACT_THRESHOLD, DEFAULT_PRECISION, DestinationSketch

__all__ = [
    "INDEX_NAME",
    "INDEX_VERSION",
    "TornIndexError",
    "StaleIndexError",
    "SegmentSpan",
    "HostTimeline",
    "QueryIndex",
]

logger = get_logger("query.index")

#: Bump on any incompatible change to the index payload schema.
INDEX_VERSION = 1

INDEX_NAME = "queryindex.rqix"

_HEADER_PREFIX = b"RQIX"
_HEADER = _HEADER_PREFIX + bytes([INDEX_VERSION]) + b"\n"
_TRAILER_MAGIC = b"XIQR\n"
_TRAILER_STRUCT = struct.Struct("<IQ")
_TRAILER_LEN = _TRAILER_STRUCT.size + len(_TRAILER_MAGIC)
_PAYLOAD_FORMAT = "repro-query-index"

_UPDATES = obs_metrics.counter(
    "repro_index_updates_total",
    "Incremental index maintenance events, by catalog commit kind",
    labels=("event",),
)
_REBUILDS = obs_metrics.counter(
    "repro_index_rebuilds_total",
    "Full index rebuilds from segments, by trigger",
    labels=("reason",),
)
_SAVES = obs_metrics.counter(
    "repro_index_saves_total", "Index files persisted"
)
_TORN = obs_metrics.counter(
    "repro_index_torn_total", "Torn/corrupt index files detected"
)
_HOSTS_GAUGE = obs_metrics.gauge(
    "repro_index_hosts", "Hosts in the last touched query index"
)


class TornIndexError(StorageError):
    """The index file is truncated or fails its CRC/framing checks."""


class StaleIndexError(StorageError):
    """The index was built against a different store generation."""


@dataclass(frozen=True)
class SegmentSpan:
    """One segment's contribution to a host's timeline."""

    segment: str
    rows: int
    t_min: float
    t_max: float

    def to_json(self) -> List[object]:
        return [self.segment, self.rows, self.t_min, self.t_max]

    @classmethod
    def from_json(cls, payload: List[object]) -> "SegmentSpan":
        return cls(
            segment=str(payload[0]),
            rows=int(payload[1]),
            t_min=float(payload[2]),
            t_max=float(payload[3]),
        )


@dataclass(frozen=True)
class HostTimeline:
    """Everything the index knows about one host's activity."""

    host: str
    rows: int
    first_seen: float
    last_seen: float
    spans: Tuple[SegmentSpan, ...]
    distinct_destinations: int
    destinations_exact: bool

    @property
    def active_span(self) -> float:
        return self.last_seen - self.first_seen


class _HostEntry:
    """Mutable per-host accumulator behind :class:`HostTimeline`."""

    __slots__ = ("rows", "first_seen", "last_seen", "spans", "sketch")

    def __init__(self, sketch: DestinationSketch) -> None:
        self.rows = 0
        self.first_seen = float("inf")
        self.last_seen = float("-inf")
        self.spans: List[SegmentSpan] = []
        self.sketch = sketch

    def absorb_span(self, span: SegmentSpan) -> None:
        self.rows += span.rows
        self.first_seen = min(self.first_seen, span.t_min)
        self.last_seen = max(self.last_seen, span.t_max)
        self.spans.append(span)


class QueryIndex:
    """Per-host timelines + destination sketches over one segment store."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
        precision: int = DEFAULT_PRECISION,
    ) -> None:
        self.directory = Path(directory)
        self.generation = -1
        self.segments: List[str] = []
        self.total_rows = 0
        self.exact_threshold = exact_threshold
        self.precision = precision
        self._hosts: Dict[str, _HostEntry] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        store: SegmentStore,
        *,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
        precision: int = DEFAULT_PRECISION,
    ) -> "QueryIndex":
        """Index every catalogued segment of ``store`` from scratch."""
        index = cls(
            store.directory,
            exact_threshold=exact_threshold,
            precision=precision,
        )
        for segment in store.segments():
            index._absorb_segment(segment)
        index.generation = store.generation
        index.segments = [m.name for m in store.metas]
        index._set_gauge()
        return index

    def _entry(self, host: str) -> _HostEntry:
        entry = self._hosts.get(host)
        if entry is None:
            entry = _HostEntry(
                DestinationSketch(
                    precision=self.precision,
                    exact_threshold=self.exact_threshold,
                )
            )
            self._hosts[host] = entry
        return entry

    def _absorb_segment(self, segment: Segment) -> None:
        """Fold one segment's rows in: timelines from the footer zone
        maps (no column reads), sketches from one dst-column scan."""
        name = segment.path.name
        for local, host in enumerate(segment.hosts):
            self._entry(host).absorb_span(
                SegmentSpan(
                    segment=name,
                    rows=int(segment.host_rows[local]),
                    t_min=float(segment.host_t_min[local]),
                    t_max=float(segment.host_t_max[local]),
                )
            )
        self.total_rows += segment.rows
        # One pass over (src_codes, dst_codes): group rows by host,
        # dedupe destination codes per host, feed the sketches strings
        # (store-global identity — codes are per-segment).
        src = np.asarray(segment.src_codes)
        dst = np.asarray(segment.dst_codes)
        order = np.argsort(src, kind="stable")
        sorted_src = src[order]
        sorted_dst = dst[order]
        boundaries = np.searchsorted(
            sorted_src, np.arange(len(segment.hosts) + 1)
        )
        dsts = segment.dsts
        for local, host in enumerate(segment.hosts):
            lo, hi = boundaries[local], boundaries[local + 1]
            codes = np.unique(sorted_dst[lo:hi])
            self._hosts[host].sketch.update(dsts[c] for c in codes)

    def _rebuild_timelines(self, store: SegmentStore) -> None:
        """Re-derive spans/counts from footers, keeping the sketches.

        Correct after compaction only: the row *set* is unchanged, so
        destination sketches stay valid, while segment names (and hence
        spans) do not.
        """
        sketches = {h: e.sketch for h, e in self._hosts.items()}
        self._hosts = {}
        self.total_rows = 0
        for segment in store.segments():
            name = segment.path.name
            for local, host in enumerate(segment.hosts):
                entry = self._hosts.get(host)
                if entry is None:
                    entry = _HostEntry(
                        sketches.get(host)
                        or DestinationSketch(
                            precision=self.precision,
                            exact_threshold=self.exact_threshold,
                        )
                    )
                    self._hosts[host] = entry
                entry.absorb_span(
                    SegmentSpan(
                        segment=name,
                        rows=int(segment.host_rows[local]),
                        t_min=float(segment.host_t_min[local]),
                        t_max=float(segment.host_t_max[local]),
                    )
                )
            self.total_rows += segment.rows

    # ------------------------------------------------------------------
    # Store attachment (incremental maintenance)
    # ------------------------------------------------------------------
    def attach(self, store: SegmentStore):
        """Register a commit hook keeping this index current + persisted.

        Returns the hook callable so callers can
        :meth:`~repro.storage.store.SegmentStore.remove_commit_hook` it.
        Every event ends in an atomic :meth:`save`, so a crash between
        commits leaves either the previous index (stale → rebuilt on
        next open) or the new one — never a torn file.
        """

        def hook(
            hooked_store: SegmentStore,
            event: str,
            new_metas: List[SegmentMeta],
        ) -> None:
            _UPDATES.inc(event=event)
            if event == "append":
                for meta in new_metas:
                    self._absorb_segment(hooked_store._segment(meta.name))
            elif event == "compact":
                self._rebuild_timelines(hooked_store)
            else:  # truncate / repair: rows were dropped — start over
                fresh = QueryIndex.build(
                    hooked_store,
                    exact_threshold=self.exact_threshold,
                    precision=self.precision,
                )
                self._hosts = fresh._hosts
                self.total_rows = fresh.total_rows
                _REBUILDS.inc(reason=event)
            self.generation = hooked_store.generation
            self.segments = [m.name for m in hooked_store.metas]
            self.save()

        store.add_commit_hook(hook)
        return hook

    @classmethod
    def open_or_rebuild(
        cls,
        store: SegmentStore,
        *,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
        precision: int = DEFAULT_PRECISION,
    ) -> Tuple["QueryIndex", Optional[str]]:
        """Load the persisted index, or rebuild it from segments.

        Returns ``(index, rebuilt_reason)`` where the reason is ``None``
        on a clean load and one of ``"missing"`` / ``"torn"`` /
        ``"version"`` / ``"stale"`` when the persisted file could not be
        trusted and the index was rebuilt (and re-persisted).
        """
        reason: Optional[str] = None
        try:
            index = cls.load(store.directory)
        except FileNotFoundError:
            reason = "missing"
        except TornIndexError:
            _TORN.inc()
            reason = "torn"
        except StorageError as exc:
            reason = "version" if "version" in str(exc) else "torn"
        else:
            if (
                index.generation != store.generation
                or index.segments != [m.name for m in store.metas]
            ):
                reason = "stale"
        if reason is None:
            index._set_gauge()
            return index, None
        _REBUILDS.inc(reason=reason)
        logger.info(
            "rebuilding query index for %s (%s)", store.directory, reason
        )
        index = cls.build(
            store, exact_threshold=exact_threshold, precision=precision
        )
        index.save()
        return index, reason

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        return len(self._hosts)

    def hosts(self) -> List[str]:
        """Every indexed host, sorted."""
        return sorted(self._hosts)

    def timeline(self, host: str) -> Optional[HostTimeline]:
        """The host's full activity summary, or ``None`` if never seen."""
        entry = self._hosts.get(host)
        if entry is None:
            return None
        return HostTimeline(
            host=host,
            rows=entry.rows,
            first_seen=entry.first_seen,
            last_seen=entry.last_seen,
            spans=tuple(entry.spans),
            distinct_destinations=entry.sketch.cardinality(),
            destinations_exact=entry.sketch.exact,
        )

    def destinations(self, host: str) -> Optional[List[str]]:
        """The exact destination list, if the sketch still has it."""
        entry = self._hosts.get(host)
        if entry is None:
            return None
        return entry.sketch.destinations()

    def active_hosts(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> List[str]:
        """Hosts whose per-segment time zones overlap ``[t0, t1)``.

        Zone-map granularity: a host is listed when at least one of its
        segment spans overlaps the range, which is exact whenever spans
        are dense (window-aligned spools) and otherwise a tight
        superset — the engine uses it to prune before any exact count.
        """
        selected = []
        for host, entry in self._hosts.items():
            for span in entry.spans:
                if (t0 is None or span.t_max >= t0) and (
                    t1 is None or span.t_min < t1
                ):
                    selected.append(host)
                    break
        return sorted(selected)

    def top_talkers(self, limit: int = 20) -> List[Tuple[str, int]]:
        """Hosts by total flow rows, descending (host asc breaks ties)."""
        ranked = sorted(
            ((host, entry.rows) for host, entry in self._hosts.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[: max(0, limit)]

    def segments_for(
        self,
        host: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> List[str]:
        """Segment names that can hold the host's rows in the range —
        the gather pre-filter an indexed investigation hands the store."""
        entry = self._hosts.get(host)
        if entry is None:
            return []
        return [
            span.segment
            for span in entry.spans
            if (t0 is None or span.t_max >= t0)
            and (t1 is None or span.t_min < t1)
        ]

    def _set_gauge(self) -> None:
        if obs_metrics.is_enabled():
            _HOSTS_GAUGE.set(self.n_hosts)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self.directory / INDEX_NAME

    def to_payload(self) -> Dict[str, object]:
        return {
            "format": _PAYLOAD_FORMAT,
            "version": INDEX_VERSION,
            "generation": self.generation,
            "segments": list(self.segments),
            "total_rows": self.total_rows,
            "exact_threshold": self.exact_threshold,
            "precision": self.precision,
            "hosts": {
                host: {
                    "rows": entry.rows,
                    "first_seen": entry.first_seen,
                    "last_seen": entry.last_seen,
                    "spans": [span.to_json() for span in entry.spans],
                    "dsts": entry.sketch.to_json(),
                }
                for host, entry in sorted(self._hosts.items())
            },
        }

    def save(self) -> Path:
        """Atomically persist next to the manifest (CRC-framed)."""
        payload = json.dumps(self.to_payload(), sort_keys=True).encode("utf-8")
        trailer = (
            _TRAILER_STRUCT.pack(zlib.crc32(payload), len(payload))
            + _TRAILER_MAGIC
        )
        faults.io_point("query-index")
        with atomic_write(self.path, "wb") as handle:
            handle.write(_HEADER)
            handle.write(payload)
            handle.write(trailer)
        _SAVES.inc()
        self._set_gauge()
        return self.path

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "QueryIndex":
        """Read + validate a persisted index (no store access).

        Raises :class:`FileNotFoundError` when absent, and
        :class:`TornIndexError` for truncation, CRC failure or framing
        damage at any byte offset.
        """
        directory = Path(directory)
        path = directory / INDEX_NAME
        data = path.read_bytes()
        if len(data) < len(_HEADER) + _TRAILER_LEN:
            raise TornIndexError(
                f"{path}: {len(data)} bytes is too short to be an index"
            )
        header = data[: len(_HEADER)]
        if header != _HEADER:
            if header[: len(_HEADER_PREFIX)] == _HEADER_PREFIX:
                raise StorageError(
                    f"{path}: index format version {header[len(_HEADER_PREFIX)]}"
                    f" is not supported (this build reads version "
                    f"{INDEX_VERSION})"
                )
            raise TornIndexError(f"{path}: not an index file (bad header)")
        if data[-len(_TRAILER_MAGIC):] != _TRAILER_MAGIC:
            raise TornIndexError(
                f"{path}: trailer magic missing — file is truncated"
            )
        crc, payload_len = _TRAILER_STRUCT.unpack(
            data[-_TRAILER_LEN: -len(_TRAILER_MAGIC)]
        )
        body = data[len(_HEADER): len(data) - _TRAILER_LEN]
        if len(body) != payload_len or zlib.crc32(body) != crc:
            raise TornIndexError(f"{path}: payload fails its CRC check")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TornIndexError(f"{path}: payload is not valid JSON") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _PAYLOAD_FORMAT
        ):
            raise TornIndexError(f"{path}: payload is not a query index")
        if payload.get("version") != INDEX_VERSION:
            raise StorageError(
                f"{path}: index payload version {payload.get('version')!r} "
                f"is not supported (this build reads version {INDEX_VERSION})"
            )
        index = cls(
            directory,
            exact_threshold=int(payload["exact_threshold"]),
            precision=int(payload["precision"]),
        )
        index.generation = int(payload["generation"])
        index.segments = [str(s) for s in payload["segments"]]
        index.total_rows = int(payload["total_rows"])
        for host, doc in payload["hosts"].items():
            entry = _HostEntry(DestinationSketch.from_json(doc["dsts"]))
            entry.rows = int(doc["rows"])
            entry.first_seen = float(doc["first_seen"])
            entry.last_seen = float(doc["last_seen"])
            entry.spans = [SegmentSpan.from_json(s) for s in doc["spans"]]
            index._hosts[host] = entry
        return index
