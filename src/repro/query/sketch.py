"""Destination-set sketches: exact below a threshold, HLL above it.

The analyst question "how many distinct destinations has H contacted?"
is the classic distinct-count problem.  Keeping every destination
string per host would make the index grow with the traffic, not with
the population, so each host carries a :class:`DestinationSketch`:

* **exact mode** — a plain sorted set while the host has fewer than
  ``exact_threshold`` distinct destinations.  Most campus hosts stay
  here forever, and every query about them is *bit-exact* (the
  equivalence suite pins this against brute-force scans).
* **sketch mode** — once the threshold is crossed the set collapses
  into HyperLogLog registers (2^p of them; default p=12, ~0.8 KiB,
  ~1.6 % standard error).  Heavy hosts — exactly the ones a P2P
  detector cares about — cost constant space from then on.

Sketches are **mergeable** in both modes (exact∪exact may itself
collapse; anything involving registers merges register-wise), which is
what lets the index fold per-segment contributions together in any
order, and makes compaction a no-op for destination counts.

Hashing is ``blake2b`` (64-bit digests), seeded only by the
destination string, so the same destination observed in different
segments — or different *stores* — always lands in the same register.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

__all__ = ["DEFAULT_EXACT_THRESHOLD", "DEFAULT_PRECISION", "DestinationSketch"]

#: Distinct destinations a host may accumulate before its exact set
#: collapses into HLL registers.
DEFAULT_EXACT_THRESHOLD = 256

#: HLL precision p: 2^p registers.  p=12 keeps the relative error near
#: 1.04/sqrt(4096) ≈ 1.6 % at ~4 KiB JSON cost per heavy host.
DEFAULT_PRECISION = 12

_HASH_BITS = 64


def _hash64(value: str) -> int:
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _alpha(m: int) -> float:
    # Flajolet et al.'s bias-correction constants.
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class DestinationSketch:
    """A mergeable distinct-destination counter for one host."""

    __slots__ = ("precision", "exact_threshold", "_values", "_registers")

    def __init__(
        self,
        *,
        precision: int = DEFAULT_PRECISION,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    ) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        if exact_threshold < 0:
            raise ValueError("exact_threshold must be >= 0")
        self.precision = precision
        self.exact_threshold = exact_threshold
        self._values: Optional[set] = set()
        self._registers: Optional[List[int]] = None

    # -- state ----------------------------------------------------------
    @property
    def exact(self) -> bool:
        """Whether the sketch still holds the exact destination set."""
        return self._values is not None

    def __len__(self) -> int:
        return self.cardinality()

    # -- updates --------------------------------------------------------
    def add(self, destination: str) -> None:
        if self._values is not None:
            self._values.add(destination)
            if len(self._values) > self.exact_threshold:
                self._collapse()
        else:
            self._observe_hash(_hash64(destination))

    def update(self, destinations: Iterable[str]) -> None:
        for destination in destinations:
            self.add(destination)

    def merge(self, other: "DestinationSketch") -> None:
        """Fold ``other`` into this sketch (both survive exactness only
        if their union stays under the threshold)."""
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge sketches of precision {other.precision} "
                f"into precision {self.precision}"
            )
        if self._values is not None and other._values is not None:
            self._values.update(other._values)
            if len(self._values) > self.exact_threshold:
                self._collapse()
            return
        if self._values is not None:
            self._collapse()
        registers = self._registers
        if other._values is not None:
            for value in other._values:
                self._observe_hash(_hash64(value))
        else:
            for i, rank in enumerate(other._registers):
                if rank > registers[i]:
                    registers[i] = rank

    def _collapse(self) -> None:
        values = self._values
        self._values = None
        self._registers = [0] * (1 << self.precision)
        for value in values:
            self._observe_hash(_hash64(value))

    def _observe_hash(self, h: int) -> None:
        index = h >> (_HASH_BITS - self.precision)
        rest = h & ((1 << (_HASH_BITS - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remaining bits
        # (1-based); an all-zero remainder gets the maximum rank.
        width = _HASH_BITS - self.precision
        rank = width - rest.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    # -- queries --------------------------------------------------------
    def cardinality(self) -> int:
        """Distinct destinations: exact, or the HLL estimate."""
        if self._values is not None:
            return len(self._values)
        m = len(self._registers)
        inverse_sum = 0.0
        zeros = 0
        for rank in self._registers:
            inverse_sum += 2.0 ** (-rank)
            if rank == 0:
                zeros += 1
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m and zeros:
            # Linear counting handles the small-cardinality regime.
            import math

            return int(round(m * math.log(m / zeros)))
        return int(round(raw))

    def contains(self, destination: str) -> Optional[bool]:
        """Membership: definitive in exact mode, ``None`` once sketched."""
        if self._values is not None:
            return destination in self._values
        return None

    def destinations(self) -> Optional[List[str]]:
        """The exact destination list (sorted), or ``None`` if sketched."""
        if self._values is None:
            return None
        return sorted(self._values)

    # -- persistence ----------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        if self._values is not None:
            return {
                "kind": "exact",
                "exact_threshold": self.exact_threshold,
                "precision": self.precision,
                "values": sorted(self._values),
            }
        # Run-length-free compact form: registers as a list of ints is
        # JSON-friendly and diff-stable; zeros dominate early on.
        return {
            "kind": "hll",
            "exact_threshold": self.exact_threshold,
            "precision": self.precision,
            "registers": list(self._registers),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "DestinationSketch":
        sketch = cls(
            precision=int(payload["precision"]),
            exact_threshold=int(payload["exact_threshold"]),
        )
        if payload["kind"] == "exact":
            sketch._values = set(payload["values"])
            if len(sketch._values) > sketch.exact_threshold:
                sketch._collapse()
        elif payload["kind"] == "hll":
            registers = [int(r) for r in payload["registers"]]
            if len(registers) != (1 << sketch.precision):
                raise ValueError(
                    f"register count {len(registers)} does not match "
                    f"precision {sketch.precision}"
                )
            sketch._values = None
            sketch._registers = registers
        else:
            raise ValueError(f"unknown sketch kind {payload['kind']!r}")
        return sketch
