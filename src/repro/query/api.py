"""The analyst query engine: one facade over indexes and the verdict DB.

:class:`QueryEngine` binds the two halves of the query plane together:

* a :class:`~repro.storage.store.SegmentStore` plus its
  :class:`~repro.query.index.QueryIndex` (opened or rebuilt on first
  touch) answer *traffic* questions — timelines, destination counts,
  activity;
* a :class:`~repro.query.verdicts.VerdictDB` answers *verdict*
  questions — why, history, funnel drops, reputation.

Either half is optional: an engine over just a DB answers verdict
queries, an engine over just a store answers traffic queries, and the
``repro query`` CLI wires up whichever the analyst pointed it at.

:func:`rescan_timeline` is the deliberate slow path: the brute-force
column scan the indexes replace.  It exists so equivalence can be
*asserted*, not assumed — the property suite pins every indexed answer
bit-equal to it, and the benchmark measures the speedup against it.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..storage.store import SegmentStore
from .index import HostTimeline, QueryIndex
from .verdicts import VerdictDB

__all__ = ["QueryEngine", "rescan_timeline"]

_REQUESTS = obs_metrics.counter(
    "repro_query_requests_total",
    "Query-engine requests served, by kind",
    labels=("kind",),
)
_LATENCY = obs_metrics.histogram(
    "repro_query_latency_seconds",
    "Query-engine request latency",
    labels=("kind",),
)


def rescan_timeline(store: SegmentStore, host: str) -> Optional[Dict]:
    """Brute-force ``timeline(host)``: full column scans, no index.

    Returns the same facts as :meth:`QueryIndex.timeline` (rows,
    first/last seen, distinct destinations — always exact) as a plain
    dict, or ``None`` when the host never appears.  This is the
    equivalence oracle and the benchmark baseline.
    """
    rows = 0
    first_seen = float("inf")
    last_seen = float("-inf")
    destinations = set()
    for segment in store.segments():
        local = segment.host_index.get(host)
        if local is None:
            continue
        mask = np.asarray(segment.src_codes) == local
        n = int(mask.sum())
        if n == 0:
            continue
        rows += n
        starts = np.asarray(segment.starts)[mask]
        first_seen = min(first_seen, float(starts.min()))
        last_seen = max(last_seen, float(starts.max()))
        dsts = segment.dsts
        for code in np.unique(np.asarray(segment.dst_codes)[mask]):
            destinations.add(dsts[code])
    if rows == 0:
        return None
    return {
        "host": host,
        "rows": rows,
        "first_seen": first_seen,
        "last_seen": last_seen,
        "distinct_destinations": len(destinations),
        "destinations": sorted(destinations),
    }


class QueryEngine:
    """Millisecond answers over the segment store and verdict history."""

    def __init__(
        self,
        store_dir: Optional[Union[str, Path]] = None,
        db_path: Optional[Union[str, Path]] = None,
        *,
        store: Optional[SegmentStore] = None,
        db: Optional[VerdictDB] = None,
    ) -> None:
        if store is not None and store_dir is not None:
            raise ValueError("pass store_dir or store, not both")
        if db is not None and db_path is not None:
            raise ValueError("pass db_path or db, not both")
        self._store_dir = Path(store_dir) if store_dir is not None else None
        self._db_path = Path(db_path) if db_path is not None else None
        self._store = store
        self._db = db
        self._owns_db = db is None
        self._index: Optional[QueryIndex] = None
        #: Why the index was rebuilt on open (None = clean load / not
        #: yet opened) — surfaced by the CLI and the smoke soak.
        self.index_rebuilt: Optional[str] = None

    # ------------------------------------------------------------------
    # Lazy plumbing
    # ------------------------------------------------------------------
    @property
    def store(self) -> SegmentStore:
        if self._store is None:
            if self._store_dir is None:
                raise ValueError(
                    "this engine has no segment store (pass store_dir)"
                )
            self._store = SegmentStore.open(self._store_dir, repair=True)
        return self._store

    @property
    def index(self) -> QueryIndex:
        if self._index is None:
            self._index, self.index_rebuilt = QueryIndex.open_or_rebuild(
                self.store
            )
        return self._index

    @property
    def db(self) -> VerdictDB:
        if self._db is None:
            if self._db_path is None:
                raise ValueError(
                    "this engine has no verdict database (pass db_path)"
                )
            self._db = VerdictDB(self._db_path)
        return self._db

    @property
    def has_store(self) -> bool:
        return self._store is not None or self._store_dir is not None

    @property
    def has_db(self) -> bool:
        return self._db is not None or self._db_path is not None

    def close(self) -> None:
        if self._db is not None and self._owns_db:
            self._db.close()
        self._db = None

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _observe(self, kind: str, t0: float) -> None:
        _REQUESTS.inc(kind=kind)
        _LATENCY.observe(time.perf_counter() - t0, kind=kind)

    # ------------------------------------------------------------------
    # Traffic queries (index-backed)
    # ------------------------------------------------------------------
    def timeline(self, host: str) -> Optional[HostTimeline]:
        t0 = time.perf_counter()
        out = self.index.timeline(host)
        self._observe("timeline", t0)
        return out

    def destinations(self, host: str) -> Optional[List[str]]:
        t0 = time.perf_counter()
        out = self.index.destinations(host)
        self._observe("destinations", t0)
        return out

    def active_hosts(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> List[str]:
        started = time.perf_counter()
        out = self.index.active_hosts(t0, t1)
        self._observe("active_hosts", started)
        return out

    def top_talkers(self, limit: int = 20) -> List:
        t0 = time.perf_counter()
        out = self.index.top_talkers(limit)
        self._observe("top_talkers", t0)
        return out

    # ------------------------------------------------------------------
    # Verdict queries (DB-backed)
    # ------------------------------------------------------------------
    def why(self, host: str, window_id: Optional[int] = None) -> Optional[Dict]:
        t0 = time.perf_counter()
        out = self.db.why(host, window_id)
        self._observe("why", t0)
        return out

    def history(
        self, host: str, *, since: Optional[float] = None
    ) -> List[Dict]:
        t0 = time.perf_counter()
        out = self.db.history(host, since=since)
        self._observe("history", t0)
        return out

    def funnel_drop(
        self, survived: str, died: str, *, since: Optional[float] = None
    ) -> List[Dict]:
        t0 = time.perf_counter()
        out = self.db.funnel_drop(survived, died, since=since)
        self._observe("funnel_drop", t0)
        return out

    def reputation_top(
        self, limit: int = 20, *, min_score: float = 0.0
    ) -> List[Dict]:
        t0 = time.perf_counter()
        out = self.db.reputation_top(limit, min_score=min_score)
        self._observe("reputation", t0)
        return out

    # ------------------------------------------------------------------
    # Combined
    # ------------------------------------------------------------------
    def investigate(self, host: str) -> Dict:
        """Everything the plane knows about one host, in one document:
        the indexed traffic timeline plus the verdict trail."""
        t0 = time.perf_counter()
        doc: Dict[str, object] = {"host": host}
        if self.has_store:
            timeline = self.index.timeline(host)
            if timeline is not None:
                doc["traffic"] = {
                    "rows": timeline.rows,
                    "first_seen": timeline.first_seen,
                    "last_seen": timeline.last_seen,
                    "segments": [span.segment for span in timeline.spans],
                    "distinct_destinations": timeline.distinct_destinations,
                    "destinations_exact": timeline.destinations_exact,
                }
            else:
                doc["traffic"] = None
        if self.has_db:
            doc["why"] = self.db.why(host)
            doc["history"] = self.db.history(host)
        self._observe("investigate", t0)
        return doc

    def overview(self) -> Dict:
        """Plane-level summary: index freshness plus DB row counts."""
        t0 = time.perf_counter()
        doc: Dict[str, object] = {}
        if self.has_store:
            index = self.index
            doc["index"] = {
                "hosts": index.n_hosts,
                "rows": index.total_rows,
                "generation": index.generation,
                "segments": len(index.segments),
                "rebuilt": self.index_rebuilt,
            }
        if self.has_db:
            doc["db"] = self.db.stats()
        self._observe("overview", t0)
        return doc
