"""Payload-based ground-truth labeling of Traders.

§III of the paper identifies Traders from the first 64 payload bytes of
each flow record:

* **Gnutella** — the protocol keywords ``GNUTELLA``, ``CONNECT BACK``
  and ``LIME``;
* **eMule** — an initial byte of ``0xe3`` or ``0xc5`` followed by
  protocol framing;
* **BitTorrent** — the keyword ``BitTorrent protocol``, tracker web
  requests beginning ``GET /scrape`` or ``GET /announce``, and DHT
  control messages containing ``d1:ad2:id20`` or ``d1:rd2:id20``.

This module applies exactly those rules.  It is the *evaluation's*
labeler — the detector itself never reads payloads.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..flows.record import FlowRecord
from ..flows.store import FlowStore

__all__ = [
    "classify_payload",
    "trader_protocol_of_host",
    "identify_traders",
]

_GNUTELLA_MARKERS = (b"GNUTELLA", b"CONNECT BACK", b"LIME")
_BITTORRENT_SUBSTRINGS = (b"BitTorrent protocol", b"d1:ad2:id20", b"d1:rd2:id20")
_BITTORRENT_PREFIXES = (b"GET /scrape", b"GET /announce")
_EMULE_MARKERS = (0xE3, 0xC5)


def classify_payload(payload: bytes) -> Optional[str]:
    """The file-sharing protocol evidenced by one payload snippet.

    Returns ``"gnutella"``, ``"emule"``, ``"bittorrent"`` or ``None``.
    The checks follow the paper's rules in a fixed precedence order;
    they are mutually exclusive in practice because the byte patterns do
    not co-occur.
    """
    if not payload:
        return None
    for marker in _GNUTELLA_MARKERS:
        if marker in payload:
            return "gnutella"
    for substring in _BITTORRENT_SUBSTRINGS:
        if substring in payload:
            return "bittorrent"
    for prefix in _BITTORRENT_PREFIXES:
        if payload.startswith(prefix):
            return "bittorrent"
    if payload[0] in _EMULE_MARKERS and len(payload) >= 6:
        # §III: an eMule marker byte "followed by various byte sequences
        # as specified in the protocol specification" — for the 0xe3
        # eD2k TCP framing that is a sane little-endian length field,
        # which screens out random binary payloads that merely start
        # with the marker byte.
        if payload[0] == 0xC5:
            return "emule"
        length = int.from_bytes(payload[1:5], "little")
        if 0 < length <= 1 << 22:
            return "emule"
    return None


def trader_protocol_of_host(store: FlowStore, host: str) -> Optional[str]:
    """The file-sharing protocol a host evidently runs, if any.

    A host is labelled with the protocol that the most of its flows
    match; ``None`` when no flow matches any signature.
    """
    counts: Dict[str, int] = {}
    for flow in store.flows_from(host):
        label = classify_payload(flow.payload)
        if label is not None:
            counts[label] = counts.get(label, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda k: counts[k])


def identify_traders(
    store: FlowStore, hosts: Optional[Set[str]] = None
) -> Dict[str, str]:
    """Hosts with file-sharing payload evidence, with their protocol.

    This reproduces the construction of the paper's "Trader dataset"
    from the raw campus traffic.  ``hosts`` restricts the scan (pass
    the internal host set to label only campus machines — inbound
    flows also carry P2P payloads, but their initiators are external).
    """
    candidates = store.initiators if hosts is None else set(hosts)
    traders: Dict[str, str] = {}
    for host in candidates:
        protocol = trader_protocol_of_host(store, host)
        if protocol is not None:
            traders[host] = protocol
    return traders
