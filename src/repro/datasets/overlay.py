"""Overlaying honeynet Plotter traces onto campus hosts.

§V of the paper: "For each day of traffic in the CMU dataset, we overlay
the bot traces by assigning them to randomly selected internal hosts
that are active during that day (including possibly Traders)."  The
chosen host keeps its own traffic, so the bot's flows are *added on top*
— the detector must find the bot underneath the host's normal
behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..flows.filters import active_hosts
from ..flows.record import FlowRecord
from ..flows.store import FlowStore
from .campus import CampusDay
from .honeynet import HoneynetTrace

__all__ = ["OverlaidDay", "overlay_traces"]


@dataclass
class OverlaidDay:
    """A campus day with Plotter traces implanted.

    ``assignments`` maps each honeynet bot address to the internal host
    it was assigned to; ``plotter_hosts`` is the ground-truth positive
    set for the day's evaluation.
    """

    day: CampusDay
    store: FlowStore
    assignments: Dict[str, str]
    botnet_of: Dict[str, str]

    @property
    def plotter_hosts(self) -> Set[str]:
        return set(self.assignments.values())

    def plotters_of(self, botnet: str) -> Set[str]:
        """Hosts carrying an implanted bot of the given botnet."""
        return {
            host
            for bot, host in self.assignments.items()
            if self.botnet_of[bot] == botnet
        }


def overlay_traces(
    campus: CampusDay,
    traces: Sequence[HoneynetTrace],
    rng: random.Random,
    eligible: Optional[Set[str]] = None,
) -> OverlaidDay:
    """Implant every bot of every trace onto a distinct campus host.

    Parameters
    ----------
    campus:
        The day of background+Trader traffic.
    traces:
        Honeynet traces to overlay (e.g. one Storm and one Nugache).
    rng:
        Randomness for host assignment.
    eligible:
        Candidate hosts; defaults to internal hosts active on the day
        (initiated at least one successful flow), as in §V.

    Raises
    ------
    ValueError
        If there are more bots than eligible hosts (assignments must be
        distinct so ground truth stays unambiguous).
    """
    if eligible is None:
        eligible = active_hosts(campus.store) & campus.all_hosts
    candidates = sorted(eligible)
    total_bots = sum(t.bot_count for t in traces)
    if total_bots > len(candidates):
        raise ValueError(
            f"{total_bots} bots cannot be assigned to {len(candidates)} "
            "eligible hosts"
        )
    chosen = rng.sample(candidates, total_bots)

    # Campus days and honeynet traces both use window-local time
    # starting at zero, so implanting needs no time shift.
    assignments: Dict[str, str] = {}
    botnet_of: Dict[str, str] = {}
    index = 0
    for trace in traces:
        for bot in trace.bots:
            assignments[bot] = chosen[index]
            botnet_of[bot] = trace.botnet
            index += 1

    # Re-attribute every trace flow: outbound flows get the host as
    # their new source, inbound flows (remote peers contacting the bot)
    # get it as their new destination.
    from dataclasses import replace as _replace

    implanted: List[FlowRecord] = []
    for trace in traces:
        for flow in trace.store:
            if flow.src in assignments:
                implanted.append(flow.reassigned(assignments[flow.src]))
            elif flow.dst in assignments:
                implanted.append(_replace(flow, dst=assignments[flow.dst]))
            else:  # pragma: no cover - traces only contain bot flows
                implanted.append(flow)

    merged = FlowStore(list(campus.store))
    merged.extend(implanted)
    return OverlaidDay(
        day=campus,
        store=merged,
        assignments=assignments,
        botnet_of=botnet_of,
    )
