"""Honeynet capture of Plotter traces.

The paper's Plotter traffic came from honeynets run in the wild in late
2007: a 24-hour Storm trace with 13 bots and a 24-hour Nugache trace
with 82 bots, with spam/scan activity blocked so the remaining traffic
is control traffic (§III).  This module reproduces that capture: the
bot agents run alone in a dedicated simulation (no background traffic),
and the per-bot flow records are the "trace" later overlaid onto campus
hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..agents.plotter_nugache import NugachePlotterAgent, NugacheWorld
from ..agents.plotter_waledac import WaledacPlotterAgent, WaledacWorld
from ..agents.plotter_storm import (
    STORM_NETWORK_CHURN,
    StormPlotterAgent,
    StormTimers,
)
from ..flows.store import FlowStore
from ..netsim.addressing import AddressSpace
from ..netsim.clock import COLLECTION_WINDOW
from ..netsim.network import NetworkSimulation
from ..netsim.rng import derive_seed, substream
from ..p2p.kademlia import KademliaNetwork

__all__ = [
    "HoneynetTrace",
    "capture_storm_trace",
    "capture_nugache_trace",
    "capture_waledac_trace",
]

#: Honeynet-internal prefix; overlay reassigns these addresses anyway.
HONEYNET_PREFIX = "172.16."

#: Bot counts from the paper's traces (§III).
STORM_BOT_COUNT = 13
NUGACHE_BOT_COUNT = 82


@dataclass
class HoneynetTrace:
    """A captured Plotter trace: per-bot flows plus the combined store."""

    botnet: str
    bots: Tuple[str, ...]
    store: FlowStore

    def flows_of(self, bot: str) -> FlowStore:
        """Flows initiated by one bot."""
        if bot not in self.bots:
            raise KeyError(f"unknown bot {bot!r} in {self.botnet} trace")
        return FlowStore(self.store.flows_from(bot))

    @property
    def bot_count(self) -> int:
        return len(self.bots)


#: Honeynet subnet per botnet, so traces never share addresses (the
#: overlay keys ground truth by bot address).
_BOTNET_SUBNET = {"storm": 1, "nugache": 2, "waledac": 3}


def _honeynet_addresses(botnet: str, count: int) -> List[str]:
    subnet = _BOTNET_SUBNET[botnet]
    return [f"{HONEYNET_PREFIX}{subnet}.{i + 1}" for i in range(count)]


def capture_storm_trace(
    seed: int,
    n_bots: int = STORM_BOT_COUNT,
    window: float = COLLECTION_WINDOW,
    network_size: int = 600,
    timers: StormTimers = StormTimers(),
    day: int = 0,
) -> HoneynetTrace:
    """Run ``n_bots`` Storm bots in a honeynet for ``window`` seconds.

    All bots share one simulated Overnet population (they are in the
    same botnet) and the same compiled-in timers, so their traffic is
    mutually similar — the property θ_hm exploits.
    """
    capture_seed = derive_seed(seed, "honeynet-storm", day)
    space = AddressSpace(internal_prefixes=(HONEYNET_PREFIX,))
    sim = NetworkSimulation(seed=capture_seed, address_space=space, horizon=window)
    network = KademliaNetwork.build(
        substream(capture_seed, "overnet"),
        size=network_size,
        horizon=window,
        churn=STORM_NETWORK_CHURN,
        address_factory=space.random_external,
    )
    bots = tuple(_honeynet_addresses("storm", n_bots))
    for address in bots:
        sim.add_source(StormPlotterAgent(address, network, day=day, timers=timers))
    store = sim.run()
    return HoneynetTrace(botnet="storm", bots=bots, store=store)


def capture_nugache_trace(
    seed: int,
    n_bots: int = NUGACHE_BOT_COUNT,
    window: float = COLLECTION_WINDOW,
    population: int = 500,
    day: int = 0,
    activity_median: float = 0.30,
    activity_sigma: float = 1.6,
) -> HoneynetTrace:
    """Run ``n_bots`` Nugache bots in a honeynet for ``window`` seconds.

    Per-bot activity levels are lognormal with a heavy spread, giving
    the orders-of-magnitude variation in flow counts the paper reports
    for its Nugache trace (Figure 10) — the quiet bots are the ones the
    detector later struggles with.
    """
    capture_seed = derive_seed(seed, "honeynet-nugache", day)
    space = AddressSpace(internal_prefixes=(HONEYNET_PREFIX,))
    sim = NetworkSimulation(seed=capture_seed, address_space=space, horizon=window)
    world = NugacheWorld(
        substream(capture_seed, "nugache-world"),
        space.random_external,
        horizon=window,
        size=population,
    )
    activity_rng = substream(capture_seed, "activity")
    bots = tuple(_honeynet_addresses("nugache", n_bots))
    for address in bots:
        activity = min(
            1.0, max(0.004, activity_rng.lognormvariate(0.0, activity_sigma) * activity_median)
        )
        sim.add_source(NugachePlotterAgent(address, world, activity=activity))
    store = sim.run()
    return HoneynetTrace(botnet="nugache", bots=bots, store=store)


def capture_waledac_trace(
    seed: int,
    n_bots: int = 30,
    window: float = COLLECTION_WINDOW,
    population: int = 300,
    day: int = 0,
) -> HoneynetTrace:
    """Run ``n_bots`` Waledac-style bots in a honeynet (extension).

    Waledac is not part of the paper's evaluation; the trace supports
    the generalization experiment — how the detector fares on a bot
    family it was never calibrated against (HTTP transport, web-sized
    flows, soft timers).
    """
    capture_seed = derive_seed(seed, "honeynet-waledac", day)
    space = AddressSpace(internal_prefixes=(HONEYNET_PREFIX,))
    sim = NetworkSimulation(seed=capture_seed, address_space=space, horizon=window)
    world = WaledacWorld(
        substream(capture_seed, "waledac-world"),
        space.random_external,
        horizon=window,
        size=population,
    )
    bots = tuple(_honeynet_addresses("waledac", n_bots))
    for address in bots:
        sim.add_source(WaledacPlotterAgent(address, world))
    store = sim.run()
    return HoneynetTrace(botnet="waledac", bots=bots, store=store)
