"""Dataset assembly: campus synthesis, honeynet capture, overlay, labels."""

from .campus import CampusConfig, CampusDay, build_campus_day, build_campus_dataset
from .honeynet import (
    NUGACHE_BOT_COUNT,
    STORM_BOT_COUNT,
    HoneynetTrace,
    capture_nugache_trace,
    capture_storm_trace,
    capture_waledac_trace,
)
from .overlay import OverlaidDay, overlay_traces
from .groundtruth import classify_payload, identify_traders, trader_protocol_of_host
from .traces import (
    load_campus_day,
    load_honeynet_trace,
    save_campus_day,
    save_honeynet_trace,
)

__all__ = [
    "CampusConfig",
    "CampusDay",
    "build_campus_day",
    "build_campus_dataset",
    "NUGACHE_BOT_COUNT",
    "STORM_BOT_COUNT",
    "HoneynetTrace",
    "capture_nugache_trace",
    "capture_storm_trace",
    "capture_waledac_trace",
    "OverlaidDay",
    "overlay_traces",
    "classify_payload",
    "identify_traders",
    "trader_protocol_of_host",
    "load_campus_day",
    "load_honeynet_trace",
    "save_campus_day",
    "save_honeynet_trace",
]
