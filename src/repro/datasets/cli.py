"""Dataset command line: synthesize, inspect, label and detect on disk.

Usage::

    repro-datasets generate --out traces/ --days 2 --scale 0.5 --seed 7
    repro-datasets inspect  --trace traces/campus-day0.flows.csv --top 10
    repro-datasets label    --trace traces/campus-day0.flows.csv
    repro-datasets detect   --trace traces/campus-day0.flows.csv \
        --hm-backend pruned

``generate`` writes campus days plus the Storm and Nugache honeynet
traces in the Argus-like CSV format; ``inspect`` prints per-host
features of any trace (the detector's view of it); ``label`` applies
the payload ground-truth rules; ``detect`` runs the full FindPlotters
pipeline over a trace and prints the suspect set.

Every subcommand accepts the same telemetry flags as
``repro-experiments`` (:func:`repro.obs.add_observability_args`):
``--metrics-out``, ``--prom-out``, ``--prom-port`` and
``--ledger-dir``.  A ``detect --ledger-dir runs/`` run records its
funnel and suspect set into the ledger for later ``repro-obs diff``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..flows.argus import PARSE_ERROR_MODES, read_flows_report
from ..flows.parallel import extract_features_parallel
from ..obs import ObsSession, add_observability_args, configure_logging, get_logger
from ..resilience import RetryError, StageGuard
from ..stats.emd import PAIRWISE_BACKENDS
from .campus import CampusConfig, build_campus_day
from .groundtruth import identify_traders
from .honeynet import capture_nugache_trace, capture_storm_trace
from .traces import save_campus_day, save_honeynet_trace

__all__ = ["main"]

# Progress/status lines go through the namespaced logger (stderr);
# the inspect/label subcommands' per-host listings are the program's
# *output* and stay on stdout.
logger = get_logger("datasets")


def _cmd_generate(args) -> int:
    out = Path(args.out)
    config = CampusConfig(seed=args.seed).scaled(args.scale)
    for day in range(args.days):
        campus = build_campus_day(config, day)
        save_campus_day(out, campus)
        logger.info(
            "campus day %d: %s flows -> %s", day, f"{len(campus.store):,}", out
        )
    storm = capture_storm_trace(seed=args.seed, window=config.window)
    save_honeynet_trace(out, storm)
    logger.info(
        "storm honeynet: %s flows (%d bots)",
        f"{len(storm.store):,}",
        storm.bot_count,
    )
    nugache = capture_nugache_trace(seed=args.seed, window=config.window)
    save_honeynet_trace(out, nugache)
    logger.info(
        "nugache honeynet: %s flows (%d bots)",
        f"{len(nugache.store):,}",
        nugache.bot_count,
    )
    return 0


def _read_trace(args):
    """Load the trace under the CLI's parse-error policy; log fallout."""
    store, report = read_flows_report(
        args.trace,
        errors=args.on_parse_error,
        dead_letter=args.dead_letter,
        to_store=getattr(args, "store_dir", None),
        segment_rows=getattr(args, "segment_rows", None),
    )
    if report.rows_bad:
        logger.warning("%s", report.describe())
        for sample in report.error_samples[:5]:
            logger.warning("  %s", sample)
    return store


def _cmd_inspect(args) -> int:
    if args.resume and not args.checkpoint_dir:
        print("inspect: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    store = _read_trace(args)
    guard = StageGuard(enabled=not args.no_degrade, name="inspect")

    def parallel_extract():
        return extract_features_parallel(
            store,
            n_workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            on_degrade=guard.note,
        )

    def sequential_extract():
        return extract_features_parallel(store, n_workers=0)

    attempts = [(f"parallel[{args.workers}]", parallel_extract)]
    if args.workers > 1 or args.checkpoint_dir:
        attempts.append(("sequential", sequential_extract))
    try:
        features = guard.run("extract_features", attempts)
    except (RetryError, OSError) as exc:
        print(f"inspect: extraction failed: {exc}", file=sys.stderr)
        return 1
    for event in guard.degradations:
        logger.warning("%s", event.describe())
    print(f"{args.trace}: {len(store):,} flows, {len(features)} initiators")
    header = (
        f"{'host':<18} {'flows':>7} {'avg B/flow':>11} {'fail%':>6} "
        f"{'new-IP%':>8} {'dests':>6}"
    )
    print(header)
    print("-" * len(header))
    ranked = sorted(
        features.values(), key=lambda f: f.flow_count, reverse=True
    )
    for feats in ranked[: args.top]:
        print(
            f"{feats.host:<18} {feats.flow_count:>7} "
            f"{feats.avg_flow_size:>11.0f} "
            f"{feats.failed_conn_rate:>6.1%} "
            f"{feats.new_ip_fraction:>8.1%} "
            f"{feats.distinct_destinations:>6}"
        )
    return 0


def _cmd_detect(args) -> int:
    from ..detection.pipeline import PipelineConfig, find_plotters

    store = _read_trace(args)
    config = PipelineConfig(
        hm_backend=args.hm_backend,
        hm_exact=args.hm_exact,
        n_workers=args.workers,
        degrade=not args.no_degrade,
    )
    result = find_plotters(store, config=config)
    for event in result.degradations:
        logger.warning("%s", event.describe())
    session = getattr(args, "obs_session", None)
    if session is not None:
        session.record_result(result)
        session.annotate(trace=args.trace)
    if getattr(args, "verdict_db", None):
        import time as _time

        from ..query.verdicts import VerdictDB

        with VerdictDB(args.verdict_db) as db:
            window_id = db.record_batch(result, evaluated_at=_time.time())
        logger.info(
            "recorded window %s into verdict DB %s",
            window_id,
            args.verdict_db,
        )
    funnel = [
        ("input", len(result.input_hosts)),
        ("reduced", len(result.reduced_hosts)),
        ("vol∪churn", len(result.union_vol_churn)),
        ("suspects", len(result.suspects)),
    ]
    print(" -> ".join(f"{stage}:{count}" for stage, count in funnel))
    for host in sorted(result.suspects):
        print(host)
    return 0


def _cmd_label(args) -> int:
    if args.store_dir:
        # The storage plane projects flows down to the feature-bearing
        # fields; payload signatures need the full records.
        print(
            "label: --store-dir is not supported (ground-truth labelling "
            "needs flow payloads, which the segment store does not keep)",
            file=sys.stderr,
        )
        return 2
    store = _read_trace(args)
    labels = identify_traders(store)
    if not labels:
        print("no hosts matched the Trader payload signatures")
        return 0
    for host, protocol in sorted(labels.items()):
        print(f"{host:<18} {protocol}")
    print(f"({len(labels)} hosts labelled)")
    return 0


def main(argv=None) -> int:
    """Entry point for ``repro-datasets``."""
    parser = argparse.ArgumentParser(
        prog="repro-datasets",
        description="Synthesize, inspect and label flow traces.",
    )
    parser.add_argument(
        "--log-level",
        default="INFO",
        help="level for the repro.* diagnostic logger (default INFO)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize traces to disk")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--days", type=int, default=1)
    generate.add_argument("--scale", type=float, default=0.25)
    generate.add_argument("--seed", type=int, default=2007)
    add_observability_args(generate)
    generate.set_defaults(func=_cmd_generate)

    def add_ingest_flags(cmd):
        add_observability_args(cmd)
        cmd.add_argument("--trace", required=True, help="trace CSV path")
        cmd.add_argument(
            "--on-parse-error",
            choices=PARSE_ERROR_MODES,
            default="strict",
            help="malformed-row policy: abort, drop, or divert to a "
            "dead-letter CSV (default strict)",
        )
        cmd.add_argument(
            "--dead-letter",
            metavar="PATH",
            help="dead-letter CSV for --on-parse-error=quarantine "
            "(default: <trace>.deadletter.csv)",
        )
        cmd.add_argument(
            "--store-dir",
            metavar="DIR",
            help="spill parsed rows to a segment store at DIR and run "
            "from disk instead of materialising the trace in memory",
        )
        cmd.add_argument(
            "--segment-rows",
            type=int,
            metavar="N",
            help="segment cut threshold for --store-dir "
            "(default 262144 rows)",
        )

    inspect = sub.add_parser("inspect", help="per-host features of a trace")
    add_ingest_flags(inspect)
    inspect.add_argument("--top", type=int, default=20)
    inspect.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for feature extraction (0 = in-process)",
    )
    inspect.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist per-shard extraction checkpoints to this directory",
    )
    inspect.add_argument(
        "--resume",
        action="store_true",
        help="skip shards whose checkpoint in --checkpoint-dir is intact",
    )
    inspect.add_argument(
        "--no-degrade",
        action="store_true",
        help="make stage failures fatal instead of stepping down the "
        "fallback ladder",
    )
    inspect.set_defaults(func=_cmd_inspect)

    label = sub.add_parser("label", help="apply Trader payload signatures")
    add_ingest_flags(label)
    label.set_defaults(func=_cmd_label)

    detect = sub.add_parser(
        "detect", help="run the FindPlotters pipeline over a trace"
    )
    add_ingest_flags(detect)
    detect.add_argument(
        "--hm-backend",
        choices=PAIRWISE_BACKENDS,
        default="auto",
        help="pairwise-EMD engine for theta_hm (default auto; all "
        "engines yield identical suspects)",
    )
    detect.add_argument(
        "--hm-exact",
        action="store_true",
        help="forbid the pruned theta_hm engine (exactness escape hatch)",
    )
    detect.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for feature extraction (0 = in-process)",
    )
    detect.add_argument(
        "--no-degrade",
        action="store_true",
        help="make stage failures fatal instead of stepping down the "
        "fallback ladder",
    )
    detect.add_argument(
        "--verdict-db",
        default=None,
        metavar="PATH",
        help="record this run's full verdict + stage evidence into "
        "the query plane's SQLite verdict database (default: off)",
    )
    detect.set_defaults(func=_cmd_detect)

    args = parser.parse_args(argv)
    configure_logging(level=args.log_level)
    # Same telemetry lifecycle as repro-experiments: outputs requested
    # via the shared flags are flushed (and the ledger entry written)
    # even when the subcommand raises.
    session = ObsSession.from_args(
        args,
        kind=f"datasets-{args.command}",
        command=["repro-datasets", *(sys.argv[1:] if argv is None else argv)],
    )
    args.obs_session = session if session.active else None
    with session:
        rc = args.func(args)
        session.annotate(exit_code=rc)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
