"""Saving and loading synthesised datasets.

Synthesising a campus day takes real time; experiments that sweep
thresholds over the same traffic should capture once and reload.  A
dataset directory holds one Argus-style CSV per trace plus a JSON
manifest with the ground truth.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..flows.argus import read_flows, write_flows
from ..netsim.entities import HostRole
from .campus import CampusDay
from .honeynet import HoneynetTrace

__all__ = [
    "save_campus_day",
    "load_campus_day",
    "save_honeynet_trace",
    "load_honeynet_trace",
]


def save_campus_day(directory: Union[str, Path], day: CampusDay) -> Path:
    """Write one campus day under ``directory`` and return its path."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    flows_path = base / f"campus-day{day.day}.flows.csv"
    manifest_path = base / f"campus-day{day.day}.manifest.json"
    write_flows(flows_path, day.store)
    manifest = {
        "day": day.day,
        "window": day.window,
        "internal_prefixes": list(day.internal_prefixes),
        "roles": {host: role.value for host, role in day.roles.items()},
    }
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return base


def load_campus_day(directory: Union[str, Path], day: int) -> CampusDay:
    """Reload one campus day previously written by :func:`save_campus_day`."""
    base = Path(directory)
    store = read_flows(base / f"campus-day{day}.flows.csv")
    manifest = json.loads((base / f"campus-day{day}.manifest.json").read_text())
    if manifest["day"] != day:
        raise ValueError(
            f"manifest day {manifest['day']} does not match requested {day}"
        )
    return CampusDay(
        day=day,
        store=store,
        roles={h: HostRole(v) for h, v in manifest["roles"].items()},
        internal_prefixes=tuple(manifest["internal_prefixes"]),
        window=float(manifest["window"]),
    )


def save_honeynet_trace(directory: Union[str, Path], trace: HoneynetTrace) -> Path:
    """Write one honeynet trace under ``directory``."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    write_flows(base / f"honeynet-{trace.botnet}.flows.csv", trace.store)
    manifest = {"botnet": trace.botnet, "bots": list(trace.bots)}
    (base / f"honeynet-{trace.botnet}.manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    return base


def load_honeynet_trace(directory: Union[str, Path], botnet: str) -> HoneynetTrace:
    """Reload a honeynet trace previously written."""
    base = Path(directory)
    store = read_flows(base / f"honeynet-{botnet}.flows.csv")
    manifest = json.loads((base / f"honeynet-{botnet}.manifest.json").read_text())
    if manifest["botnet"] != botnet:
        raise ValueError(
            f"manifest botnet {manifest['botnet']!r} does not match {botnet!r}"
        )
    return HoneynetTrace(
        botnet=botnet, bots=tuple(manifest["bots"]), store=store
    )
