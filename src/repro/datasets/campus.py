"""Synthesis of CMU-like campus traffic days.

The paper's CMU dataset is eight days of border flow records (9 a.m. to
3 p.m., two /16 subnets, §III).  :func:`build_campus_day` synthesises
one such day: a population of background hosts (most quiet, a
configurable minority failure-prone), plus Trader hosts running the
three file-sharing applications the paper labels (BitTorrent, Gnutella,
eMule).  :func:`build_campus_dataset` produces the multi-day sequence.

Plotters are *not* part of the campus synthesis — as in the paper they
are captured separately in a honeynet (:mod:`repro.datasets.honeynet`)
and overlaid (:mod:`repro.datasets.overlay`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..agents.background import BackgroundHostAgent, BackgroundWorld
from ..agents.trader_bittorrent import BitTorrentTraderAgent
from ..agents.trader_emule import EmuleTraderAgent
from ..agents.trader_gnutella import GnutellaTraderAgent
from ..flows.store import FlowStore
from ..netsim.addressing import AddressSpace
from ..netsim.clock import COLLECTION_WINDOW
from ..netsim.entities import HostRole
from ..netsim.network import NetworkSimulation
from ..netsim.rng import derive_seed, substream
from ..p2p.bittorrent import BitTorrentOverlay
from ..p2p.emule import EmuleOverlay
from ..p2p.gnutella import GnutellaOverlay

__all__ = ["CampusConfig", "CampusDay", "build_campus_day", "build_campus_dataset"]


@dataclass(frozen=True)
class CampusConfig:
    """Knobs of the synthetic campus.

    The defaults produce a population whose per-host feature marginals
    land in the regimes of the paper's Figures 1 and 5: a failed-
    connection median around 20–30%, Trader flow sizes orders of
    magnitude above Plotters', and background traffic dominated by
    human-driven timing.
    """

    seed: int = 2007
    n_days: int = 8
    window: float = COLLECTION_WINDOW
    n_background: int = 1100
    n_bittorrent: int = 20
    n_gnutella: int = 13
    n_emule: int = 13
    #: Fraction of background hosts that are failure-prone (stale
    #: bookmarks, scanning-ish misconfigurations); they are what lifts
    #: the campus failed-connection median into the paper's regime.
    noisy_fraction: float = 0.42
    noisy_failure_range: Tuple[float, float] = (0.18, 0.55)
    quiet_failure_range: Tuple[float, float] = (0.005, 0.10)
    #: Among failure-prone hosts, the share that keep retrying the same
    #: dead destinations ("stale") rather than failing at ever-new ones
    #: ("explorer").  Stale hosts are the detector's hardest negatives.
    stale_noise_fraction: float = 0.20
    n_web_servers: int = 900
    n_dead_hosts: int = 150
    n_torrents: int = 40
    n_ultrapeers: int = 120
    n_gnutella_sources: int = 500
    n_ed2k_servers: int = 6
    n_emule_sources: int = 500

    def scaled(self, factor: float) -> "CampusConfig":
        """A proportionally smaller (or larger) campus.

        Host-population and world-size knobs scale by ``factor``;
        thresholds and fractions are left alone.  Useful for fast test
        configurations (``factor=0.1``) that keep the full structure.
        """
        from dataclasses import replace

        def scale(n: int, minimum: int = 1) -> int:
            return max(minimum, int(round(n * factor)))

        return replace(
            self,
            n_background=scale(self.n_background),
            n_bittorrent=scale(self.n_bittorrent),
            n_gnutella=scale(self.n_gnutella),
            n_emule=scale(self.n_emule),
            n_web_servers=scale(self.n_web_servers, 10),
            n_dead_hosts=scale(self.n_dead_hosts, 5),
            n_torrents=scale(self.n_torrents, 3),
            n_ultrapeers=scale(self.n_ultrapeers, 10),
            n_gnutella_sources=scale(self.n_gnutella_sources, 20),
            n_emule_sources=scale(self.n_emule_sources, 20),
        )


@dataclass
class CampusDay:
    """One synthesised day of campus traffic with its ground truth."""

    day: int
    store: FlowStore
    roles: Dict[str, HostRole]
    internal_prefixes: Tuple[str, ...]
    window: float = COLLECTION_WINDOW

    @property
    def background_hosts(self) -> Set[str]:
        return {h for h, r in self.roles.items() if r is HostRole.BACKGROUND}

    @property
    def trader_hosts(self) -> Set[str]:
        return {h for h, r in self.roles.items() if r.is_trader}

    @property
    def all_hosts(self) -> Set[str]:
        return set(self.roles)


def build_campus_day(config: CampusConfig, day: int) -> CampusDay:
    """Synthesise campus day ``day`` (0-based).

    Each day gets its own derived seed — hosts keep stable addresses
    across days (same allocation order) but fresh behaviour, mirroring
    how the same campus population produces different traffic each day.
    """
    if not 0 <= day:
        raise ValueError("day must be non-negative")
    day_seed = derive_seed(config.seed, "campus-day", day)
    space = AddressSpace()
    sim = NetworkSimulation(seed=day_seed, address_space=space, horizon=config.window)
    world_rng = substream(day_seed, "worlds")

    world = BackgroundWorld.build(
        world_rng, space, n_web=config.n_web_servers, n_dead=config.n_dead_hosts
    )
    bt_overlay = BitTorrentOverlay(
        world_rng, space.random_external, config.window, n_torrents=config.n_torrents
    )
    gnutella_overlay = GnutellaOverlay(
        world_rng,
        space.random_external,
        config.window,
        n_ultrapeers=config.n_ultrapeers,
        n_sources=config.n_gnutella_sources,
    )
    emule_overlay = EmuleOverlay(
        world_rng,
        space.random_external,
        config.window,
        n_servers=config.n_ed2k_servers,
        n_sources=config.n_emule_sources,
    )

    total_hosts = (
        config.n_background
        + config.n_bittorrent
        + config.n_gnutella
        + config.n_emule
    )
    addresses = space.allocate_internal(total_hosts)
    roles: Dict[str, HostRole] = {}
    cursor = 0

    profile_rng = substream(config.seed, "profiles")  # stable across days
    for _ in range(config.n_background):
        address = addresses[cursor]
        cursor += 1
        noisy = profile_rng.random() < config.noisy_fraction
        lo, hi = (
            config.noisy_failure_range if noisy else config.quiet_failure_range
        )
        profile = (
            "stale"
            if noisy and profile_rng.random() < config.stale_noise_fraction
            else "explorer"
        )
        sim.add_source(
            BackgroundHostAgent(
                address,
                world,
                intensity=profile_rng.lognormvariate(0.0, 0.5),
                failure_rate=profile_rng.uniform(lo, hi),
                runs_ntp=profile_rng.random() < 0.8,
                checks_mail=profile_rng.random() < 0.7,
                noise_profile=profile,
            )
        )
        roles[address] = HostRole.BACKGROUND

    for _ in range(config.n_bittorrent):
        address = addresses[cursor]
        cursor += 1
        sim.add_source(
            BitTorrentTraderAgent(
                address,
                bt_overlay,
                torrents_per_day=profile_rng.uniform(1.0, 3.5),
            )
        )
        roles[address] = HostRole.TRADER_BITTORRENT

    for _ in range(config.n_gnutella):
        address = addresses[cursor]
        cursor += 1
        sim.add_source(
            GnutellaTraderAgent(
                address,
                gnutella_overlay,
                queries_per_hour=profile_rng.uniform(3.0, 12.0),
            )
        )
        roles[address] = HostRole.TRADER_GNUTELLA

    for _ in range(config.n_emule):
        address = addresses[cursor]
        cursor += 1
        sim.add_source(
            EmuleTraderAgent(
                address,
                emule_overlay,
                searches_per_hour=profile_rng.uniform(1.5, 6.0),
            )
        )
        roles[address] = HostRole.TRADER_EMULE

    store = sim.run()
    return CampusDay(
        day=day,
        store=store,
        roles=roles,
        internal_prefixes=space.internal_prefixes,
        window=config.window,
    )


def build_campus_dataset(config: CampusConfig) -> List[CampusDay]:
    """All ``config.n_days`` campus days."""
    return [build_campus_day(config, day) for day in range(config.n_days)]
