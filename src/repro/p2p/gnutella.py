"""A flow-granularity Gnutella substrate: ultrapeers, queries, downloads.

Modern (0.6) Gnutella is a two-tier overlay: leaves hold a handful of
long-lived TCP connections to *ultrapeers*, flood queries through them,
and fetch files from query hits over direct HTTP connections.  The model
captures the pieces that matter at flow granularity: a churning ultrapeer
population, query fan-out, hit counts, and download sources.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .churn import ChurnModel, OnlineSchedule, TRADER_CHURN

__all__ = ["Ultrapeer", "FileSource", "GnutellaOverlay"]

#: Conventional Gnutella port.
GNUTELLA_PORT = 6346


@dataclass(frozen=True)
class Ultrapeer:
    """One external ultrapeer a leaf may attach to."""

    address: str
    port: int
    schedule: OnlineSchedule

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


@dataclass(frozen=True)
class FileSource:
    """A peer advertising a file in a query hit."""

    address: str
    port: int
    schedule: OnlineSchedule
    file_bytes: int
    upload_rate: float

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


class GnutellaOverlay:
    """The external Gnutella world as seen from a monitored leaf.

    Provides ultrapeer candidates (from a GWebCache-style bootstrap
    list), and answers queries with file sources whose sizes follow the
    multimedia distribution the paper describes ("several MBytes", §IV-A).
    """

    def __init__(
        self,
        rng: random.Random,
        address_factory,
        horizon: float,
        n_ultrapeers: int = 120,
        n_sources: int = 600,
        churn: ChurnModel = TRADER_CHURN,
    ) -> None:
        self.rng = rng
        self.ultrapeers: List[Ultrapeer] = [
            Ultrapeer(
                address=address_factory(rng),
                port=GNUTELLA_PORT,
                schedule=churn.sample_schedule(rng, horizon),
            )
            for _ in range(n_ultrapeers)
        ]
        self.sources: List[FileSource] = [
            FileSource(
                address=address_factory(rng),
                port=rng.choice((GNUTELLA_PORT, 6347, 6348)),
                schedule=churn.sample_schedule(rng, horizon),
                file_bytes=max(int(rng.lognormvariate(15.2, 1.3)), 64 * 1024),
                upload_rate=rng.lognormvariate(10.4, 0.8),
            )
            for _ in range(n_sources)
        ]

    def bootstrap_candidates(self, rng: random.Random, count: int = 20) -> List[Ultrapeer]:
        """Ultrapeer candidates from the bootstrap cache (liveness unknown)."""
        return rng.sample(self.ultrapeers, min(count, len(self.ultrapeers)))

    def query_hits(self, rng: random.Random, max_hits: int = 12) -> List[FileSource]:
        """Sources answering one keyword query.

        Hit counts are geometric-ish: most queries return a few sources,
        occasionally many, sometimes none.
        """
        n = min(len(self.sources), max(0, int(rng.expovariate(1.0 / 4.0))))
        n = min(n, max_hits)
        if n == 0:
            return []
        return rng.sample(self.sources, n)

    # Message-size constants for flow synthesis -------------------------
    @staticmethod
    def handshake_size() -> Tuple[int, int]:
        """(request, response) bytes of the 0.6 CONNECT handshake."""
        return (210, 280)

    @staticmethod
    def query_size(n_hits: int) -> Tuple[int, int]:
        """(query, hits) bytes for a query with ``n_hits`` results."""
        return (80, 120 + 90 * n_hits)

    @staticmethod
    def ping_size() -> Tuple[int, int]:
        """(ping, pong) keep-alive bytes."""
        return (23, 37)
