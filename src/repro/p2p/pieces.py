"""Piece-level BitTorrent machinery: bitfields and rarest-first.

BitTorrent content is exchanged in pieces; clients advertise what they
hold in a *bitfield* and pick what to fetch next with the rarest-first
heuristic (download the piece the fewest visible peers hold, to keep
swarm availability even).  The flow-level Trader agent uses these to
decide how much a given peer can serve it — a seed can serve anything,
a leecher only the overlap — which shapes the per-connection byte
counts the detector observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["PieceMap", "rarest_first", "PieceScheduler"]


class PieceMap:
    """A client's piece bitfield for one torrent."""

    def __init__(self, n_pieces: int, have: Optional[Iterable[int]] = None) -> None:
        if n_pieces <= 0:
            raise ValueError("a torrent has at least one piece")
        self.n_pieces = n_pieces
        self._have: Set[int] = set()
        if have is not None:
            for piece in have:
                self.add(piece)

    # ------------------------------------------------------------------
    @classmethod
    def complete(cls, n_pieces: int) -> "PieceMap":
        """A seed's bitfield: every piece present."""
        return cls(n_pieces, have=range(n_pieces))

    @classmethod
    def random_fraction(
        cls, n_pieces: int, fraction: float, rng: random.Random
    ) -> "PieceMap":
        """A leecher partway through: a random ``fraction`` of pieces."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        count = int(round(fraction * n_pieces))
        return cls(n_pieces, have=rng.sample(range(n_pieces), count))

    # ------------------------------------------------------------------
    def add(self, piece: int) -> None:
        """Mark one piece as held."""
        if not 0 <= piece < self.n_pieces:
            raise ValueError(f"piece {piece} outside [0, {self.n_pieces})")
        self._have.add(piece)

    def has(self, piece: int) -> bool:
        return piece in self._have

    @property
    def have(self) -> Set[int]:
        """The held piece indices (a copy)."""
        return set(self._have)

    @property
    def missing(self) -> Set[int]:
        """The pieces still needed."""
        return set(range(self.n_pieces)) - self._have

    @property
    def completion(self) -> float:
        """Fraction of pieces held."""
        return len(self._have) / self.n_pieces

    @property
    def is_complete(self) -> bool:
        return len(self._have) == self.n_pieces

    def overlap_available(self, peer: "PieceMap") -> Set[int]:
        """Pieces this client still needs that ``peer`` can serve."""
        if peer.n_pieces != self.n_pieces:
            raise ValueError("bitfields belong to different torrents")
        return self.missing & peer._have


def rarest_first(
    wanted: Set[int],
    peer_bitfields: Sequence[PieceMap],
    limit: int,
    rng: random.Random,
) -> List[int]:
    """Order ``wanted`` pieces by swarm rarity; return the first ``limit``.

    Ties are broken randomly, as real clients do, so concurrent leechers
    do not stampede the same piece.
    """
    if limit <= 0:
        return []
    counts: Dict[int, int] = {piece: 0 for piece in wanted}
    for bitfield in peer_bitfields:
        for piece in wanted:
            if bitfield.has(piece):
                counts[piece] += 1
    jittered: List[Tuple[int, float, int]] = [
        (count, rng.random(), piece) for piece, count in counts.items()
    ]
    jittered.sort()
    return [piece for _count, _tie, piece in jittered[:limit]]


@dataclass
class PieceScheduler:
    """Plans piece requests for one download.

    Wraps the client's own bitfield plus the visible peers' bitfields
    and answers "which pieces do I request from this peer next?".
    """

    own: PieceMap

    def plan_requests(
        self,
        peer: PieceMap,
        visible: Sequence[PieceMap],
        batch: int,
        rng: random.Random,
    ) -> List[int]:
        """Pieces to request from ``peer`` now (rarest-first order)."""
        available = self.own.overlap_available(peer)
        return rarest_first(available, visible, batch, rng)

    def record_received(self, pieces: Iterable[int]) -> None:
        """Mark requested pieces as downloaded."""
        for piece in pieces:
            self.own.add(piece)
