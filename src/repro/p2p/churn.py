"""Peer churn models: who is online when.

Churn — peers joining and leaving — is the defining dynamic of P2P
membership (§IV-B).  Measurement studies the paper cites [3], [4], [5]
find heavy-tailed session lengths with most file-sharing peers online
only minutes, many appearing once per day and leaving permanently after
a single file.  :class:`OnlineSchedule` realises one peer's alternating
online/offline intervals; :class:`ChurnModel` samples schedules for a
population.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["OnlineSchedule", "ChurnModel", "TRADER_CHURN", "PLOTTER_CHURN"]


@dataclass(frozen=True)
class OnlineSchedule:
    """Alternating online intervals for one peer over a horizon.

    ``intervals`` is a sorted tuple of ``(start, end)`` pairs with
    ``start < end`` and no overlaps.  A peer with an empty tuple is never
    online (a permanently departed peer whose address lingers in other
    peers' contact lists — the main source of failed connections).
    """

    intervals: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        last_end = -math.inf
        for start, end in self.intervals:
            if end <= start:
                raise ValueError(f"empty or inverted interval ({start}, {end})")
            if start < last_end:
                raise ValueError("online intervals must be sorted and disjoint")
            last_end = end

    def is_online(self, t: float) -> bool:
        """Whether the peer is online at time ``t``."""
        starts = [iv[0] for iv in self.intervals]
        idx = bisect.bisect_right(starts, t) - 1
        if idx < 0:
            return False
        start, end = self.intervals[idx]
        return start <= t < end

    @property
    def total_online(self) -> float:
        """Total online seconds across the horizon."""
        return sum(end - start for start, end in self.intervals)


class ChurnModel:
    """Sampler of per-peer online schedules.

    The model is an alternating renewal process: offline gaps are
    exponential with mean ``mean_offline``; online sessions are lognormal
    with median ``median_session`` and shape ``session_sigma`` (heavy
    tails, matching measured file-sharing session distributions).  A
    fraction ``fraction_dead`` of peers never come online at all, and a
    fraction ``fraction_single_session`` leave permanently after their
    first session (the "fetch one file and go" population of [5]).
    """

    def __init__(
        self,
        median_session: float,
        session_sigma: float,
        mean_offline: float,
        fraction_dead: float = 0.0,
        fraction_single_session: float = 0.0,
    ) -> None:
        if median_session <= 0 or mean_offline <= 0:
            raise ValueError("session and offline scales must be positive")
        if not 0 <= fraction_dead <= 1 or not 0 <= fraction_single_session <= 1:
            raise ValueError("population fractions must lie in [0, 1]")
        self.median_session = median_session
        self.session_sigma = session_sigma
        self.mean_offline = mean_offline
        self.fraction_dead = fraction_dead
        self.fraction_single_session = fraction_single_session

    def _session_length(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median_session), self.session_sigma)

    @property
    def mean_session(self) -> float:
        """Mean session length implied by the lognormal parameters."""
        return self.median_session * math.exp(self.session_sigma ** 2 / 2.0)

    @property
    def duty_cycle(self) -> float:
        """Steady-state probability that a live peer is online."""
        return self.mean_session / (self.mean_session + self.mean_offline)

    def sample_schedule(self, rng: random.Random, horizon: float) -> OnlineSchedule:
        """Sample one peer's schedule over ``[0, horizon)``.

        The process starts in steady state: a live peer begins online
        with probability equal to its duty cycle (mid-session), so a
        population sampled at time zero already has its equilibrium
        online fraction.
        """
        if horizon <= 0:
            return OnlineSchedule(intervals=())
        if rng.random() < self.fraction_dead:
            return OnlineSchedule(intervals=())
        single = rng.random() < self.fraction_single_session
        intervals: List[Tuple[float, float]] = []
        if rng.random() < self.duty_cycle:
            # Mid-session at t=0: the residual session remains.
            t = 0.0
        else:
            t = rng.expovariate(1.0 / self.mean_offline)
        while t < horizon:
            length = self._session_length(rng)
            end = min(t + length, horizon)
            if end > t:
                intervals.append((t, end))
            if single:
                break
            t = end + rng.expovariate(1.0 / self.mean_offline)
        return OnlineSchedule(intervals=tuple(intervals))

    def sample_population(
        self, rng: random.Random, count: int, horizon: float
    ) -> List[OnlineSchedule]:
        """Sample schedules for ``count`` peers."""
        return [self.sample_schedule(rng, horizon) for _ in range(count)]


#: File-sharing churn: short-median sessions, long offline gaps, a large
#: once-and-gone population — the regime measured in [3], [4], [5].
TRADER_CHURN = ChurnModel(
    median_session=15 * 60.0,
    session_sigma=1.3,
    mean_offline=50 * 60.0,
    fraction_dead=0.15,
    fraction_single_session=0.30,
)

#: Plotter churn: bots stay connected as long as the infected machine is
#: up, so sessions are hours, not minutes, and few peers vanish for good.
PLOTTER_CHURN = ChurnModel(
    median_session=3 * 3600.0,
    session_sigma=0.8,
    mean_offline=45 * 60.0,
    fraction_dead=0.25,
    fraction_single_session=0.02,
)
