"""P2P protocol substrate: the overlays both Traders and Plotters ride."""

from .churn import ChurnModel, OnlineSchedule, PLOTTER_CHURN, TRADER_CHURN
from .kademlia import (
    DEFAULT_ALPHA,
    DEFAULT_K,
    ID_BITS,
    KademliaNetwork,
    KBucket,
    LookupResult,
    QueryOutcome,
    RoutingTable,
    SimPeer,
    bucket_index,
    random_node_id,
    xor_distance,
)
from .overnet import MSG_SIZES, OvernetNode, OvernetOperation, storm_rendezvous_key
from .pieces import PieceMap, PieceScheduler, rarest_first
from .bittorrent import (
    BitTorrentOverlay,
    Swarm,
    SwarmPeer,
    TorrentMetadata,
    Tracker,
)
from .gnutella import FileSource, GnutellaOverlay, Ultrapeer
from .emule import Ed2kServer, EmuleOverlay, EmuleSource

__all__ = [
    "ChurnModel",
    "OnlineSchedule",
    "PLOTTER_CHURN",
    "TRADER_CHURN",
    "DEFAULT_ALPHA",
    "DEFAULT_K",
    "ID_BITS",
    "KademliaNetwork",
    "KBucket",
    "LookupResult",
    "QueryOutcome",
    "RoutingTable",
    "SimPeer",
    "bucket_index",
    "random_node_id",
    "xor_distance",
    "MSG_SIZES",
    "OvernetNode",
    "OvernetOperation",
    "storm_rendezvous_key",
    "PieceMap",
    "PieceScheduler",
    "rarest_first",
    "BitTorrentOverlay",
    "Swarm",
    "SwarmPeer",
    "TorrentMetadata",
    "Tracker",
    "FileSource",
    "GnutellaOverlay",
    "Ultrapeer",
    "Ed2kServer",
    "EmuleOverlay",
    "EmuleSource",
]
