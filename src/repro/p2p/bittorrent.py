"""A flow-granularity BitTorrent substrate: trackers, swarms, pieces.

The Trader dataset in the paper is dominated by BitTorrent, Gnutella and
eMule hosts (§III).  This module models the BitTorrent side: torrents
with piece structure, HTTP trackers answering announce/scrape, and
churning swarms of external peers.  The model operates at the
granularity the detector sees — connections and their byte counts — not
individual protocol messages.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .churn import ChurnModel, OnlineSchedule, TRADER_CHURN

__all__ = [
    "TorrentMetadata",
    "SwarmPeer",
    "Tracker",
    "Swarm",
    "BitTorrentOverlay",
]

#: Standard BitTorrent piece length used by the synthetic torrents.
PIECE_LENGTH = 256 * 1024

#: Port range typical of BitTorrent peers.
PEER_PORTS = (6881, 6889)


@dataclass(frozen=True)
class TorrentMetadata:
    """Immutable description of one shared torrent."""

    infohash: bytes
    name: str
    total_bytes: int
    piece_length: int = PIECE_LENGTH

    def __post_init__(self) -> None:
        if len(self.infohash) != 20:
            raise ValueError("a BitTorrent infohash is 20 bytes")
        if self.total_bytes <= 0:
            raise ValueError("torrent size must be positive")
        if self.piece_length <= 0:
            raise ValueError("piece length must be positive")

    @property
    def n_pieces(self) -> int:
        """Number of pieces (ceiling division)."""
        return -(-self.total_bytes // self.piece_length)

    @classmethod
    def synthesise(cls, rng: random.Random, index: int) -> "TorrentMetadata":
        """A plausible multimedia torrent: hundreds of MB, lognormal."""
        size = int(rng.lognormvariate(19.5, 1.0))  # median ~294 MB
        size = max(size, 4 * 1024 * 1024)
        infohash = hashlib.sha1(f"torrent:{index}:{size}".encode()).digest()
        return cls(infohash=infohash, name=f"content-{index}", total_bytes=size)


@dataclass(frozen=True)
class SwarmPeer:
    """One external swarm member."""

    address: str
    port: int
    schedule: OnlineSchedule
    is_seed: bool
    upload_rate: float  # bytes/second available to one downloader

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


@dataclass(frozen=True)
class Tracker:
    """An HTTP tracker for one or more torrents."""

    address: str
    port: int = 6969

    def announce_size(self, n_peers: int) -> Tuple[int, int]:
        """(request_bytes, response_bytes) of one announce exchange.

        The request is a small HTTP GET; the response is a bencoded peer
        list, 6 bytes per compact peer entry plus headers.
        """
        return (220, 180 + 6 * n_peers)

    def scrape_size(self) -> Tuple[int, int]:
        """(request_bytes, response_bytes) of one scrape exchange."""
        return (200, 130)


class Swarm:
    """The churning peer population sharing one torrent."""

    def __init__(
        self,
        torrent: TorrentMetadata,
        tracker: Tracker,
        peers: Sequence[SwarmPeer],
    ) -> None:
        if not peers:
            raise ValueError("a swarm needs at least one peer")
        self.torrent = torrent
        self.tracker = tracker
        self.peers: List[SwarmPeer] = list(peers)

    def announce(self, rng: random.Random, count: int = 50) -> List[SwarmPeer]:
        """A tracker response: up to ``count`` random swarm members.

        Trackers return a random subset regardless of liveness — stale
        entries are precisely why leechers see failed handshakes.
        """
        k = min(count, len(self.peers))
        return rng.sample(self.peers, k)

    def online_fraction(self, t: float) -> float:
        """Share of the swarm online at ``t`` (diagnostic)."""
        return sum(1 for p in self.peers if p.is_online(t)) / len(self.peers)


class BitTorrentOverlay:
    """Factory and registry for synthetic torrents and their swarms."""

    def __init__(
        self,
        rng: random.Random,
        address_factory,
        horizon: float,
        n_torrents: int = 40,
        swarm_size_range: Tuple[int, int] = (30, 300),
        churn: ChurnModel = TRADER_CHURN,
        seed_fraction: float = 0.25,
    ) -> None:
        if n_torrents <= 0:
            raise ValueError("need at least one torrent")
        self.rng = rng
        self.swarms: List[Swarm] = []
        for index in range(n_torrents):
            torrent = TorrentMetadata.synthesise(rng, index)
            tracker = Tracker(address=address_factory(rng))
            size = rng.randint(*swarm_size_range)
            peers = [
                SwarmPeer(
                    address=address_factory(rng),
                    port=rng.randint(*PEER_PORTS),
                    schedule=churn.sample_schedule(rng, horizon),
                    is_seed=rng.random() < seed_fraction,
                    upload_rate=rng.lognormvariate(10.6, 0.9),  # median ~40 kB/s
                )
                for _ in range(size)
            ]
            self.swarms.append(Swarm(torrent=torrent, tracker=tracker, peers=peers))

    def pick_swarm(self, rng: random.Random) -> Swarm:
        """A torrent chosen by popularity (Zipf-ish: earlier = hotter)."""
        weights = [1.0 / (rank + 1) for rank in range(len(self.swarms))]
        total = sum(weights)
        point = rng.uniform(0, total)
        acc = 0.0
        for swarm, weight in zip(self.swarms, weights):
            acc += weight
            if point <= acc:
                return swarm
        return self.swarms[-1]
