"""A flow-granularity eMule/eD2k substrate: servers, queues, Kad.

eMule combines centralised eD2k index servers (TCP 4661) with the Kad
DHT (UDP 4672) and peer-to-peer transfers (TCP 4662).  Its most
distinctive flow-level behaviour is the *upload queue*: a downloader that
finds a busy source is queued and re-asks periodically, so eMule Traders
retry the same sources over long stretches — yet their overall contact
set still churns heavily as sources come and go.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .churn import ChurnModel, OnlineSchedule, TRADER_CHURN

__all__ = ["Ed2kServer", "EmuleSource", "EmuleOverlay"]

#: Conventional eD2k ports.
SERVER_PORT = 4661
PEER_PORT = 4662
KAD_PORT = 4672


@dataclass(frozen=True)
class Ed2kServer:
    """One eD2k index server (Razorback-style, long-lived)."""

    address: str
    port: int = SERVER_PORT

    @staticmethod
    def login_size() -> Tuple[int, int]:
        """(request, response) bytes of the login exchange."""
        return (90, 160)

    @staticmethod
    def search_size(n_results: int) -> Tuple[int, int]:
        """(request, response) bytes of a keyword search."""
        return (60, 80 + 120 * n_results)


@dataclass(frozen=True)
class EmuleSource:
    """A peer holding (part of) a wanted file."""

    address: str
    port: int
    schedule: OnlineSchedule
    file_bytes: int
    upload_rate: float
    queue_length: int  # positions ahead of a new requester

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


class EmuleOverlay:
    """The external eD2k/Kad world as seen from a monitored client."""

    def __init__(
        self,
        rng: random.Random,
        address_factory,
        horizon: float,
        n_servers: int = 8,
        n_sources: int = 500,
        churn: ChurnModel = TRADER_CHURN,
    ) -> None:
        if n_servers <= 0:
            raise ValueError("need at least one eD2k server")
        self.rng = rng
        self.servers: List[Ed2kServer] = [
            Ed2kServer(address=address_factory(rng)) for _ in range(n_servers)
        ]
        self.sources: List[EmuleSource] = [
            EmuleSource(
                address=address_factory(rng),
                port=PEER_PORT,
                schedule=churn.sample_schedule(rng, horizon),
                file_bytes=max(int(rng.lognormvariate(16.0, 1.2)), 128 * 1024),
                upload_rate=rng.lognormvariate(10.2, 0.8),
                queue_length=int(rng.expovariate(1.0 / 8.0)),
            )
            for _ in range(n_sources)
        ]

    def pick_server(self, rng: random.Random) -> Ed2kServer:
        """The server a client logs into (sticky per client in practice)."""
        return rng.choice(self.servers)

    def search_sources(self, rng: random.Random, max_sources: int = 20) -> List[EmuleSource]:
        """Sources returned for one file search."""
        n = min(len(self.sources), max(1, int(rng.expovariate(1.0 / 6.0)) + 1))
        n = min(n, max_sources)
        return rng.sample(self.sources, n)

    @staticmethod
    def kad_message_size() -> Tuple[int, int]:
        """(request, response) bytes of one Kad UDP exchange."""
        return (35, 60)

    @staticmethod
    def queue_poll_size() -> Tuple[int, int]:
        """(request, response) bytes of an upload-queue re-ask."""
        return (46, 30)
