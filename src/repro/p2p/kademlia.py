"""A Kademlia distributed hash table, simulated at message granularity.

Storm built its command-and-control on the Overnet network, whose DHT is
Kademlia [2] — the same DHT embedded in eDonkey and BitTorrent clients.
This module implements the Kademlia machinery the overlay simulators
need: 128-bit node identifiers under the XOR metric, k-bucket routing
tables with least-recently-seen eviction, and iterative ``FIND_NODE`` /
``FIND_VALUE`` lookups with parallelism α.

The simulation is logical rather than packet-level: lookups walk a
:class:`KademliaNetwork` of simulated peers whose liveness comes from a
churn schedule, and report which peers were *queried* and whether each
query succeeded.  Traffic agents convert that query log into flow
records, which is exactly the granularity the paper's detector sees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .churn import ChurnModel, OnlineSchedule

__all__ = [
    "ID_BITS",
    "xor_distance",
    "bucket_index",
    "random_node_id",
    "KBucket",
    "RoutingTable",
    "SimPeer",
    "QueryOutcome",
    "LookupResult",
    "KademliaNetwork",
]

#: Identifier width.  Overnet/eDonkey use 128-bit MD4-space identifiers.
ID_BITS = 128

#: Default bucket capacity (the Kademlia paper's k).
DEFAULT_K = 20

#: Default lookup parallelism (the Kademlia paper's alpha).
DEFAULT_ALPHA = 3


def xor_distance(a: int, b: int) -> int:
    """XOR metric between two node/key identifiers."""
    return a ^ b


def bucket_index(own_id: int, other_id: int) -> int:
    """Index of the k-bucket where ``other_id`` belongs (0..ID_BITS-1).

    Bucket ``i`` covers identifiers whose XOR distance from ``own_id``
    has its highest set bit at position ``i``.
    """
    if own_id == other_id:
        raise ValueError("a node does not bucket its own identifier")
    return xor_distance(own_id, other_id).bit_length() - 1


def random_node_id(rng: random.Random) -> int:
    """A uniformly random identifier."""
    return rng.getrandbits(ID_BITS)


@dataclass
class KBucket:
    """One k-bucket: a least-recently-seen-ordered contact list."""

    capacity: int = DEFAULT_K
    contacts: List[int] = field(default_factory=list)

    def touch(self, node_id: int, alive_check: Optional[bool] = None) -> None:
        """Record contact with ``node_id``.

        Known contacts move to the tail (most recently seen).  New
        contacts are appended if there is room; when the bucket is full,
        Kademlia pings the least-recently-seen contact and keeps it if it
        answers — ``alive_check`` supplies that answer (``None`` means
        "assume alive", the conservative default).
        """
        if node_id in self.contacts:
            self.contacts.remove(node_id)
            self.contacts.append(node_id)
            return
        if len(self.contacts) < self.capacity:
            self.contacts.append(node_id)
            return
        if alive_check is False:
            self.contacts.pop(0)
            self.contacts.append(node_id)

    def remove(self, node_id: int) -> None:
        """Drop a contact that failed to respond."""
        if node_id in self.contacts:
            self.contacts.remove(node_id)

    def __len__(self) -> int:
        return len(self.contacts)


class RoutingTable:
    """The per-node table of ID_BITS k-buckets."""

    def __init__(self, own_id: int, k: int = DEFAULT_K) -> None:
        self.own_id = own_id
        self.k = k
        self._buckets: List[KBucket] = [KBucket(capacity=k) for _ in range(ID_BITS)]

    def touch(self, node_id: int, alive_check: Optional[bool] = None) -> None:
        """Record that ``node_id`` was seen (on any message)."""
        if node_id == self.own_id:
            return
        self._buckets[bucket_index(self.own_id, node_id)].touch(node_id, alive_check)

    def remove(self, node_id: int) -> None:
        """Evict a contact that failed."""
        if node_id == self.own_id:
            return
        self._buckets[bucket_index(self.own_id, node_id)].remove(node_id)

    def closest(self, target: int, count: Optional[int] = None) -> List[int]:
        """The ``count`` known contacts closest to ``target`` by XOR."""
        limit = self.k if count is None else count
        everyone = [c for bucket in self._buckets for c in bucket.contacts]
        everyone.sort(key=lambda n: xor_distance(n, target))
        return everyone[:limit]

    @property
    def contact_count(self) -> int:
        """Total number of known contacts."""
        return sum(len(b) for b in self._buckets)

    def all_contacts(self) -> List[int]:
        """All known contacts (unordered)."""
        return [c for bucket in self._buckets for c in bucket.contacts]


@dataclass(frozen=True)
class SimPeer:
    """One simulated DHT participant outside the monitored network."""

    node_id: int
    address: str
    udp_port: int
    schedule: OnlineSchedule

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


@dataclass(frozen=True)
class QueryOutcome:
    """One RPC attempted during a lookup: to whom, and did it answer."""

    peer: SimPeer
    responded: bool


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one iterative lookup."""

    target: int
    queried: Tuple[QueryOutcome, ...]
    closest: Tuple[int, ...]

    @property
    def messages_sent(self) -> int:
        return len(self.queried)

    @property
    def failure_rate(self) -> float:
        if not self.queried:
            return 0.0
        return sum(1 for q in self.queried if not q.responded) / len(self.queried)


class KademliaNetwork:
    """A population of simulated DHT peers plus lookup machinery.

    The network holds external peers (with churn schedules) and a global
    key→publisher map for ``publish``/``find_value``.  Monitored bots own
    a :class:`RoutingTable` and run :meth:`lookup` against this network;
    the result records every RPC so callers can emit one flow per RPC.
    """

    def __init__(
        self,
        rng: random.Random,
        peers: Sequence[SimPeer],
        k: int = DEFAULT_K,
        alpha: int = DEFAULT_ALPHA,
    ) -> None:
        if not peers:
            raise ValueError("a DHT needs at least one simulated peer")
        self.rng = rng
        self.k = k
        self.alpha = alpha
        self.peers: Dict[int, SimPeer] = {p.node_id: p for p in peers}
        self._ids_sorted = sorted(self.peers)
        self._published: Dict[int, Set[int]] = {}
        # Per-node key/value replicas: node_id -> key -> publisher set.
        # This is Kademlia's STORE state; :meth:`publish` places
        # replicas on the k closest nodes and :meth:`find_value`
        # terminates a lookup early at any replica holder.
        self._node_storage: Dict[int, Dict[int, Set[int]]] = {}

    # ------------------------------------------------------------------
    # Population helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        rng: random.Random,
        size: int,
        horizon: float,
        churn: ChurnModel,
        address_factory,
        k: int = DEFAULT_K,
        alpha: int = DEFAULT_ALPHA,
        udp_port: int = 7871,
    ) -> "KademliaNetwork":
        """Construct a network of ``size`` churning peers.

        ``address_factory`` maps an RNG to a fresh external IP (typically
        ``AddressSpace.random_external``).
        """
        peers = [
            SimPeer(
                node_id=random_node_id(rng),
                address=address_factory(rng),
                udp_port=udp_port,
                schedule=churn.sample_schedule(rng, horizon),
            )
            for _ in range(size)
        ]
        return cls(rng=rng, peers=peers, k=k, alpha=alpha)

    def sample_bootstrap(self, rng: random.Random, count: int) -> List[SimPeer]:
        """A random sample of peers to seed a new node's routing table.

        Mirrors the hard-coded peer lists Storm binaries shipped with.
        """
        ids = rng.sample(self._ids_sorted, min(count, len(self._ids_sorted)))
        return [self.peers[i] for i in ids]

    def peer(self, node_id: int) -> SimPeer:
        """Look up a simulated peer by identifier."""
        return self.peers[node_id]

    def _network_closest(self, target: int, count: int) -> List[int]:
        """Ground-truth closest peers (used to emulate responses)."""
        ids = sorted(self._ids_sorted, key=lambda n: xor_distance(n, target))
        return ids[:count]

    # ------------------------------------------------------------------
    # Publish / search state
    # ------------------------------------------------------------------
    def publish(
        self, key: int, publisher_id: int, now: Optional[float] = None
    ) -> List[int]:
        """Record that ``publisher_id`` published under ``key``.

        When ``now`` is given, the value is also replicated (STORE) at
        the k closest *online* nodes, as the Kademlia protocol does;
        the storing node identifiers are returned.  Without ``now`` the
        publication is only tracked globally (sufficient for the
        evaluation's ground-truth bookkeeping).
        """
        self._published.setdefault(key, set()).add(publisher_id)
        stored_at: List[int] = []
        if now is not None:
            for node_id in self._network_closest(key, self.k):
                peer = self.peers[node_id]
                if not peer.is_online(now):
                    continue
                replicas = self._node_storage.setdefault(node_id, {})
                replicas.setdefault(key, set()).add(publisher_id)
                stored_at.append(node_id)
        return stored_at

    def publishers(self, key: int) -> Set[int]:
        """Identifiers that published under ``key``."""
        return set(self._published.get(key, set()))

    def replicas_of(self, key: int) -> Set[int]:
        """Nodes currently holding a replica for ``key``."""
        return {
            node_id
            for node_id, replicas in self._node_storage.items()
            if key in replicas
        }

    def find_value(
        self,
        table: RoutingTable,
        key: int,
        now: float,
        max_rounds: int = 6,
    ) -> Tuple[Set[int], LookupResult]:
        """Iterative FIND_VALUE: like :meth:`lookup`, but replica-aware.

        Returns ``(publisher_set, lookup_result)``.  The walk stops as
        soon as a queried node answers with a stored value — Kademlia's
        early-termination rule — so the RPC log is a prefix of what the
        plain FIND_NODE would have produced.
        """
        result = self.lookup(table, key, now, max_rounds)
        found: Set[int] = set()
        queried: List[QueryOutcome] = []
        for outcome in result.queried:
            queried.append(outcome)
            if not outcome.responded:
                continue
            replicas = self._node_storage.get(outcome.peer.node_id, {})
            if key in replicas:
                found = set(replicas[key])
                break
        if found:
            result = LookupResult(
                target=key, queried=tuple(queried), closest=result.closest
            )
        return found, result

    # ------------------------------------------------------------------
    # Iterative lookup
    # ------------------------------------------------------------------
    def lookup(
        self,
        table: RoutingTable,
        target: int,
        now: float,
        max_rounds: int = 6,
    ) -> LookupResult:
        """Run one iterative FIND_NODE from the node owning ``table``.

        Each round queries the α closest not-yet-queried known contacts;
        peers offline at ``now`` do not respond (and are evicted from the
        routing table); responders return their k closest contacts, which
        refine the candidate set.  Terminates when a round yields no
        closer candidate or after ``max_rounds``.
        """
        queried: List[QueryOutcome] = []
        seen: Set[int] = set()
        candidates = list(table.closest(target, self.k))
        if not candidates:
            return LookupResult(target=target, queried=(), closest=())

        best_distance = min(xor_distance(c, target) for c in candidates)
        for _ in range(max_rounds):
            batch = [c for c in candidates if c not in seen][: self.alpha]
            if not batch:
                break
            improved = False
            for node_id in batch:
                seen.add(node_id)
                peer = self.peers.get(node_id)
                if peer is None:
                    table.remove(node_id)
                    continue
                responded = peer.is_online(now)
                queried.append(QueryOutcome(peer=peer, responded=responded))
                if not responded:
                    table.remove(node_id)
                    continue
                table.touch(node_id)
                for returned in self._network_closest(target, self.k):
                    if returned not in candidates:
                        candidates.append(returned)
                    table.touch(returned)
            candidates.sort(key=lambda n: xor_distance(n, target))
            candidates = candidates[: self.k * 2]
            new_best = min(xor_distance(c, target) for c in candidates)
            if new_best < best_distance:
                best_distance = new_best
                improved = True
            if not improved:
                break
        closest = tuple(
            sorted(seen | set(candidates), key=lambda n: xor_distance(n, target))[
                : self.k
            ]
        )
        return LookupResult(target=target, queried=tuple(queried), closest=closest)
