"""An Overnet-style publish/search layer over the Kademlia DHT.

Overnet is the Kademlia deployment that the Storm botnet repurposed for
rendezvous [1], [13]: bots *publicize* themselves under keys derived
from the current date and a small random offset, and *search* for those
keys to find the identifiers that the botmaster (or other bots) have
published.  This module provides:

* the day-keyed rendezvous-key schedule (:func:`storm_rendezvous_key`),
* :class:`OvernetNode` — the per-bot protocol state machine
  (connect / publicize / search / keepalive), returning per-operation
  RPC logs so traffic agents can emit one flow per UDP message, and
* wire-size constants for the Overnet message types, used to synthesise
  realistic byte counts.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .kademlia import (
    ID_BITS,
    KademliaNetwork,
    LookupResult,
    QueryOutcome,
    RoutingTable,
    SimPeer,
    random_node_id,
)

__all__ = [
    "MSG_SIZES",
    "storm_rendezvous_key",
    "OvernetOperation",
    "OvernetNode",
]

#: Approximate UDP payload sizes of Overnet message types, in bytes.
#: Overnet control messages are tiny — this is what makes Plotter traffic
#: "low volume" in the sense of §IV-A.
MSG_SIZES = {
    "connect": 25,
    "connect_reply": 155,
    "publicize": 25,
    "publicize_ack": 2,
    "search": 19,
    "search_next": 340,
    "publish": 81,
    "publish_ack": 18,
    "ip_query": 6,
    "keepalive": 25,
}


def storm_rendezvous_key(day: int, offset: int, bits: int = ID_BITS) -> int:
    """The rendezvous key Storm bots derive for ``day`` and ``offset``.

    Storm computed its search keys from the current date combined with a
    random integer in a small range, so all bots converge on a small,
    predictable key set each day.  We reproduce the *structure* (a hash
    of day and offset truncated to the identifier width); the concrete
    hash differs from the malware's but is behaviourally equivalent.
    """
    digest = hashlib.sha256(f"storm:{day}:{offset}".encode()).digest()
    return int.from_bytes(digest, "big") >> (256 - bits)


@dataclass(frozen=True)
class OvernetOperation:
    """One protocol operation and the RPCs it generated."""

    kind: str
    rpcs: Tuple[QueryOutcome, ...]
    request_size: int
    response_size: int


class OvernetNode:
    """Per-bot Overnet protocol state.

    The node owns a routing table bootstrapped from a hard-coded peer
    list (as Storm's binary shipped one) and exposes the operations the
    bot's schedule drives: :meth:`connect` (bootstrap), :meth:`search`,
    :meth:`publicize`, and :meth:`keepalive_targets` (the stable peer
    subset a bot pings between lookups — the low-churn behaviour §IV-B
    keys on).
    """

    def __init__(
        self,
        network: KademliaNetwork,
        rng: random.Random,
        bootstrap_size: int = 50,
        node_id: Optional[int] = None,
    ) -> None:
        self.network = network
        self.rng = rng
        self.node_id = node_id if node_id is not None else random_node_id(rng)
        self.table = RoutingTable(own_id=self.node_id, k=network.k)
        self._bootstrap = network.sample_bootstrap(rng, bootstrap_size)
        for peer in self._bootstrap:
            self.table.touch(peer.node_id)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def connect(self, now: float) -> OvernetOperation:
        """Bootstrap: OP_CONNECT to peers from the stored peer list.

        Bots walk their peer file until enough peers answer; offline
        entries (stale addresses) simply never reply.
        """
        rpcs: List[QueryOutcome] = []
        for peer in self._bootstrap:
            responded = peer.is_online(now)
            rpcs.append(QueryOutcome(peer=peer, responded=responded))
            if responded:
                self.table.touch(peer.node_id)
            else:
                self.table.remove(peer.node_id)
        return OvernetOperation(
            kind="connect",
            rpcs=tuple(rpcs),
            request_size=MSG_SIZES["connect"],
            response_size=MSG_SIZES["connect_reply"],
        )

    def search(self, key: int, now: float) -> OvernetOperation:
        """Iterative search for ``key`` (FIND_VALUE semantics)."""
        result = self.network.lookup(self.table, key, now)
        return OvernetOperation(
            kind="search",
            rpcs=result.queried,
            request_size=MSG_SIZES["search"],
            response_size=MSG_SIZES["search_next"],
        )

    def publicize(self, key: int, now: float) -> OvernetOperation:
        """Publish own presence under ``key`` at the k closest nodes."""
        result = self.network.lookup(self.table, key, now)
        self.network.publish(key, self.node_id, now)
        # The publish RPCs go to the closest responders found by the
        # lookup; fold them into the same operation log.
        return OvernetOperation(
            kind="publicize",
            rpcs=result.queried,
            request_size=MSG_SIZES["publish"],
            response_size=MSG_SIZES["publish_ack"],
        )

    def keepalive_targets(self, now: float, count: int = 8) -> List[QueryOutcome]:
        """The stable neighbour subset pinged between lookups.

        Storm keeps re-contacting the peers on its stored list whether or
        not they answered last time — it cannot tell a transiently
        offline peer from a dead one — so the target set is *fixed* per
        bot (the head of its peer file) and failures recur.  This is the
        persistence/low-churn signature §IV-B keys on, and a steady
        source of failed connections (Figure 5).
        """
        targets = self._bootstrap[:count]
        outcomes: List[QueryOutcome] = []
        for peer in targets:
            responded = peer.is_online(now)
            outcomes.append(QueryOutcome(peer=peer, responded=responded))
            if responded:
                self.table.touch(peer.node_id)
        return outcomes

    def daily_keys(self, day: int, key_count: int = 32, sample: int = 4) -> List[int]:
        """The rendezvous keys this bot will search on ``day``.

        Each bot samples ``sample`` offsets from the day's ``key_count``
        possibilities, as Storm did with its random date-offset scheme.
        """
        offsets = self.rng.sample(range(key_count), min(sample, key_count))
        return [storm_rendezvous_key(day, off) for off in offsets]
