"""Spilling an in-memory :class:`FlowStore` into a segment store.

This is the bridge the batch pipeline uses when it is *given* an
in-memory store but asked to run store-backed
(``PipelineConfig.store_dir``): the store's rows are written out once,
then extraction proceeds from the disk plane.  The spool is keyed to
its source — respooling the same unchanged store into the same
directory is a no-op reuse, so repeated pipeline runs (threshold
sweeps, benchmarks) pay the write once.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from ..flows.store import FlowStore
from ..obs.logconf import get_logger
from .format import SEGMENT_SUFFIX, StorageError
from .store import MANIFEST_NAME, SegmentStore
from .view import StoreView
from .writer import DEFAULT_SEGMENT_ROWS

__all__ = ["fresh_store", "spool_flow_store"]

logger = get_logger("storage.spool")


def _source_key(store: FlowStore) -> dict:
    """Identity of a spooled store: row count + mutation version + pid.

    The version counter is process-local, so the pid scopes it; a
    different process (or a mutated store) never silently reuses a
    stale spool.
    """
    return {
        "rows": len(store),
        "flowstore_version": store.version,
        "pid": os.getpid(),
    }


def _wipe(directory: Path) -> None:
    """Remove a previous spool's files (only files we recognise)."""
    for child in directory.iterdir():
        if child.name == MANIFEST_NAME or child.name.endswith(SEGMENT_SUFFIX):
            child.unlink()


def fresh_store(directory: Union[str, Path]) -> SegmentStore:
    """An empty segment store at ``directory``, replacing any spool there.

    The ingest spill path (:func:`repro.flows.argus.read_flows`'s
    ``to_store=``) uses this: a re-ingest must reflect exactly the
    trace being read, so leftover segments from a previous run are
    removed first.  Only files the storage layer recognises (the
    manifest and ``*.rseg`` segments) are touched.
    """
    directory = Path(directory)
    if directory.exists():
        _wipe(directory)
    return SegmentStore.create(directory, exist_ok=True)


def spool_flow_store(
    store: FlowStore,
    directory: Union[str, Path],
    *,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    max_gather_rows: Optional[int] = None,
) -> StoreView:
    """Write ``store``'s rows into segments under ``directory``.

    Returns a :class:`StoreView` over the result.  If ``directory``
    already holds a spool of this exact store (same row count, same
    mutation version, same process), it is reused as-is; anything else
    found there is replaced.
    """
    directory = Path(directory)
    key = _source_key(store)
    if (directory / MANIFEST_NAME).exists():
        try:
            existing = SegmentStore.open(directory)
        except StorageError:
            existing = None
        if (
            existing is not None
            and existing._manifest.get("source") == key
            and existing.total_rows == len(store)
        ):
            logger.info(
                "reusing existing spool at %s (%d rows, %d segments)",
                directory,
                existing.total_rows,
                existing.n_segments,
            )
            return StoreView(existing, max_gather_rows=max_gather_rows)
        directory.mkdir(parents=True, exist_ok=True)
        _wipe(directory)

    target = SegmentStore.create(directory, exist_ok=True)
    with target.writer(segment_rows=segment_rows) as writer:
        for flow in store:
            writer.add(flow)
    target._manifest["source"] = key
    target._save_manifest()
    logger.info(
        "spooled %d rows into %d segment(s) at %s",
        len(store),
        target.n_segments,
        directory,
    )
    return StoreView(target, max_gather_rows=max_gather_rows)
