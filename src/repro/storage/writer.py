"""Buffered, threshold-cut segment writing.

:class:`SegmentWriter` is the one producer-side object: callers push
flow rows (or :class:`~repro.flows.record.FlowRecord` objects) in
arrival order and the writer factorises addresses, buffers columns,
and cuts a finished segment into its :class:`~repro.storage.store.SegmentStore`
whenever the buffer crosses the row or byte threshold.  Cut boundaries
never change results — the store's gather re-establishes the global
per-host order — so thresholds are purely a memory/efficiency knob:

* ``segment_rows`` bounds rows buffered in RAM (and therefore the
  ingest path's peak memory);
* ``segment_bytes`` approximates the on-disk size so zone maps stay
  selective (one giant segment can never be pruned).

Callers that partition time themselves (the online detector spooling
tumbled windows) call :meth:`~SegmentWriter.cut` at each boundary to
get window-aligned segments, which is what makes time-range pruning
surgical on replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

__all__ = ["DEFAULT_SEGMENT_ROWS", "DEFAULT_SEGMENT_BYTES", "SegmentWriter"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..flows.record import FlowRecord
    from .store import SegmentStore

#: Default segment cut thresholds: 256k rows is a few MB per column —
#: big enough to amortise footer overhead, small enough that zone maps
#: prune usefully and ingest's buffered tail stays modest.
DEFAULT_SEGMENT_ROWS = 262_144
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024

#: Approximate per-row cost used for the byte threshold: the five
#: fixed-width columns (8 + 8 + 1 + 4 + 4) rounded up for string-table
#: amortisation.
_ROW_OVERHEAD = 32


class SegmentWriter:
    """Buffer rows in arrival order; cut segments into a store.

    Usable as a context manager — exiting flushes the tail buffer as a
    final (possibly small) segment:

    >>> with store.writer(segment_rows=100_000) as writer:   # doctest: +SKIP
    ...     for flow in flows:
    ...         writer.add(flow)
    """

    def __init__(
        self,
        store: "SegmentStore",
        *,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if segment_rows < 1:
            raise ValueError("segment_rows must be >= 1")
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.store = store
        self.segment_rows = int(segment_rows)
        self.segment_bytes = int(segment_bytes)
        self.rows_written = 0
        self.segments_cut = 0
        self._starts: List[float] = []
        self._src_bytes: List[int] = []
        self._success: List[int] = []
        self._src_codes: List[int] = []
        self._dst_codes: List[int] = []
        self._hosts: List[str] = []
        self._host_code: Dict[str, int] = {}
        self._dsts: List[str] = []
        self._dst_code: Dict[str, int] = {}
        self._approx_bytes = 0

    # -- producing ------------------------------------------------------
    def append(
        self, src: str, dst: str, start: float, src_bytes: int, success: bool
    ) -> None:
        """Buffer one flow row (must arrive in ingest order)."""
        code = self._host_code.get(src)
        if code is None:
            code = self._host_code[src] = len(self._hosts)
            self._hosts.append(src)
        dcode = self._dst_code.get(dst)
        if dcode is None:
            dcode = self._dst_code[dst] = len(self._dsts)
            self._dsts.append(dst)
        self._starts.append(float(start))
        self._src_bytes.append(int(src_bytes))
        self._success.append(1 if success else 0)
        self._src_codes.append(code)
        self._dst_codes.append(dcode)
        self._approx_bytes += _ROW_OVERHEAD
        if (
            len(self._starts) >= self.segment_rows
            or self._approx_bytes >= self.segment_bytes
        ):
            self.cut()

    def add(self, flow: "FlowRecord") -> None:
        """Buffer one :class:`~repro.flows.record.FlowRecord`.

        Only the feature-bearing fields survive (start, uploaded bytes,
        success, endpoints) — the storage plane is a projection of the
        flow model onto exactly what the detector consumes.
        """
        self.append(
            flow.src,
            flow.dst,
            flow.start,
            flow.src_bytes,
            not flow.state.failed,
        )

    @property
    def buffered_rows(self) -> int:
        """Rows currently buffered (not yet in any segment)."""
        return len(self._starts)

    # -- cutting --------------------------------------------------------
    def cut(self) -> bool:
        """Flush the buffer as one segment; ``False`` if it was empty.

        Explicit cuts let a caller align segment boundaries with
        semantic ones (tumbling windows, trace days) so time-range
        pruning later skips whole segments.
        """
        if not self._starts:
            return False
        self.store.append_segment(
            starts=np.asarray(self._starts, dtype=np.float64),
            src_bytes=np.asarray(self._src_bytes, dtype=np.int64),
            success=np.asarray(self._success, dtype=np.uint8),
            src_codes=np.asarray(self._src_codes, dtype=np.int32),
            dst_codes=np.asarray(self._dst_codes, dtype=np.int32),
            hosts=self._hosts,
            dsts=self._dsts,
        )
        self.rows_written += len(self._starts)
        self.segments_cut += 1
        self._starts.clear()
        self._src_bytes.clear()
        self._success.clear()
        self._src_codes.clear()
        self._dst_codes.clear()
        self._hosts = []
        self._host_code = {}
        self._dsts = []
        self._dst_code = {}
        self._approx_bytes = 0
        return True

    def close(self) -> None:
        """Flush any buffered tail rows as a final segment."""
        self.cut()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush only on clean exit: an exception mid-ingest must not
        # commit a half-consumed trace tail as if it were complete.
        if exc_type is None:
            self.close()
