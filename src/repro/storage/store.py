"""The manifest-backed segment catalog: pruned, mmap'd, compactable.

:class:`SegmentStore` owns one directory of segment files plus a
``manifest.json`` that orders them.  The manifest is the unit of
atomicity: segments are written first (themselves atomic), then the
manifest is atomically swapped, so a crash at any point leaves either
the old catalog or the new one — never a catalog pointing at a
half-written segment.  The ``generation`` counter bumps on every
catalog change; readers key caches on it exactly as engines key on
:attr:`repro.flows.store.FlowStore.version`.

Reading is a **gather**: callers name the hosts (and optionally the
time range) they need and the store scans only the segments whose
zone maps could contain matching rows, memory-maps just the needed
columns, and assembles host-grouped, start-ordered arrays with the
same ordering contract as :meth:`repro.flows.store.FlowStore.columnar`
— stable sort by start time, arrival order breaking ties — so every
downstream kernel is bit-identical to the in-memory plane.

Compaction merges runs of small segments (ingest tails, per-window
spools) into fewer larger ones, preserving row order; it rewrites data
files but never changes any gather result.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from ..resilience import faults
from ..resilience.io import atomic_write
from .format import (
    FORMAT_VERSION,
    SEGMENT_SUFFIX,
    Segment,
    SegmentMeta,
    StorageBudgetError,
    StorageError,
    StorageVersionError,
    TornSegmentError,
    open_segment,
    write_segment,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .view import StoreView
    from .writer import SegmentWriter

__all__ = [
    "MANIFEST_NAME",
    "Gathered",
    "SegmentStore",
]

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-segment-store"

logger = get_logger("storage.store")

_SEGMENTS_WRITTEN = obs_metrics.counter(
    "repro_storage_segments_written_total", "Segments committed to a store"
)
_ROWS_SPOOLED = obs_metrics.counter(
    "repro_storage_rows_spooled_total", "Flow rows written into segments"
)
_BYTES_WRITTEN = obs_metrics.counter(
    "repro_storage_bytes_written_total", "Bytes of segment files written"
)
_SCANS = obs_metrics.counter(
    "repro_storage_segment_scans_total",
    "Segments considered by gathers, by outcome",
    labels=("result",),
)
_ROWS_READ = obs_metrics.counter(
    "repro_storage_rows_read_total", "Flow rows materialised by gathers"
)
_GATHERS = obs_metrics.counter(
    "repro_storage_gathers_total", "Gather calls served by segment stores"
)
_COMPACTIONS = obs_metrics.counter(
    "repro_storage_compactions_total", "Segment groups merged by compaction"
)
_TORN = obs_metrics.counter(
    "repro_storage_torn_segments_total",
    "Torn/corrupt segments detected (and dropped when repairing)",
)
_HOOK_FAILURES = obs_metrics.counter(
    "repro_storage_commit_hook_failures_total",
    "Catalog commit hooks that raised, by event",
    labels=("event",),
)
_SEGMENTS_GAUGE = obs_metrics.gauge(
    "repro_storage_segments", "Segments in the last touched store"
)
_ROWS_GAUGE = obs_metrics.gauge(
    "repro_storage_rows", "Rows in the last touched store"
)


@dataclass(frozen=True)
class Gathered:
    """Host-grouped, start-ordered columns assembled by one gather.

    Matches the layout contract of
    :class:`repro.flows.store.ColumnarFlows`: ``hosts`` is sorted, host
    ``hosts[i]`` owns ``counts[i]`` consecutive rows, rows within a
    host ascend by start time with arrival order breaking ties.
    ``success`` is int64 (not the on-disk uint8) so downstream
    reductions cannot overflow; ``dst_codes`` are store-global dense
    codes — any bijection yields identical features, and
    :meth:`repro.storage.view.StoreView.columnar` recodes them to the
    in-memory plane's first-appearance order when exact snapshot
    equality matters.

    The scan counters record how selective the zone maps were; tests
    and the benchmark assert pruning through them.
    """

    hosts: Tuple[str, ...]
    counts: np.ndarray
    starts: np.ndarray
    src_bytes: np.ndarray
    success: np.ndarray
    dst_codes: np.ndarray
    n_destinations: int
    #: Destination strings indexed by ``dst_codes`` (the synthetic-flow
    #: path needs the addresses back; kernels never touch them).
    dsts: Tuple[str, ...]
    segments_read: int
    segments_pruned_host: int
    segments_pruned_time: int

    @property
    def n_rows(self) -> int:
        return len(self.starts)


def _empty_gather(pruned_host: int = 0, pruned_time: int = 0) -> Gathered:
    return Gathered(
        hosts=(),
        counts=np.zeros(0, dtype=np.int64),
        starts=np.zeros(0, dtype=np.float64),
        src_bytes=np.zeros(0, dtype=np.int64),
        success=np.zeros(0, dtype=np.int64),
        dst_codes=np.zeros(0, dtype=np.int64),
        n_destinations=0,
        dsts=(),
        segments_read=0,
        segments_pruned_host=pruned_host,
        segments_pruned_time=pruned_time,
    )


class SegmentStore:
    """One directory of segments plus the manifest ordering them."""

    def __init__(self, directory: Union[str, Path], manifest: Dict[str, object]):
        self.directory = Path(directory)
        self._manifest = manifest
        self._segments: Dict[str, Segment] = {}
        self._commit_hooks: List[
            Callable[["SegmentStore", str, List[SegmentMeta]], None]
        ] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, directory: Union[str, Path], *, exist_ok: bool = False
    ) -> "SegmentStore":
        """Initialise a fresh store directory (atomically manifested).

        With ``exist_ok`` an existing store is opened instead — the
        spill/spool paths use this to append across runs.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            if exist_ok:
                return cls.open(directory)
            raise StorageError(f"{directory}: segment store already exists")
        directory.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, object] = {
            "format": _MANIFEST_FORMAT,
            "version": FORMAT_VERSION,
            "generation": 0,
            "next_id": 0,
            "segments": [],
        }
        store = cls(directory, manifest)
        store._save_manifest()
        return store

    @classmethod
    def open(
        cls, directory: Union[str, Path], *, repair: bool = False
    ) -> "SegmentStore":
        """Open an existing store, validating manifest and segments.

        Every segment footer is validated up front (magic, version,
        CRC, declared sizes), so format drift or torn files surface
        here as :class:`StorageVersionError` / :class:`TornSegmentError`
        — not as a numpy shape error five stages later.  With
        ``repair=True`` torn segments are dropped from the catalog
        (logged, counted in ``repro_storage_torn_segments_total``)
        instead of failing the open; version errors are never
        repaired away.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise StorageError(
                f"{directory}: not a segment store (no {MANIFEST_NAME})"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"{manifest_path}: cannot read store manifest: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != _MANIFEST_FORMAT
        ):
            raise StorageError(
                f"{manifest_path}: not a segment-store manifest"
            )
        if manifest.get("version") != FORMAT_VERSION:
            raise StorageVersionError(
                f"{manifest_path}: store format version "
                f"{manifest.get('version')!r} is not supported (this build "
                f"reads version {FORMAT_VERSION})"
            )
        store = cls(directory, manifest)
        healthy: List[Dict[str, object]] = []
        dropped = 0
        for entry in store._manifest["segments"]:
            meta = SegmentMeta.from_json(entry)
            try:
                store._segment(meta.name)
            except TornSegmentError as exc:
                _TORN.inc()
                if not repair:
                    raise
                dropped += 1
                logger.warning(
                    "dropping torn segment from catalog: %s", exc
                )
                continue
            healthy.append(entry)
        if dropped:
            store._manifest["segments"] = healthy
            store._bump_generation()
            store._save_manifest()
            store._fire_commit_hooks("repair", [])
        store._set_gauges()
        return store

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Catalog mutation counter (cache key for readers/pools)."""
        return int(self._manifest["generation"])

    @property
    def metas(self) -> List[SegmentMeta]:
        """Catalog entries in arrival (manifest) order."""
        return [
            SegmentMeta.from_json(entry)
            for entry in self._manifest["segments"]
        ]

    @property
    def n_segments(self) -> int:
        return len(self._manifest["segments"])

    @property
    def total_rows(self) -> int:
        return sum(int(entry["rows"]) for entry in self._manifest["segments"])

    @property
    def t_min(self) -> float:
        metas = self.metas
        return min((m.t_min for m in metas), default=0.0)

    @property
    def t_max(self) -> float:
        metas = self.metas
        return max((m.t_max for m in metas), default=0.0)

    def _bump_generation(self) -> None:
        self._manifest["generation"] = self.generation + 1

    # ------------------------------------------------------------------
    # Commit hooks (the query plane's index-maintenance seam)
    # ------------------------------------------------------------------
    def add_commit_hook(
        self,
        hook: Callable[["SegmentStore", str, List[SegmentMeta]], None],
    ) -> None:
        """Register ``hook(store, event, new_metas)`` on catalog commits.

        Fired *after* the manifest is atomically saved, with ``event``
        one of ``"append"`` (``new_metas`` holds the one new segment),
        ``"compact"``, ``"truncate"`` or ``"repair"`` (``new_metas``
        empty — the catalog changed shape and incremental maintenance
        is not possible).  Hooks maintain *derived* state (secondary
        indexes); a hook failure is logged and counted but never fails
        the commit itself — the derived state is rebuildable, the
        catalog is the truth.
        """
        self._commit_hooks.append(hook)

    def remove_commit_hook(self, hook) -> None:
        """Unregister a previously added commit hook (missing = no-op)."""
        try:
            self._commit_hooks.remove(hook)
        except ValueError:
            pass

    def _fire_commit_hooks(self, event: str, new_metas: List[SegmentMeta]) -> None:
        for hook in list(self._commit_hooks):
            try:
                hook(self, event, new_metas)
            except Exception:
                _HOOK_FAILURES.inc(event=event)
                logger.exception(
                    "commit hook %r failed on %s of %s (derived state may "
                    "be stale; it will be rebuilt on next open)",
                    hook,
                    event,
                    self.directory,
                )

    def _save_manifest(self) -> None:
        faults.io_point("store-manifest")
        with atomic_write(self.directory / MANIFEST_NAME, "w") as fh:
            fh.write(json.dumps(self._manifest, indent=2, sort_keys=True) + "\n")

    def _set_gauges(self) -> None:
        if obs_metrics.is_enabled():
            _SEGMENTS_GAUGE.set(self.n_segments)
            _ROWS_GAUGE.set(self.total_rows)

    def _segment(self, name: str) -> Segment:
        segment = self._segments.get(name)
        if segment is None:
            segment = open_segment(self.directory / name)
            self._segments[name] = segment
        return segment

    def segments(self) -> List[Segment]:
        """All catalogued segments, opened, in arrival order."""
        return [self._segment(m.name) for m in self.metas]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_segment(
        self,
        *,
        starts: np.ndarray,
        src_bytes: np.ndarray,
        success: np.ndarray,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        hosts: Sequence[str],
        dsts: Sequence[str],
    ) -> SegmentMeta:
        """Write one segment file and commit it to the catalog.

        Rows must continue the store's arrival order — appends are how
        arrival order is *defined* across segments.
        """
        next_id = int(self._manifest["next_id"])
        name = f"seg-{next_id:06d}{SEGMENT_SUFFIX}"
        meta = write_segment(
            self.directory / name,
            starts=starts,
            src_bytes=src_bytes,
            success=success,
            src_codes=src_codes,
            dst_codes=dst_codes,
            hosts=hosts,
            dsts=dsts,
        )
        self._manifest["next_id"] = next_id + 1
        self._manifest["segments"].append(meta.to_json())
        self._bump_generation()
        self._save_manifest()
        _SEGMENTS_WRITTEN.inc()
        _ROWS_SPOOLED.inc(meta.rows)
        _BYTES_WRITTEN.inc(meta.file_bytes)
        self._set_gauges()
        self._fire_commit_hooks("append", [meta])
        return meta

    def truncate_rows(self, expected_rows: int) -> int:
        """Drop trailing segments until ``total_rows == expected_rows``.

        The reconciliation primitive for journaled writers: a client of
        the store that records "N rows durable" *after* each atomic
        segment commit can, after a crash, find the catalog ahead of
        its journal — whole trailing segments whose commit record never
        landed.  Because every commit is segment-aligned, the excess is
        exactly a suffix of the catalog; this pops that suffix (one
        atomic manifest swap, then the files are unlinked) and returns
        the number of rows dropped.

        Raises :class:`StorageError` if no suffix sums to the excess —
        that means the store was written by something that does not
        journal per segment, and blind truncation would destroy
        acknowledged data.
        """
        if expected_rows < 0:
            raise ValueError("expected_rows must be >= 0")
        excess = self.total_rows - expected_rows
        if excess < 0:
            raise StorageError(
                f"{self.directory}: store has {self.total_rows} rows but "
                f"{expected_rows} were journaled — rows are missing, refusing "
                "to reconcile"
            )
        if excess == 0:
            return 0
        entries = list(self._manifest["segments"])
        dropped: List[Dict[str, object]] = []
        remaining = excess
        while remaining > 0 and entries:
            entry = entries.pop()
            dropped.append(entry)
            remaining -= int(entry["rows"])
        if remaining != 0:
            raise StorageError(
                f"{self.directory}: no segment suffix sums to the "
                f"{excess}-row excess over the journal — refusing to truncate"
            )
        self._manifest["segments"] = entries
        self._bump_generation()
        self._save_manifest()
        for entry in dropped:
            name = str(entry["name"])
            self._segments.pop(name, None)
            try:
                os.unlink(self.directory / name)
            except OSError:
                pass  # manifest no longer references it; file is orphaned
        self._set_gauges()
        self._fire_commit_hooks("truncate", [])
        logger.warning(
            "truncated %d orphan row(s) in %d segment(s) from %s",
            excess,
            len(dropped),
            self.directory,
        )
        return excess

    # ------------------------------------------------------------------
    # Catalog-level queries (zone maps only — no column reads)
    # ------------------------------------------------------------------
    def host_counts(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> Dict[str, int]:
        """Rows per initiator.

        Without a time restriction this is a pure footer aggregation.
        With one, segments fully inside the range still aggregate from
        footers; only boundary-straddling segments read their ``starts``
        column (sliced per host, so the scan is bounded).
        """
        counts: Dict[str, int] = {}
        for meta in self.metas:
            segment = self._segment(meta.name)
            if t0 is not None and segment.t_max < t0:
                continue
            if t1 is not None and segment.t_min >= t1:
                continue
            inside = (t0 is None or segment.t_min >= t0) and (
                t1 is None or segment.t_max < t1
            )
            if inside:
                for host, rows in zip(segment.hosts, segment.host_rows):
                    counts[host] = counts.get(host, 0) + int(rows)
            else:
                starts = segment.starts
                mask = np.ones(segment.rows, dtype=bool)
                if t0 is not None:
                    mask &= starts >= t0
                if t1 is not None:
                    mask &= starts < t1
                per_host = np.bincount(
                    segment.src_codes[mask], minlength=len(segment.hosts)
                )
                for host, rows in zip(segment.hosts, per_host):
                    if rows:
                        counts[host] = counts.get(host, 0) + int(rows)
        return counts

    def hosts(self) -> List[str]:
        """Sorted union of every segment's initiator table."""
        seen: Dict[str, None] = {}
        for meta in self.metas:
            for host in self._segment(meta.name).hosts:
                seen[host] = None
        return sorted(seen)

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def gather(
        self,
        hosts: Optional[Iterable[str]] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        *,
        prune: bool = True,
        max_rows: Optional[int] = None,
    ) -> Gathered:
        """Materialise host-grouped, start-ordered columns for ``hosts``.

        ``prune=False`` disables zone-map pruning (every segment is
        scanned and row-filtered) — results are identical; the flag
        exists so the benchmark can measure what pruning buys.
        ``max_rows`` is a hard materialisation budget: a gather that
        would exceed it raises :class:`StorageBudgetError` *before*
        concatenating, which the pipeline's degradation ladder catches.
        """
        faults.io_point("store-read")
        _GATHERS.inc()
        wanted: Optional[frozenset] = None
        if hosts is not None:
            wanted = frozenset(hosts)
            if not wanted:
                return _empty_gather()

        # Budget pre-check from zone maps alone: exact when there is no
        # time restriction, skipped (in favour of the exact running
        # check below) when there is.
        if max_rows is not None and t0 is None and t1 is None:
            estimate = 0
            for meta in self.metas:
                segment = self._segment(meta.name)
                if wanted is None:
                    estimate += segment.rows
                else:
                    index = segment.host_index
                    estimate += sum(
                        int(segment.host_rows[index[h]])
                        for h in wanted
                        if h in index
                    )
            if estimate > max_rows:
                raise StorageBudgetError(
                    f"gather would materialise {estimate} rows, over the "
                    f"budget of {max_rows}"
                )

        pruned_host = 0
        pruned_time = 0
        rows_total = 0
        chunk_host: List[np.ndarray] = []
        chunk_starts: List[np.ndarray] = []
        chunk_bytes: List[np.ndarray] = []
        chunk_success: List[np.ndarray] = []
        chunk_dst: List[np.ndarray] = []
        global_hosts: Dict[str, int] = {}
        global_dsts: Dict[str, int] = {}

        for meta in self.metas:
            segment = self._segment(meta.name)
            if prune:
                if (t0 is not None and segment.t_max < t0) or (
                    t1 is not None and segment.t_min >= t1
                ):
                    pruned_time += 1
                    _SCANS.inc(result="pruned-time")
                    continue
                if wanted is not None:
                    index = segment.host_index
                    present = [h for h in wanted if h in index]
                    if not present:
                        pruned_host += 1
                        _SCANS.inc(result="pruned-host")
                        continue
                    if t0 is not None or t1 is not None:
                        # Per-host time zone maps: a segment overlapping
                        # the window may still hold none of *these*
                        # hosts' rows inside it.
                        live = [
                            h
                            for h in present
                            if not (
                                (
                                    t0 is not None
                                    and segment.host_t_max[index[h]] < t0
                                )
                                or (
                                    t1 is not None
                                    and segment.host_t_min[index[h]] >= t1
                                )
                            )
                        ]
                        if not live:
                            pruned_host += 1
                            _SCANS.inc(result="pruned-host")
                            continue
            _SCANS.inc(result="read")

            src_codes = segment.src_codes
            if wanted is None:
                remap = np.empty(len(segment.hosts), dtype=np.int64)
                for local, host in enumerate(segment.hosts):
                    remap[local] = global_hosts.setdefault(
                        host, len(global_hosts)
                    )
                mask = None
            else:
                remap = np.full(len(segment.hosts), -1, dtype=np.int64)
                index = segment.host_index
                for host in wanted:
                    local = index.get(host)
                    if local is not None:
                        remap[local] = global_hosts.setdefault(
                            host, len(global_hosts)
                        )
                mask = remap[src_codes] >= 0
            if t0 is not None or t1 is not None:
                starts_col = segment.starts
                tmask = np.ones(segment.rows, dtype=bool)
                if t0 is not None:
                    tmask &= starts_col >= t0
                if t1 is not None:
                    tmask &= starts_col < t1
                mask = tmask if mask is None else (mask & tmask)
            if mask is not None and not mask.any():
                continue

            dst_remap = np.empty(len(segment.dsts), dtype=np.int64)
            for local, dst in enumerate(segment.dsts):
                dst_remap[local] = global_dsts.setdefault(
                    dst, len(global_dsts)
                )

            if mask is None:
                seg_host = remap[src_codes]
                seg_starts = np.asarray(segment.starts, dtype=np.float64)
                seg_bytes = np.asarray(segment.src_bytes, dtype=np.int64)
                seg_success = segment.success.astype(np.int64)
                seg_dst = dst_remap[segment.dst_codes]
            else:
                seg_host = remap[src_codes[mask]]
                seg_starts = np.asarray(
                    segment.starts[mask], dtype=np.float64
                )
                seg_bytes = np.asarray(
                    segment.src_bytes[mask], dtype=np.int64
                )
                seg_success = segment.success[mask].astype(np.int64)
                seg_dst = dst_remap[segment.dst_codes[mask]]
            rows_total += len(seg_starts)
            if max_rows is not None and rows_total > max_rows:
                raise StorageBudgetError(
                    f"gather exceeded the materialisation budget of "
                    f"{max_rows} rows at segment {meta.name}"
                )
            chunk_host.append(seg_host)
            chunk_starts.append(seg_starts)
            chunk_bytes.append(seg_bytes)
            chunk_success.append(seg_success)
            chunk_dst.append(seg_dst)

        if not chunk_starts:
            return _empty_gather(pruned_host, pruned_time)
        _ROWS_READ.inc(rows_total)

        host_idx = np.concatenate(chunk_host)
        starts_arr = np.concatenate(chunk_starts)
        bytes_arr = np.concatenate(chunk_bytes)
        success_arr = np.concatenate(chunk_success)
        dst_arr = np.concatenate(chunk_dst)

        # Present hosts in sorted order, renumbered densely.  The codes
        # in ``host_idx`` are first-appearance order; translate them to
        # sorted order before grouping.
        ordered_hosts = sorted(global_hosts)
        translate = np.empty(len(global_hosts), dtype=np.int64)
        for rank, host in enumerate(ordered_hosts):
            translate[global_hosts[host]] = rank
        host_idx = translate[host_idx]

        # The in-memory plane's ordering contract, reproduced: a single
        # stable sort by start time over arrival order (FlowStore's
        # global sort), then a stable group-by host — within each host,
        # rows ascend by start with arrival order breaking ties.
        order = np.argsort(starts_arr, kind="stable")
        order = order[np.argsort(host_idx[order], kind="stable")]

        host_idx = host_idx[order]
        counts = np.bincount(host_idx, minlength=len(ordered_hosts)).astype(
            np.int64
        )
        present = counts > 0
        kept_hosts = tuple(
            h for h, keep in zip(ordered_hosts, present) if keep
        )
        counts = counts[present]

        return Gathered(
            hosts=kept_hosts,
            counts=counts,
            starts=starts_arr[order],
            src_bytes=bytes_arr[order],
            success=success_arr[order],
            dst_codes=dst_arr[order],
            n_destinations=len(global_dsts),
            dsts=tuple(global_dsts),
            segments_read=len(chunk_starts),
            segments_pruned_host=pruned_host,
            segments_pruned_time=pruned_time,
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(
        self, *, min_rows: int, target_rows: Optional[int] = None
    ) -> int:
        """Merge consecutive small segments; return segments removed.

        Adjacent segments with fewer than ``min_rows`` rows are merged
        (preserving arrival order) into segments of up to
        ``target_rows`` (default ``4 * min_rows``).  Merged files are
        committed through a single atomic manifest swap; the old files
        are unlinked only afterwards, so a crash mid-compaction leaves
        a consistent catalog (at worst with orphaned files a later
        compaction cleans up).
        """
        if min_rows < 1:
            raise ValueError("min_rows must be >= 1")
        if target_rows is None:
            target_rows = 4 * min_rows
        metas = self.metas
        groups: List[List[SegmentMeta]] = []
        current: List[SegmentMeta] = []
        current_rows = 0
        for meta in metas:
            small = meta.rows < min_rows
            if small and (current_rows + meta.rows) <= target_rows:
                current.append(meta)
                current_rows += meta.rows
            else:
                if len(current) > 1:
                    groups.append(current)
                current = [meta] if small else []
                current_rows = meta.rows if small else 0
        if len(current) > 1:
            groups.append(current)
        if not groups:
            return 0

        merged_for: Dict[str, Tuple[List[SegmentMeta], SegmentMeta]] = {}
        obsolete: List[str] = []
        for group in groups:
            merged_meta = self._write_merged(group)
            merged_for[group[0].name] = (group, merged_meta)
            obsolete.extend(m.name for m in group)

        entries: List[Dict[str, object]] = []
        skip: frozenset = frozenset(obsolete)
        for meta in metas:
            if meta.name in merged_for:
                entries.append(merged_for[meta.name][1].to_json())
            elif meta.name not in skip:
                entries.append(meta.to_json())
        self._manifest["segments"] = entries
        self._bump_generation()
        self._save_manifest()
        _COMPACTIONS.inc(len(groups))
        removed = 0
        for name in obsolete:
            self._segments.pop(name, None)
            try:
                os.unlink(self.directory / name)
            except OSError:
                # Orphaned data files are harmless: the manifest no
                # longer references them.
                pass
            removed += 1
        self._set_gauges()
        self._fire_commit_hooks("compact", [])
        logger.info(
            "compacted %d segment(s) into %d (store now has %d)",
            removed,
            len(groups),
            self.n_segments,
        )
        return removed - len(groups)

    def _write_merged(self, group: Sequence[SegmentMeta]) -> SegmentMeta:
        """Concatenate a group of segments into one new segment file."""
        hosts: Dict[str, int] = {}
        dsts: Dict[str, int] = {}
        starts: List[np.ndarray] = []
        src_bytes: List[np.ndarray] = []
        success: List[np.ndarray] = []
        src_codes: List[np.ndarray] = []
        dst_codes: List[np.ndarray] = []
        for meta in group:
            segment = self._segment(meta.name)
            host_map = np.empty(len(segment.hosts), dtype=np.int32)
            for local, host in enumerate(segment.hosts):
                host_map[local] = hosts.setdefault(host, len(hosts))
            dst_map = np.empty(len(segment.dsts), dtype=np.int32)
            for local, dst in enumerate(segment.dsts):
                dst_map[local] = dsts.setdefault(dst, len(dsts))
            starts.append(np.asarray(segment.starts))
            src_bytes.append(np.asarray(segment.src_bytes))
            success.append(np.asarray(segment.success))
            src_codes.append(host_map[segment.src_codes])
            dst_codes.append(dst_map[segment.dst_codes])
        next_id = int(self._manifest["next_id"])
        name = f"seg-{next_id:06d}{SEGMENT_SUFFIX}"
        self._manifest["next_id"] = next_id + 1
        meta = write_segment(
            self.directory / name,
            starts=np.concatenate(starts),
            src_bytes=np.concatenate(src_bytes),
            success=np.concatenate(success),
            src_codes=np.concatenate(src_codes),
            dst_codes=np.concatenate(dst_codes),
            hosts=list(hosts),
            dsts=list(dsts),
        )
        _SEGMENTS_WRITTEN.inc()
        _BYTES_WRITTEN.inc(meta.file_bytes)
        return meta

    # ------------------------------------------------------------------
    # Writers / views
    # ------------------------------------------------------------------
    def writer(self, **kwargs) -> "SegmentWriter":
        """A :class:`~repro.storage.writer.SegmentWriter` into this store."""
        from .writer import SegmentWriter

        return SegmentWriter(self, **kwargs)

    def view(self, **kwargs) -> "StoreView":
        """A :class:`~repro.storage.view.StoreView` over this store."""
        from .view import StoreView

        return StoreView(self, **kwargs)
