"""Out-of-core columnar flow storage: the disk-resident data plane.

Everything upstream of the detector — ingest, feature extraction, the
batch pipeline, the online detector — can run from this package's
append-only, time-partitioned **segment store** instead of an
in-memory :class:`~repro.flows.store.FlowStore`, producing bit-identical
features, thresholds, and suspects while holding only bounded slices
of the trace in RAM.

Layers, bottom up:

* :mod:`~repro.storage.format` — the single-file segment container
  (columns + JSON footer + CRC trailer), zone maps, and the error
  taxonomy (:class:`StorageError`, :class:`StorageVersionError`,
  :class:`TornSegmentError`, :class:`StorageBudgetError`);
* :mod:`~repro.storage.writer` — :class:`SegmentWriter`, buffering
  rows and cutting segments on row/byte thresholds;
* :mod:`~repro.storage.store` — :class:`SegmentStore`, the
  manifest-backed catalog with zone-map pruned gathers and compaction;
* :mod:`~repro.storage.view` — :class:`StoreView`, the
  FlowStore-shaped facade the pipeline and extraction engines consume;
* :mod:`~repro.storage.spool` — :func:`spool_flow_store`, spilling an
  in-memory store to segments.

See ``docs/storage.md`` for the format specification, the pruning and
compaction policies, and guidance on when to prefer the in-memory
plane.
"""

from .format import (
    COLUMN_DTYPES,
    FORMAT_VERSION,
    SEGMENT_SUFFIX,
    Segment,
    SegmentMeta,
    StorageBudgetError,
    StorageError,
    StorageVersionError,
    TornSegmentError,
    open_segment,
    read_footer,
    write_segment,
)
from .spool import fresh_store, spool_flow_store
from .store import MANIFEST_NAME, Gathered, SegmentStore
from .view import PARALLEL_SPEC_TAG, StoreView
from .writer import DEFAULT_SEGMENT_BYTES, DEFAULT_SEGMENT_ROWS, SegmentWriter

__all__ = [
    "COLUMN_DTYPES",
    "FORMAT_VERSION",
    "SEGMENT_SUFFIX",
    "MANIFEST_NAME",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_SEGMENT_ROWS",
    "PARALLEL_SPEC_TAG",
    "Segment",
    "SegmentMeta",
    "Gathered",
    "SegmentStore",
    "SegmentWriter",
    "StoreView",
    "StorageError",
    "StorageVersionError",
    "TornSegmentError",
    "StorageBudgetError",
    "open_segment",
    "read_footer",
    "write_segment",
    "fresh_store",
    "spool_flow_store",
]
