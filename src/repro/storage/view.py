"""A :class:`~repro.flows.store.FlowStore`-shaped facade over segments.

:class:`StoreView` is how the rest of the pipeline consumes a
:class:`~repro.storage.store.SegmentStore` without knowing it exists:
it answers the store-protocol queries the detection stages and the
extraction engines actually use — ``initiators``, ``flow_counts()``,
``columnar()``, ``flows_from()``, ``version``, ``between()`` — by
gathering from segments on demand.  Every answer is bit-identical to
the same query against an in-memory :class:`FlowStore` holding the
same rows (the equivalence suite pins this property under Hypothesis).

Two things distinguish it from the in-memory plane:

* **A materialisation budget.**  ``max_gather_rows`` bounds the rows
  any single gather may bring into memory; exceeding it raises
  :class:`~repro.storage.format.StorageBudgetError` instead of
  silently defeating the point of out-of-core storage.  Sharded
  extraction gathers per shard, so the budget is per-shard, not
  per-trace — that is what lets a trace larger than RAM run.
* **A shipping address.**  :attr:`parallel_spec` describes the view as
  a small picklable tuple; :mod:`repro.flows.parallel` ships it to
  workers (fork *or* spawn), which re-open the store and memory-map
  segments independently — no snapshot copy travels to any worker.

Time-restricted views (:meth:`between`) carry the window into every
gather, so zone-map pruning applies to replayed windows exactly as to
host subsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..flows.parallel import _columns_core, _ShardColumns
from ..flows.record import FlowRecord, FlowState, Protocol
from ..flows.store import ColumnarFlows
from .format import StorageBudgetError  # noqa: F401  (re-exported for callers)
from .store import Gathered, SegmentStore

__all__ = ["PARALLEL_SPEC_TAG", "StoreView"]

#: First element of :attr:`StoreView.parallel_spec`; the worker-side
#: opener refuses specs with any other tag, so an accidental payload
#: cannot be misread as a store address.
PARALLEL_SPEC_TAG = "repro-storage"


def _recode_first_appearance(codes: np.ndarray) -> Tuple[np.ndarray, int]:
    """Renumber codes by first appearance (the in-memory plane's order)."""
    uniques, first_pos, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    order = np.argsort(first_pos)
    rank = np.empty(len(uniques), dtype=np.int64)
    rank[order] = np.arange(len(uniques), dtype=np.int64)
    return rank[inverse], len(uniques)


class StoreView:
    """Read-only, optionally time-restricted view over a segment store.

    Feature kernels, the detection stages, and both extraction engines
    accept this anywhere they accept a :class:`FlowStore`.
    """

    def __init__(
        self,
        store: SegmentStore,
        *,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        max_gather_rows: Optional[int] = None,
    ) -> None:
        if max_gather_rows is not None and max_gather_rows < 1:
            raise ValueError("max_gather_rows must be >= 1")
        self.store = store
        self.t0 = t0
        self.t1 = t1
        self.max_gather_rows = max_gather_rows
        self._counts: Optional[Dict[str, int]] = None
        self._counts_generation = -1
        self._columnar: Optional[ColumnarFlows] = None
        self._columnar_generation = -1

    # ------------------------------------------------------------------
    # Store protocol
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The store's catalog generation — the pool-staleness key."""
        return self.store.generation

    def flow_counts(self) -> Dict[str, int]:
        """Initiated-flow counts per host, from zone maps when possible."""
        if self._counts is None or self._counts_generation != self.version:
            self._counts = self.store.host_counts(self.t0, self.t1)
            self._counts_generation = self.version
        return dict(self._counts)

    @property
    def initiators(self) -> Set[str]:
        """All source addresses with at least one flow in the window."""
        return set(self.flow_counts())

    def __len__(self) -> int:
        return sum(self.flow_counts().values())

    def __bool__(self) -> bool:
        return len(self) > 0

    def between(self, t0: float, t1: float) -> "StoreView":
        """A sub-view over ``[t0, t1)``, intersected with this window."""
        lo = t0 if self.t0 is None else max(self.t0, t0)
        hi = t1 if self.t1 is None else min(self.t1, t1)
        return StoreView(
            self.store, t0=lo, t1=hi, max_gather_rows=self.max_gather_rows
        )

    # ------------------------------------------------------------------
    # Gathering
    # ------------------------------------------------------------------
    def gather(self, hosts=None) -> Gathered:
        """Gather this view's rows (optionally for a host subset)."""
        return self.store.gather(
            hosts,
            self.t0,
            self.t1,
            max_rows=self.max_gather_rows,
        )

    def columnar(self) -> ColumnarFlows:
        """The window as a :class:`ColumnarFlows`, bit-identical to the
        snapshot an in-memory store of the same rows would build.

        Materialises every row in the window — subject to the gather
        budget.  Prefer :meth:`shard_columns` (per-shard gathers) when
        the trace does not comfortably fit.
        """
        if (
            self._columnar is None
            or self._columnar_generation != self.version
        ):
            gathered = self.gather()
            dst_codes, n_destinations = _recode_first_appearance(
                gathered.dst_codes
            )
            host_offsets = np.zeros(len(gathered.hosts) + 1, dtype=np.int64)
            np.cumsum(gathered.counts, out=host_offsets[1:])
            self._columnar = ColumnarFlows(
                hosts=gathered.hosts,
                index_of={h: i for i, h in enumerate(gathered.hosts)},
                host_offsets=host_offsets,
                starts=gathered.starts,
                src_bytes=gathered.src_bytes,
                success=gathered.success,
                dst_codes=dst_codes,
                n_destinations=n_destinations,
            )
            self._columnar_generation = self.version
        return self._columnar

    def shard_columns(
        self, hosts: Tuple[str, ...], grace_period: float
    ) -> _ShardColumns:
        """Run the vectorized shard kernel over a per-shard gather.

        This is the store-backed worker kernel: only the shard's rows
        are materialised (budget-checked), then the exact in-memory
        group-by kernel (:func:`repro.flows.parallel._columns_core`)
        runs on them — same kernel, same ordering, same bits.
        """
        gathered = self.gather(hosts)
        return _columns_core(
            list(gathered.hosts),
            gathered.counts,
            gathered.starts,
            gathered.src_bytes,
            gathered.success,
            gathered.dst_codes,
            gathered.n_destinations,
            grace_period,
        )

    # ------------------------------------------------------------------
    # Record materialisation (reference/compatibility path)
    # ------------------------------------------------------------------
    def flows_from(self, host: str) -> List[FlowRecord]:
        """``host``'s flows as synthetic records, in start-time order.

        The storage plane keeps only the feature-bearing columns, so
        the records come back with neutral ports/protocol/packet fields
        and ``state`` collapsed to established vs timeout — exactly the
        projection every feature in :mod:`repro.flows.metrics`
        consumes, which is why the reference kernel still produces
        bit-identical features from them.
        """
        gathered = self.gather([host])
        return self._records(gathered)

    def records(self) -> List[FlowRecord]:
        """Every row in the view as synthetic records (host-grouped).

        Same projection caveats as :meth:`flows_from`; rows come back
        grouped by host in the gather's host order, start-sorted within
        each host.  This is the replay path: the serve coordinator
        feeds these records to a fresh detector (restart) or an
        in-memory store (drain rescore) and gets bit-identical features
        because only the feature-bearing columns ever mattered.
        """
        return self._records(self.gather())

    @staticmethod
    def _records(gathered: Gathered) -> List[FlowRecord]:
        records: List[FlowRecord] = []
        dsts = gathered.dsts
        srcs: List[str] = []
        for host, count in zip(gathered.hosts, gathered.counts.tolist()):
            srcs.extend([host] * count)
        for src, start, size, ok, dcode in zip(
            srcs,
            gathered.starts.tolist(),
            gathered.src_bytes.tolist(),
            gathered.success.tolist(),
            gathered.dst_codes.tolist(),
        ):
            records.append(
                FlowRecord(
                    src=src,
                    dst=dsts[dcode],
                    sport=0,
                    dport=0,
                    proto=Protocol.TCP,
                    start=start,
                    end=start,
                    src_bytes=size,
                    state=(
                        FlowState.ESTABLISHED if ok else FlowState.TIMEOUT
                    ),
                )
            )
        return records

    # ------------------------------------------------------------------
    # Worker shipping
    # ------------------------------------------------------------------
    @property
    def parallel_spec(self) -> Tuple[object, ...]:
        """Picklable address of this view for extraction workers.

        ``(tag, directory, generation, t0, t1, max_gather_rows)`` —
        enough for a worker process to re-open the store (verifying the
        catalog generation it was planned against) and gather its
        shards independently via its own memory maps.
        """
        return (
            PARALLEL_SPEC_TAG,
            str(self.store.directory),
            self.version,
            self.t0,
            self.t1,
            self.max_gather_rows,
        )

    @classmethod
    def from_parallel_spec(cls, spec: Tuple[object, ...]) -> "StoreView":
        """Re-open the view a :attr:`parallel_spec` describes.

        Raises :class:`~repro.storage.format.StorageError` (via
        :meth:`SegmentStore.open`) when the store is unreadable, and
        ``RuntimeError`` when the catalog moved past the generation the
        shards were planned against — a stale plan must fail loudly,
        not silently extract different rows.
        """
        tag, directory, generation, t0, t1, max_rows = spec
        if tag != PARALLEL_SPEC_TAG:
            raise RuntimeError(f"not a storage parallel spec: {spec!r}")
        store = SegmentStore.open(directory)
        if store.generation != generation:
            raise RuntimeError(
                f"segment store {directory} is at generation "
                f"{store.generation}, but the extraction plan was built "
                f"against generation {generation}"
            )
        return cls(store, t0=t0, t1=t1, max_gather_rows=max_rows)
