"""The on-disk segment container: columns, footer, zone maps.

One **segment** is one binary file holding a contiguous run of flow
rows in arrival order, stored column-wise so readers can memory-map
exactly the columns a kernel needs:

.. code-block:: text

    ┌──────────────────────────────────────────────────────────────┐
    │ header magic  b"RSEG" + version byte + b"\\n"   (6 bytes)     │
    ├──────────────────────────────────────────────────────────────┤
    │ starts     float64[n]   flow start times                     │
    │ src_bytes  int64[n]     bytes uploaded by the initiator      │
    │ success    uint8[n]     1 = established, 0 = failed          │
    │ src_codes  int32[n]     index into footer["hosts"]           │
    │ dst_codes  int32[n]     index into footer["dsts"]            │
    ├──────────────────────────────────────────────────────────────┤
    │ footer     JSON (utf-8): row count, column offsets, string   │
    │            tables, time range, per-host zone maps            │
    ├──────────────────────────────────────────────────────────────┤
    │ trailer    crc32(footer) u32 + len(footer) u64 + b"GESR\\n"   │
    └──────────────────────────────────────────────────────────────┘

The columns are the exact inputs of the feature kernels
(:func:`repro.flows.parallel._columns_core`); addresses are factorised
into dense per-segment integer codes with the string tables in the
footer, so a reader touches no Python objects until it decides to.

The **zone maps** (``host_rows`` / ``host_t_min`` / ``host_t_max``,
aligned with ``hosts``) let :class:`repro.storage.store.SegmentStore`
prune whole segments by host membership or time range without reading
a single column byte.

Durability and validation
-------------------------
Segments are written through :func:`repro.resilience.atomic_write`, so
a crashed writer never leaves a half-segment where a complete one
stood.  A segment that is torn *externally* (truncated copy, bad disk)
is still always detected: the trailer sits at the very end of the
file, so truncation at any offset destroys it, and the footer CRC
catches in-place corruption of the metadata.  Readers raise

* :class:`TornSegmentError` for truncation / corruption, and
* :class:`StorageVersionError` for format drift (a future header
  version byte or footer schema version),

never a numpy shape error or a JSON traceback from the middle of a
load.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..resilience import faults
from ..resilience.io import atomic_write

__all__ = [
    "FORMAT_VERSION",
    "SEGMENT_SUFFIX",
    "COLUMN_DTYPES",
    "StorageError",
    "StorageVersionError",
    "TornSegmentError",
    "StorageBudgetError",
    "SegmentMeta",
    "Segment",
    "write_segment",
    "read_footer",
    "open_segment",
]

#: Bump on any incompatible change to the segment layout or footer
#: schema; readers refuse other versions with :class:`StorageVersionError`.
FORMAT_VERSION = 1

SEGMENT_SUFFIX = ".rseg"

_HEADER_PREFIX = b"RSEG"
_HEADER = _HEADER_PREFIX + bytes([FORMAT_VERSION]) + b"\n"
_TRAILER_MAGIC = b"GESR\n"
#: crc32 (u32) + footer length (u64) + end magic.
_TRAILER_STRUCT = struct.Struct("<IQ")
_TRAILER_LEN = _TRAILER_STRUCT.size + len(_TRAILER_MAGIC)

#: Column order and dtypes of the segment body, in file order.
COLUMN_DTYPES: Tuple[Tuple[str, str], ...] = (
    ("starts", "<f8"),
    ("src_bytes", "<i8"),
    ("success", "|u1"),
    ("src_codes", "<i4"),
    ("dst_codes", "<i4"),
)


class StorageError(RuntimeError):
    """Base class for segment-store failures."""


class StorageVersionError(StorageError):
    """The file is a segment/manifest of an incompatible format version."""


class TornSegmentError(StorageError):
    """The segment file is truncated or its footer fails validation."""


class StorageBudgetError(StorageError):
    """A gather would materialise more rows than the caller's budget."""


@dataclass(frozen=True)
class SegmentMeta:
    """Catalog entry for one segment — everything pruning needs.

    This is what the store manifest records per segment; the zone maps
    themselves live in the segment footer and are loaded when the
    segment is first opened.
    """

    name: str
    rows: int
    t_min: float
    t_max: float
    n_hosts: int
    file_bytes: int

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rows": self.rows,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "n_hosts": self.n_hosts,
            "file_bytes": self.file_bytes,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SegmentMeta":
        return cls(
            name=str(payload["name"]),
            rows=int(payload["rows"]),
            t_min=float(payload["t_min"]),
            t_max=float(payload["t_max"]),
            n_hosts=int(payload["n_hosts"]),
            file_bytes=int(payload["file_bytes"]),
        )


def _zone_maps(
    starts: np.ndarray, src_codes: np.ndarray, n_hosts: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-host (row count, min start, max start), aligned with codes."""
    counts = np.bincount(src_codes, minlength=n_hosts).astype(np.int64)
    mins = np.full(n_hosts, np.inf, dtype=np.float64)
    maxs = np.full(n_hosts, -np.inf, dtype=np.float64)
    np.minimum.at(mins, src_codes, starts)
    np.maximum.at(maxs, src_codes, starts)
    return counts, mins, maxs


def write_segment(
    path: Union[str, Path],
    *,
    starts: np.ndarray,
    src_bytes: np.ndarray,
    success: np.ndarray,
    src_codes: np.ndarray,
    dst_codes: np.ndarray,
    hosts: Sequence[str],
    dsts: Sequence[str],
) -> SegmentMeta:
    """Write one segment file atomically; return its catalog entry.

    Rows must be in arrival order — the store's per-host ordering
    guarantee (stable sort by start, arrival order breaking ties)
    depends on segments preserving it.
    """
    path = Path(path)
    n = len(starts)
    if n == 0:
        raise ValueError("refusing to write an empty segment")
    columns = {
        "starts": np.ascontiguousarray(starts, dtype="<f8"),
        "src_bytes": np.ascontiguousarray(src_bytes, dtype="<i8"),
        "success": np.ascontiguousarray(success, dtype="|u1"),
        "src_codes": np.ascontiguousarray(src_codes, dtype="<i4"),
        "dst_codes": np.ascontiguousarray(dst_codes, dtype="<i4"),
    }
    for name, array in columns.items():
        if len(array) != n:
            raise ValueError(f"column {name!r} has {len(array)} rows, expected {n}")

    counts, mins, maxs = _zone_maps(
        columns["starts"], columns["src_codes"], len(hosts)
    )
    if int(counts.sum()) != n or (counts == 0).any():
        raise ValueError("every host in the string table must own >= 1 row")

    offsets: Dict[str, int] = {}
    cursor = len(_HEADER)
    for name, _ in COLUMN_DTYPES:
        offsets[name] = cursor
        cursor += columns[name].nbytes
    footer = {
        "format": "repro-segment",
        "version": FORMAT_VERSION,
        "rows": n,
        "t_min": float(columns["starts"].min()),
        "t_max": float(columns["starts"].max()),
        "columns": {
            name: {"dtype": dtype, "offset": offsets[name], "rows": n}
            for name, dtype in COLUMN_DTYPES
        },
        "hosts": list(hosts),
        "dsts": list(dsts),
        "host_rows": counts.tolist(),
        "host_t_min": mins.tolist(),
        "host_t_max": maxs.tolist(),
    }
    footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
    trailer = (
        _TRAILER_STRUCT.pack(zlib.crc32(footer_bytes), len(footer_bytes))
        + _TRAILER_MAGIC
    )

    faults.io_point("segment")
    with atomic_write(path, "wb") as handle:
        handle.write(_HEADER)
        for name, _ in COLUMN_DTYPES:
            handle.write(columns[name].tobytes())
        handle.write(footer_bytes)
        handle.write(trailer)
    file_bytes = cursor + len(footer_bytes) + _TRAILER_LEN
    return SegmentMeta(
        name=path.name,
        rows=n,
        t_min=footer["t_min"],
        t_max=footer["t_max"],
        n_hosts=len(hosts),
        file_bytes=file_bytes,
    )


def read_footer(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate a segment's footer (no column bytes touched).

    Raises
    ------
    TornSegmentError
        If the file is truncated anywhere, the trailer magic is gone,
        the CRC does not match, or the footer is not the expected JSON.
    StorageVersionError
        If the header or footer declares an unsupported version.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            header = fh.read(len(_HEADER))
            if size < len(_HEADER) + _TRAILER_LEN:
                raise TornSegmentError(
                    f"{path}: {size} bytes is too short to be a segment"
                )
            if header != _HEADER:
                if header[: len(_HEADER_PREFIX)] == _HEADER_PREFIX:
                    raise StorageVersionError(
                        f"{path}: segment format version "
                        f"{header[len(_HEADER_PREFIX)]} is not supported "
                        f"(this build reads version {FORMAT_VERSION})"
                    )
                raise TornSegmentError(
                    f"{path}: not a segment file (bad header {header!r})"
                )
            fh.seek(size - _TRAILER_LEN)
            trailer = fh.read(_TRAILER_LEN)
            if trailer[-len(_TRAILER_MAGIC):] != _TRAILER_MAGIC:
                raise TornSegmentError(
                    f"{path}: trailer magic missing — file is truncated "
                    "or not a complete segment"
                )
            crc, footer_len = _TRAILER_STRUCT.unpack(
                trailer[: _TRAILER_STRUCT.size]
            )
            footer_start = size - _TRAILER_LEN - footer_len
            if footer_start < len(_HEADER):
                raise TornSegmentError(
                    f"{path}: footer length {footer_len} exceeds the file"
                )
            fh.seek(footer_start)
            footer_bytes = fh.read(footer_len)
    except OSError as exc:
        raise StorageError(f"{path}: cannot read segment: {exc}") from exc
    if len(footer_bytes) != footer_len or zlib.crc32(footer_bytes) != crc:
        raise TornSegmentError(f"{path}: footer fails its CRC check")
    try:
        footer = json.loads(footer_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TornSegmentError(f"{path}: footer is not valid JSON") from exc
    if not isinstance(footer, dict) or footer.get("format") != "repro-segment":
        raise TornSegmentError(f"{path}: footer is not a segment footer")
    if footer.get("version") != FORMAT_VERSION:
        raise StorageVersionError(
            f"{path}: segment footer version {footer.get('version')!r} is "
            f"not supported (this build reads version {FORMAT_VERSION})"
        )
    expected = footer_start - len(_HEADER)
    declared = sum(
        int(np.dtype(spec["dtype"]).itemsize) * int(spec["rows"])
        for spec in footer["columns"].values()
    )
    if declared != expected:
        raise TornSegmentError(
            f"{path}: column region is {expected} bytes but the footer "
            f"declares {declared}"
        )
    return footer


class Segment:
    """One opened segment: validated footer plus lazily mmap'd columns.

    Column accessors return read-only :class:`numpy.memmap` views — the
    OS pages in only the bytes a kernel actually touches, and forked
    worker processes share the pages instead of copying them.
    """

    def __init__(self, path: Path, footer: Dict[str, object]) -> None:
        self.path = path
        self.footer = footer
        self.rows: int = int(footer["rows"])
        self.t_min: float = float(footer["t_min"])
        self.t_max: float = float(footer["t_max"])
        self.hosts: List[str] = list(footer["hosts"])
        self.dsts: List[str] = list(footer["dsts"])
        self.host_rows = np.asarray(footer["host_rows"], dtype=np.int64)
        self.host_t_min = np.asarray(footer["host_t_min"], dtype=np.float64)
        self.host_t_max = np.asarray(footer["host_t_max"], dtype=np.float64)
        self._host_index: Optional[Dict[str, int]] = None
        self._columns: Dict[str, np.ndarray] = {}

    @property
    def host_index(self) -> Dict[str, int]:
        """Host string → local code, built on first use."""
        if self._host_index is None:
            self._host_index = {h: i for i, h in enumerate(self.hosts)}
        return self._host_index

    def column(self, name: str) -> np.ndarray:
        """The named column as a read-only memory map."""
        cached = self._columns.get(name)
        if cached is None:
            spec = self.footer["columns"][name]
            cached = np.memmap(
                self.path,
                dtype=np.dtype(spec["dtype"]),
                mode="r",
                offset=int(spec["offset"]),
                shape=(int(spec["rows"]),),
            )
            self._columns[name] = cached
        return cached

    @property
    def starts(self) -> np.ndarray:
        return self.column("starts")

    @property
    def src_bytes(self) -> np.ndarray:
        return self.column("src_bytes")

    @property
    def success(self) -> np.ndarray:
        return self.column("success")

    @property
    def src_codes(self) -> np.ndarray:
        return self.column("src_codes")

    @property
    def dst_codes(self) -> np.ndarray:
        return self.column("dst_codes")

    def meta(self) -> SegmentMeta:
        """The catalog entry this segment would have in a manifest."""
        return SegmentMeta(
            name=self.path.name,
            rows=self.rows,
            t_min=self.t_min,
            t_max=self.t_max,
            n_hosts=len(self.hosts),
            file_bytes=self.path.stat().st_size,
        )


def open_segment(path: Union[str, Path]) -> Segment:
    """Open one segment file: validate the footer, defer the columns."""
    path = Path(path)
    return Segment(path, read_footer(path))
