"""A Waledac-style bot (Plotter) — the generalization challenge.

Waledac (cited in the paper's related work [16]) is an HTTP-over-P2P
relay botnet: bots keep a list of *relay* peers and poll them over TCP
port 80 with XML-ish request/response exchanges, refreshing their relay
list from the responses.  Behaviourally it stresses the detector in a
way Storm and Nugache do not:

* its flows are **web-sized** (kilobytes, not tens of bytes), so the
  volume test's margin shrinks;
* it talks to **port 80**, blending into the dominant campus protocol;
* its timers are longer and softer (poll every few minutes with real
  jitter), so the timing signature is weaker.

The reproduction uses it as an *unseen-family* evaluation: FindPlotters
was calibrated on Storm/Nugache shapes; the Waledac experiment measures
how much of the detection power is family-specific.
"""

from __future__ import annotations

import random
from typing import List

from ..flows.record import FlowState, Protocol
from ..p2p.churn import ChurnModel, OnlineSchedule
from . import payloads
from .base import Agent

__all__ = ["WaledacWorld", "WaledacPlotterAgent", "WALEDAC_RELAY_CHURN"]

#: Waledac speaks HTTP: everything rides destination port 80.
WALEDAC_PORT = 80

#: Relay-node churn: relays are stable infected hosts with good uptime,
#: but a share of list entries is stale at any time.
WALEDAC_RELAY_CHURN = ChurnModel(
    median_session=4 * 3600.0,
    session_sigma=0.8,
    mean_offline=90 * 60.0,
    fraction_dead=0.30,
    fraction_single_session=0.05,
)


class WaledacRelay:
    """One external relay node."""

    __slots__ = ("address", "schedule")

    def __init__(self, address: str, schedule: OnlineSchedule) -> None:
        self.address = address
        self.schedule = schedule

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


class WaledacWorld:
    """The external relay population."""

    def __init__(
        self,
        rng: random.Random,
        address_factory,
        horizon: float,
        size: int = 300,
        churn: ChurnModel = WALEDAC_RELAY_CHURN,
    ) -> None:
        if size <= 0:
            raise ValueError("the relay population must be non-empty")
        self.relays: List[WaledacRelay] = [
            WaledacRelay(
                address=address_factory(rng),
                schedule=churn.sample_schedule(rng, horizon),
            )
            for _ in range(size)
        ]

    def sample_relay_list(self, rng: random.Random, count: int) -> List[WaledacRelay]:
        """The relay list seeded into one bot binary."""
        return rng.sample(self.relays, min(count, len(self.relays)))


class WaledacPlotterAgent(Agent):
    """One Waledac-infected host.

    The bot polls a relay from its list on a softly-jittered timer
    (compiled default plus up to ±25% noise), occasionally refreshing
    its relay list from poll responses (a few new addresses at a time —
    modest churn, but more than Storm's).
    """

    kind = "plotter-waledac"

    def __init__(
        self,
        address: str,
        world: WaledacWorld,
        poll_interval: float = 150.0,
        relay_list_size: int = 25,
        refresh_rate: float = 0.06,
    ) -> None:
        super().__init__(address)
        if poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.world = world
        self.poll_interval = poll_interval
        self.relay_list_size = relay_list_size
        self.refresh_rate = refresh_rate
        self._relays: List[WaledacRelay] = []

    def on_start(self) -> None:
        rng = self.rng
        self._relays = self.world.sample_relay_list(rng, self.relay_list_size)
        self.after(rng.uniform(0, 30), self._poll)

    def _poll(self, now: float) -> None:
        rng = self.rng
        relay = rng.choice(self._relays)
        online = relay.is_online(now)
        # XML-encoded command poll: a kilobyte-scale POST both ways.
        self.sim.emit_connection(
            src=self.address,
            dst=relay.address,
            dport=WALEDAC_PORT,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
            duration=rng.uniform(0.5, 5.0) if online else 3.0,
            src_bytes=rng.randint(1500, 5000) if online else 160,
            dst_bytes=rng.randint(2000, 9000) if online else 0,
            payload=payloads.http_get(rng),
        )
        if online and rng.random() < self.refresh_rate:
            # The response advertised fresh relays.
            fresh = self.world.sample_relay_list(rng, 2)
            for relay_new in fresh:
                if relay_new not in self._relays:
                    self._relays.append(relay_new)
            while len(self._relays) > self.relay_list_size * 2:
                self._relays.pop(0)
        self.after(self.jittered(self.poll_interval, 0.25), self._poll)
