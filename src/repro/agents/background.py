"""Background (non-P2P) campus traffic.

These agents populate the CMU-like dataset with the ordinary traffic the
detector must not flag: human-driven web browsing with DNS lookups, mail
polling, SSH sessions, and the machine-driven but benign periodic
services every OS runs (NTP, update checks).  Per-host diversity —
intensity, favourite sites, failure proneness — is drawn from a shared
:class:`BackgroundWorld` so destination sets overlap across hosts the
way campus traffic does.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from ..flows.record import FlowState, Protocol
from ..netsim.addressing import AddressSpace
from . import payloads
from .base import Agent

__all__ = ["BackgroundWorld", "BackgroundHostAgent"]


@dataclass
class BackgroundWorld:
    """Shared external infrastructure: web servers, resolvers, NTP, mail.

    One instance is shared by all background agents of a simulated day so
    popular destinations are genuinely popular.
    """

    web_servers: List[str]
    dns_resolvers: List[str]
    ntp_servers: List[str]
    mail_servers: List[str]
    ssh_servers: List[str]
    dead_hosts: List[str]

    @classmethod
    def build(
        cls,
        rng: random.Random,
        space: AddressSpace,
        n_web: int = 400,
        n_dead: int = 60,
    ) -> "BackgroundWorld":
        """Synthesise the external world once per simulation."""
        return cls(
            web_servers=space.random_externals(rng, n_web),
            dns_resolvers=space.random_externals(rng, 3),
            ntp_servers=space.random_externals(rng, 4),
            mail_servers=space.random_externals(rng, 5),
            ssh_servers=space.random_externals(rng, 12),
            dead_hosts=space.random_externals(rng, n_dead),
        )


class BackgroundHostAgent(Agent):
    """One ordinary campus host.

    Parameters
    ----------
    address:
        The host's internal IP.
    world:
        Shared external infrastructure.
    intensity:
        Multiplier on browsing activity (1.0 = typical office user).
    failure_rate:
        Base probability that any single connection attempt fails.  Most
        hosts are low (a few percent); a configurable minority is
        failure-prone (stale bookmarks, misconfigured services), which is
        what pushes the campus-wide failed-connection median up to the
        ~25% regime of Figure 5.
    runs_ntp, checks_mail:
        Whether the host runs the periodic background services.
    noise_profile:
        How a failure-prone host fails.  ``"explorer"`` hosts contact a
        stream of *fresh* dead addresses (stale bookmark lists, P2P
        leftovers, software phoning dead mirrors) — high failure *and*
        high churn.  ``"stale"`` hosts keep retrying the same few dead
        destinations — high failure, low churn, the harder case for the
        detector.  Real campus populations are dominated by the former.
    """

    kind = "background"

    def __init__(
        self,
        address: str,
        world: BackgroundWorld,
        intensity: float = 1.0,
        failure_rate: float = 0.04,
        runs_ntp: bool = True,
        checks_mail: bool = True,
        noise_profile: str = "explorer",
    ) -> None:
        super().__init__(address)
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must lie in [0, 1)")
        if noise_profile not in ("explorer", "stale"):
            raise ValueError(f"unknown noise profile {noise_profile!r}")
        self.world = world
        self.intensity = intensity
        self.failure_rate = failure_rate
        self.runs_ntp = runs_ntp
        self.checks_mail = checks_mail
        self.noise_profile = noise_profile
        self._favorites: List[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        rng = self.rng
        n_fav = rng.randint(5, 25)
        self._favorites = rng.sample(
            self.world.web_servers, min(n_fav, len(self.world.web_servers))
        )
        # Per-host service cadences: clients and OSes are configured
        # differently host to host, which keeps benign machine-driven
        # traffic from clustering tightly across hosts in θ_hm.
        self._ntp_period = rng.choice((64.0, 128.0, 256.0, 512.0, 1024.0))
        self._mail_period = rng.uniform(120.0, 1200.0)
        # Per-host tempo: how fast this user/machine cycles through
        # requests and retries.  Log-uniform across an order of
        # magnitude, so no two hosts share a timing fingerprint.
        self._tempo = math.exp(rng.uniform(math.log(0.2), math.log(5.0)))
        self._retry_mean = math.exp(rng.uniform(math.log(240.0), math.log(2400.0)))
        self._retry_gap = rng.uniform(2.0, 45.0)
        # Per-host mixture over gap components (pipelined sub-second
        # fetches, human click pacing, slow revisits).  Squaring the
        # raw draws spreads the weights, so hosts differ in the *shape*
        # of their timing distribution, not just its scale — which is
        # what keeps benign hosts from clustering together in θ_hm.
        raw_mix = [rng.random() ** 2 for _ in range(3)]
        total = sum(raw_mix)
        self._mix = [w / total for w in raw_mix]
        # Component *locations* are themselves per-host draws (burst,
        # click, revisit scales), so two hosts almost never share a
        # timing fingerprint even when their mixture weights align.
        self._gap_scales = (
            math.exp(rng.uniform(math.log(0.1), math.log(5.0))),
            math.exp(rng.uniform(math.log(5.0), math.log(120.0))),
            math.exp(rng.uniform(math.log(120.0), math.log(3600.0))),
        )
        self._gap_sigmas = tuple(rng.uniform(0.3, 1.0) for _ in range(3))
        # First browsing session begins after a random idle period.
        self.after(rng.expovariate(1.0 / (900.0 / self.intensity)), self._begin_session)
        if self.runs_ntp:
            self.after(rng.uniform(0, 1024), self._ntp_tick)
        if self.checks_mail:
            self.after(rng.uniform(0, 600), self._mail_tick)
        if rng.random() < 0.15:
            self.after(rng.uniform(60, 3600), self._ssh_session)
        if self.failure_rate > 0.15:
            # Failure-prone hosts keep retrying a dead destination.
            self.after(rng.uniform(10, 300), self._retry_dead)

    def _gap(self) -> float:
        """One inter-request gap drawn from the host's timing mixture."""
        rng = self.rng
        point = rng.random()
        component = 2 if point > self._mix[0] + self._mix[1] else (
            1 if point > self._mix[0] else 0
        )
        return rng.lognormvariate(
            math.log(self._gap_scales[component]), self._gap_sigmas[component]
        )

    # ------------------------------------------------------------------
    # Web browsing (human-driven)
    # ------------------------------------------------------------------
    def _pick_site(self) -> str:
        rng = self.rng
        if rng.random() < 0.7 and self._favorites:
            # Zipf-ish preference for the first favourites.
            index = min(
                int(rng.paretovariate(1.2)) - 1, len(self._favorites) - 1
            )
            return self._favorites[index]
        return rng.choice(self.world.web_servers)

    def _connection_state(self, extra_failure: float = 0.0) -> FlowState:
        rng = self.rng
        if rng.random() < self.failure_rate + extra_failure:
            return FlowState.TIMEOUT if rng.random() < 0.7 else FlowState.REJECTED
        return FlowState.ESTABLISHED

    def _begin_session(self, now: float) -> None:
        rng = self.rng
        n_pages = max(1, int(rng.lognormvariate(1.6, 0.8)))
        self._browse_page(now, remaining=n_pages)
        # Next session after a long human pause.
        self.after(
            rng.expovariate(1.0 / (2400.0 / self.intensity)), self._begin_session
        )

    def _browse_page(self, now: float, remaining: int) -> None:
        rng = self.rng
        site = self._pick_site()
        self._dns_lookup(site)
        n_requests = rng.randint(1, 6)
        offset = 0.0
        for _ in range(n_requests):
            state = self._connection_state()
            down = int(rng.lognormvariate(9.5, 1.4))  # median ~13 kB
            self.sim.emit_connection(
                src=self.address,
                dst=site,
                dport=80 if rng.random() < 0.7 else 443,
                proto=Protocol.TCP,
                state=state,
                duration=rng.uniform(0.2, 8.0),
                src_bytes=rng.randint(250, 1400),
                dst_bytes=down,
                payload=payloads.http_get(rng),
                start=now + offset,
            )
            offset += self._gap()
        if remaining > 1:
            think = self._gap() + rng.paretovariate(1.5) * 4.0
            self.after(offset + min(think, 1800.0), lambda t: self._browse_page(t, remaining - 1))

    def _dns_lookup(self, _site: str) -> None:
        rng = self.rng
        resolver = rng.choice(self.world.dns_resolvers)
        self.sim.emit_connection(
            src=self.address,
            dst=resolver,
            dport=53,
            proto=Protocol.UDP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.005, 0.3),
            src_bytes=rng.randint(40, 80),
            dst_bytes=rng.randint(80, 400),
            payload=payloads.dns_query(rng),
        )

    # ------------------------------------------------------------------
    # Machine-driven but benign services
    # ------------------------------------------------------------------
    def _ntp_tick(self, now: float) -> None:
        rng = self.rng
        server = rng.choice(self.world.ntp_servers)
        self.sim.emit_connection(
            src=self.address,
            dst=server,
            dport=123,
            proto=Protocol.UDP,
            state=self._connection_state(),
            duration=rng.uniform(0.01, 0.2),
            src_bytes=48,
            dst_bytes=48,
        )
        self.after(self.jittered(self._ntp_period, 0.05), self._ntp_tick)

    def _mail_tick(self, now: float) -> None:
        rng = self.rng
        server = rng.choice(self.world.mail_servers[:2])
        self.sim.emit_connection(
            src=self.address,
            dst=server,
            dport=993,
            proto=Protocol.TCP,
            state=self._connection_state(),
            duration=rng.uniform(0.5, 5.0),
            src_bytes=rng.randint(300, 900),
            dst_bytes=rng.randint(500, 40_000),
            payload=payloads.smtp_banner_reply(rng),
        )
        self.after(self.jittered(self._mail_period, 0.4), self._mail_tick)

    def _ssh_session(self, now: float) -> None:
        rng = self.rng
        server = rng.choice(self.world.ssh_servers)
        self.sim.emit_connection(
            src=self.address,
            dst=server,
            dport=22,
            proto=Protocol.TCP,
            state=self._connection_state(),
            duration=rng.uniform(30, 3000),
            src_bytes=int(rng.lognormvariate(8.5, 1.0)),
            dst_bytes=int(rng.lognormvariate(9.5, 1.0)),
            payload=payloads.ssh_banner(rng),
        )
        if rng.random() < 0.4:
            self.after(rng.uniform(600, 7200), self._ssh_session)

    def _retry_dead(self, now: float) -> None:
        rng = self.rng
        if self.noise_profile == "explorer":
            # A fresh dead address every time: stale distributed peer
            # lists and dead mirrors produce failures at ever-new IPs.
            target = self.sim.addresses.random_external(rng)
        else:
            target = rng.choice(self.world.dead_hosts)
        for i in range(rng.randint(1, 3)):
            self.sim.emit_connection(
                src=self.address,
                dst=target,
                dport=rng.choice((80, 443, 8080, 445)),
                proto=Protocol.TCP,
                state=FlowState.TIMEOUT,
                duration=3.0,
                src_bytes=120,
                dst_bytes=0,
                start=self.sim.now + i * rng.uniform(0.5, 1.0) * self._retry_gap,
            )
        self.after(rng.expovariate(1.0 / self._retry_mean), self._retry_dead)
