"""A Nugache bot (Plotter) over its custom encrypted TCP P2P protocol.

Nugache, per the Stover et al. analysis the paper cites [13], maintained
an in-binary peer list, spoke an encrypted protocol over TCP, and ran on
characteristic short timers — the paper observes communication at
intervals around 10, 25 and 50 seconds (Figure 3(b)).  Two properties
from the paper's trace drive the evaluation story and are modelled
explicitly:

* **very high failure rates** — most peer-discovery attempts found the
  remote peer "not active or not responding", putting nearly all
  Nugache bots above 65% failed connections (Figure 5);
* **low and highly variable activity** — per-bot flow counts span
  orders of magnitude (Figure 10), which is what lets quiet bots hide
  under the traffic of the host they share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..flows.record import FlowState, Protocol
from ..p2p.churn import ChurnModel, OnlineSchedule
from . import payloads
from .base import Agent

__all__ = ["NugacheWorld", "NugachePlotterAgent"]

#: Nugache famously listened on TCP port 8.
NUGACHE_PORT = 8

#: The timer bank observed in the paper's Figure 3(b).
NUGACHE_INTERVALS = (10.0, 25.0, 50.0)

#: Churn among the Nugache peer population: mostly dead or dark
#: addresses, which is what drives the >65% failure rates of Figure 5.
NUGACHE_PEER_CHURN = ChurnModel(
    median_session=2 * 3600.0,
    session_sigma=1.0,
    mean_offline=3 * 3600.0,
    fraction_dead=0.60,
    fraction_single_session=0.10,
)


@dataclass(frozen=True)
class NugachePeer:
    """One external Nugache peer known to some bot's peer list."""

    address: str
    port: int
    schedule: OnlineSchedule

    def is_online(self, t: float) -> bool:
        return self.schedule.is_online(t)


class NugacheWorld:
    """The external Nugache botnet population."""

    def __init__(
        self,
        rng: random.Random,
        address_factory,
        horizon: float,
        size: int = 400,
        churn: ChurnModel = NUGACHE_PEER_CHURN,
    ) -> None:
        if size <= 0:
            raise ValueError("the peer population must be non-empty")
        self.peers: List[NugachePeer] = [
            NugachePeer(
                address=address_factory(rng),
                port=NUGACHE_PORT if rng.random() < 0.7 else rng.randint(1024, 65000),
                schedule=churn.sample_schedule(rng, horizon),
            )
            for _ in range(size)
        ]

    def sample_peer_list(self, rng: random.Random, count: int) -> List[NugachePeer]:
        """The peer list seeded into one bot binary."""
        return rng.sample(self.peers, min(count, len(self.peers)))


class NugachePlotterAgent(Agent):
    """One Nugache-infected host.

    The bot alternates *active bursts* and *dormancy*.  During a burst
    it pings a small, persistent neighbour set on the binary's 10/25/50 s
    timer bank — so per-destination interstitial times concentrate on the
    same timer values for every bot, which is the Figure 3(b) signature —
    and occasionally probes peer-list entries for maintenance/discovery
    (mostly failures, given the moribund peer population).

    Parameters
    ----------
    activity:
        The duty cycle: the fraction of the window the bot spends in
        active bursts.  A bot with ``activity=0.01`` emits a handful of
        flows per day while one with ``activity=1.0`` emits thousands —
        reproducing the heavy per-bot spread of the paper's trace
        (Figure 10) without changing the *shape* of the timing
        distribution.
    """

    kind = "plotter-nugache"

    #: Mean active-burst length in seconds.
    BURST_MEAN = 600.0

    def __init__(
        self,
        address: str,
        world: NugacheWorld,
        activity: float = 0.5,
        peer_list_size: int = 40,
        n_neighbors: int = 4,
        discovery_rate: float = 0.10,
    ) -> None:
        super().__init__(address)
        if not 0.0 < activity <= 1.0:
            raise ValueError("activity must lie in (0, 1]")
        self.world = world
        self.activity = activity
        self.peer_list_size = peer_list_size
        self.n_neighbors = n_neighbors
        self.discovery_rate = discovery_rate
        self._peer_list: List[NugachePeer] = []
        self._neighbors: List[NugachePeer] = []

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        rng = self.rng
        self._peer_list = self.world.sample_peer_list(rng, self.peer_list_size)
        self._neighbors = self._peer_list[: self.n_neighbors]
        self.after(rng.uniform(0, 20), self._tick)
        # Other bots holding our address on their peer lists call in,
        # scaled by how visible (active) this bot is.
        self.after(rng.expovariate(self.activity / 300.0), self._inbound_ping)

    def _inbound_ping(self, now: float) -> None:
        rng = self.rng
        peer = rng.choice(self.world.peers)
        self.sim.emit_connection(
            src=peer.address,
            dst=self.address,
            dport=NUGACHE_PORT,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.5, 10.0),
            src_bytes=rng.randint(300, 900),
            dst_bytes=rng.randint(300, 900),
            payload=payloads.opaque(rng),
        )
        self.after(rng.expovariate(self.activity / 300.0), self._inbound_ping)

    def _dormant_gap(self) -> float:
        """Mean dormancy between bursts, set by the duty cycle."""
        if self.activity >= 1.0:
            return 0.0
        return self.BURST_MEAN * (1.0 - self.activity) / self.activity

    def _tick(self, now: float) -> None:
        rng = self.rng
        # Ping the persistent neighbour set (the Figure 3(b) timers).
        for i, peer in enumerate(list(self._neighbors)):
            online = peer.is_online(now)
            self._emit(peer, now + i * rng.uniform(0.05, 0.4), online)
            # Replacement is rare: the bot cannot tell a dead peer from a
            # transiently offline one, so it keeps re-trying for a long
            # time — the source of Nugache's >65% failure rates (Fig. 5).
            if not online and rng.random() < 0.01:
                # Replace a dead neighbour from the stored peer list,
                # avoiding peers already in the neighbour set.
                replacements = [
                    p for p in self._peer_list if p not in self._neighbors
                ]
                if replacements:
                    self._neighbors.remove(peer)
                    self._neighbors.append(rng.choice(replacements))
        # Occasional peer-list maintenance / discovery probe.
        if rng.random() < self.discovery_rate:
            if rng.random() < 0.3:
                probe = rng.choice(self.world.peers)
                if len(self._peer_list) < self.peer_list_size * 2:
                    self._peer_list.append(probe)
            else:
                probe = rng.choice(self._peer_list)
            self._emit(probe, now + rng.uniform(0.5, 3.0), probe.is_online(now))

        # The binary's timer bank: pick one of the compiled-in intervals.
        interval = self.jittered(rng.choice(NUGACHE_INTERVALS), 0.03)
        # End the burst with probability interval/burst_mean, then sleep.
        if rng.random() < interval / self.BURST_MEAN:
            interval += rng.expovariate(1.0 / max(self._dormant_gap(), 1e-9)) if self.activity < 1.0 else 0.0
        self.after(interval, self._tick)

    def _emit(self, peer: NugachePeer, when: float, online: bool) -> None:
        rng = self.rng
        self.sim.emit_connection(
            src=self.address,
            dst=peer.address,
            dport=peer.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
            duration=rng.uniform(0.5, 20.0) if online else 3.0,
            src_bytes=rng.randint(400, 1300) if online else 170,
            dst_bytes=rng.randint(250, 1200) if online else 0,
            payload=payloads.opaque(rng),
            start=when,
        )
