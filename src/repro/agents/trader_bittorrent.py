"""A BitTorrent file-sharing host (Trader).

The agent models what the detector sees from a leecher/seeder at the
border: tracker announces and scrapes over HTTP, mainline-DHT UDP
chatter, and many peer-wire connections — some failing on stale swarm
entries, the successful ones carrying multi-hundred-kilobyte piece
exchanges in *both* directions (tit-for-tat reciprocation rides the same
TCP connection the leecher initiated).
"""

from __future__ import annotations

from typing import List, Optional

from ..flows.record import FlowState, Protocol
from ..p2p.bittorrent import BitTorrentOverlay, Swarm, SwarmPeer
from ..p2p.pieces import PieceMap, PieceScheduler
from . import payloads
from .base import Agent

__all__ = ["BitTorrentTraderAgent"]


class BitTorrentTraderAgent(Agent):
    """One internal host running a BitTorrent client.

    Parameters
    ----------
    address:
        Internal IP of the host.
    overlay:
        The shared synthetic torrent/swarm world.
    torrents_per_day:
        Expected number of torrents the user starts in the window.
    reciprocation:
        Mean ratio of uploaded to downloaded bytes on piece-exchange
        connections (tit-for-tat); values near 1 make the host a strong
        uploader, the regime Figure 1 shows for Traders.
    """

    kind = "trader-bittorrent"

    def __init__(
        self,
        address: str,
        overlay: BitTorrentOverlay,
        torrents_per_day: float = 2.0,
        reciprocation: float = 0.6,
        max_peers_per_torrent: int = 35,
    ) -> None:
        super().__init__(address)
        if torrents_per_day <= 0:
            raise ValueError("torrents_per_day must be positive")
        self.overlay = overlay
        self.torrents_per_day = torrents_per_day
        self.reciprocation = reciprocation
        self.max_peers_per_torrent = max_peers_per_torrent

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        rng = self.rng
        # The user starts torrents at human-chosen times through the day.
        n_torrents = max(1, int(rng.gauss(self.torrents_per_day, 0.8)))
        horizon = min(self.sim.horizon, 6 * 3600.0)
        for _ in range(n_torrents):
            self.after(rng.uniform(0, horizon * 0.8), self._start_torrent)
        if rng.random() < 0.6:
            self.after(rng.uniform(0, 600), self._dht_tick)
        # Remote leechers that learned our address from the tracker
        # connect *in* — the border sees inbound peer-wire flows too.
        self.after(rng.expovariate(1.0 / 400.0), self._inbound_peer)

    def _inbound_peer(self, now: float) -> None:
        rng = self.rng
        swarm = self.overlay.pick_swarm(rng)
        peer = swarm.announce(rng, count=1)[0]
        down = int(rng.lognormvariate(16.0, 1.2))
        self.sim.emit_connection(
            src=peer.address,
            dst=self.address,
            dport=rng.randint(*(6881, 6889)),
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=max(5.0, down / max(peer.upload_rate, 2048.0)),
            src_bytes=68 + int(down * rng.uniform(0.1, 0.8)),
            dst_bytes=68 + down,
            payload=payloads.bittorrent_handshake(rng, swarm.torrent.infohash),
        )
        self.after(rng.expovariate(1.0 / 400.0), self._inbound_peer)

    # ------------------------------------------------------------------
    # Torrent lifecycle
    # ------------------------------------------------------------------
    def _start_torrent(self, now: float) -> None:
        rng = self.rng
        swarm = self.overlay.pick_swarm(rng)
        self._scrape(swarm)
        peers = self._announce(swarm)
        budget = min(
            swarm.torrent.total_bytes, int(rng.lognormvariate(18.6, 1.0))
        )
        # Piece bookkeeping for this download: what we hold, and what
        # each contacted peer can therefore serve us.
        scheduler = PieceScheduler(own=PieceMap(swarm.torrent.n_pieces))
        self._connect_wave(swarm, peers, budget, scheduler=scheduler)
        # Periodic re-announce while the torrent is active.
        self.after(
            self.jittered(1800.0, 0.2),
            lambda t: self._reannounce(swarm, budget, scheduler),
        )

    def _scrape(self, swarm: Swarm) -> None:
        rng = self.rng
        req, resp = swarm.tracker.scrape_size()
        self.sim.emit_connection(
            src=self.address,
            dst=swarm.tracker.address,
            dport=swarm.tracker.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.1, 1.5),
            src_bytes=req,
            dst_bytes=resp,
            payload=payloads.tracker_scrape_request(rng, swarm.torrent.infohash),
        )

    def _announce(self, swarm: Swarm) -> List[SwarmPeer]:
        rng = self.rng
        peers = swarm.announce(rng, count=50)
        req, resp = swarm.tracker.announce_size(len(peers))
        self.sim.emit_connection(
            src=self.address,
            dst=swarm.tracker.address,
            dport=swarm.tracker.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.1, 2.0),
            src_bytes=req,
            dst_bytes=resp,
            payload=payloads.tracker_announce_request(rng, swarm.torrent.infohash),
        )
        return peers

    def _reannounce(self, swarm: Swarm, budget: int, scheduler: PieceScheduler) -> None:
        rng = self.rng
        if scheduler.own.is_complete:
            return  # download finished; the client stops hunting peers
        peers = self._announce(swarm)
        self._connect_wave(swarm, peers, budget // 3, scheduler=scheduler)

    def _peer_bitfield(self, swarm: Swarm, peer: SwarmPeer) -> PieceMap:
        """The piece map a remote peer advertises in its handshake."""
        if peer.is_seed:
            return PieceMap.complete(swarm.torrent.n_pieces)
        # A fellow leecher partway through; its progress is stable per
        # (torrent, address) because the RNG below is derived from them
        # (crc32, not hash(): str hashing is salted per process).
        import random as _random
        import zlib as _zlib

        progress_seed = _zlib.crc32(
            peer.address.encode() + swarm.torrent.infohash
        )
        progress_rng = _random.Random(progress_seed)
        return PieceMap.random_fraction(
            swarm.torrent.n_pieces,
            progress_rng.uniform(0.1, 0.95),
            progress_rng,
        )

    def _connect_wave(
        self,
        swarm: Swarm,
        peers: List[SwarmPeer],
        budget: int,
        scheduler: PieceScheduler,
    ) -> None:
        """Open peer-wire connections to a batch of announced peers."""
        rng = self.rng
        rng.shuffle(peers)
        batch = peers[: self.max_peers_per_torrent]
        visible = [self._peer_bitfield(swarm, p) for p in batch]
        remaining = budget
        offset = 0.0
        piece_length = swarm.torrent.piece_length
        for peer, bitfield in zip(batch, visible):
            offset += rng.uniform(0.2, 12.0)
            when = self.sim.now + offset
            if not peer.is_online(when):
                self.sim.emit_connection(
                    src=self.address,
                    dst=peer.address,
                    dport=peer.port,
                    proto=Protocol.TCP,
                    state=FlowState.TIMEOUT if rng.random() < 0.8 else FlowState.REJECTED,
                    duration=3.0,
                    src_bytes=130,
                    dst_bytes=0,
                    start=when,
                )
                continue
            if remaining <= 0 or scheduler.own.is_complete:
                break
            # Rarest-first: request what this peer can serve, bounded by
            # the session's byte budget.
            max_pieces = max(1, int(rng.lognormvariate(17.2, 1.1)) // piece_length)
            requests = scheduler.plan_requests(
                bitfield, visible, batch=max_pieces, rng=rng
            )
            if not requests:
                continue  # nothing useful on this peer
            scheduler.record_received(requests)
            down = min(remaining, len(requests) * piece_length)
            remaining -= down
            up = int(down * rng.uniform(0.2, 2.0) * self.reciprocation)
            rate = max(peer.upload_rate, 1024.0)
            duration = max(5.0, down / rate)
            self.sim.emit_connection(
                src=self.address,
                dst=peer.address,
                dport=peer.port,
                proto=Protocol.TCP,
                state=FlowState.ESTABLISHED,
                duration=duration,
                src_bytes=68 + up,
                dst_bytes=68 + down,
                payload=payloads.bittorrent_handshake(rng, swarm.torrent.infohash),
                start=when,
            )

    # ------------------------------------------------------------------
    # Mainline DHT
    # ------------------------------------------------------------------
    def _dht_tick(self, now: float) -> None:
        rng = self.rng
        swarm = self.overlay.pick_swarm(rng)
        targets = swarm.announce(rng, count=rng.randint(3, 8))
        offset = 0.0
        for peer in targets:
            offset += rng.uniform(0.05, 1.5)
            when = now + offset
            online = peer.is_online(when)
            self.sim.emit_connection(
                src=self.address,
                dst=peer.address,
                dport=peer.port,
                proto=Protocol.UDP,
                state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
                duration=rng.uniform(0.05, 1.0),
                src_bytes=rng.randint(90, 300),
                dst_bytes=rng.randint(200, 600) if online else 0,
                payload=payloads.dht_query(rng),
                start=when,
            )
        self.after(rng.expovariate(1.0 / 300.0), self._dht_tick)
