"""Traffic agents: background hosts, Traders, and Plotters."""

from .base import Agent
from .background import BackgroundHostAgent, BackgroundWorld
from .trader_bittorrent import BitTorrentTraderAgent
from .trader_gnutella import GnutellaTraderAgent
from .trader_emule import EmuleTraderAgent
from .plotter_storm import StormPlotterAgent, StormTimers
from .plotter_nugache import NugachePlotterAgent, NugacheWorld
from .plotter_waledac import WaledacPlotterAgent, WaledacWorld

__all__ = [
    "Agent",
    "BackgroundHostAgent",
    "BackgroundWorld",
    "BitTorrentTraderAgent",
    "GnutellaTraderAgent",
    "EmuleTraderAgent",
    "StormPlotterAgent",
    "StormTimers",
    "NugachePlotterAgent",
    "NugacheWorld",
    "WaledacPlotterAgent",
    "WaledacWorld",
]
