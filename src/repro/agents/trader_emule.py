"""An eMule/eD2k file-sharing host (Trader).

Flow-level behaviour of an eMule client: a long-lived login to one eD2k
index server, UDP Kad maintenance, human-driven searches, and source
connections dominated by the upload-queue dance — busy sources put the
downloader in a queue and get re-asked every 20–30 minutes, while
sources that have churned away simply time out.  Established transfers
carry part-file data both ways (eMule swarms parts like BitTorrent).
"""

from __future__ import annotations

from typing import Dict, List

from ..flows.record import FlowState, Protocol
from ..p2p.emule import EmuleOverlay, EmuleSource, KAD_PORT
from . import payloads
from .base import Agent

__all__ = ["EmuleTraderAgent"]


class EmuleTraderAgent(Agent):
    """One internal host running an eMule client."""

    kind = "trader-emule"

    def __init__(
        self,
        address: str,
        overlay: EmuleOverlay,
        searches_per_hour: float = 3.0,
        uses_kad: bool = True,
    ) -> None:
        super().__init__(address)
        self.overlay = overlay
        self.searches_per_hour = searches_per_hour
        self.uses_kad = uses_kad
        self._server = None
        self._queued: Dict[str, EmuleSource] = {}

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        rng = self.rng
        self._server = self.overlay.pick_server(rng)
        self.after(rng.uniform(0, 60), self._login)
        self.after(rng.expovariate(self.searches_per_hour / 3600.0), self._search)
        if self.uses_kad:
            self.after(rng.uniform(0, 300), self._kad_tick)

    # ------------------------------------------------------------------
    # Server interaction
    # ------------------------------------------------------------------
    def _login(self, now: float) -> None:
        rng = self.rng
        req, resp = self._server.login_size()
        self.sim.emit_connection(
            src=self.address,
            dst=self._server.address,
            dport=self._server.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(1.0, 5.0),
            src_bytes=req,
            dst_bytes=resp,
            payload=payloads.emule_tcp(rng),
        )

    def _search(self, now: float) -> None:
        rng = self.rng
        sources = self.overlay.search_sources(rng)
        req, resp = self._server.search_size(len(sources))
        self.sim.emit_connection(
            src=self.address,
            dst=self._server.address,
            dport=self._server.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.5, 4.0),
            src_bytes=req,
            dst_bytes=resp,
            payload=payloads.emule_tcp(rng),
        )
        offset = rng.uniform(3.0, 25.0)  # the human reads the result list
        for source in sources:
            self.after(offset, lambda t, s=source: self._contact_source(t, s))
            offset += rng.uniform(0.5, 8.0)
        self.after(rng.expovariate(self.searches_per_hour / 3600.0), self._search)

    # ------------------------------------------------------------------
    # Source handling: timeouts, queues, transfers
    # ------------------------------------------------------------------
    def _contact_source(self, now: float, source: EmuleSource) -> None:
        rng = self.rng
        if not source.is_online(now):
            self.sim.emit_connection(
                src=self.address,
                dst=source.address,
                dport=source.port,
                proto=Protocol.TCP,
                state=FlowState.TIMEOUT,
                duration=3.0,
                src_bytes=140,
                dst_bytes=0,
                payload=b"",
            )
            return
        if source.queue_length > 0 and source.address not in self._queued:
            # Placed in the upload queue: small exchange now, re-ask later.
            req, resp = self.overlay.queue_poll_size()
            self.sim.emit_connection(
                src=self.address,
                dst=source.address,
                dport=source.port,
                proto=Protocol.TCP,
                state=FlowState.ESTABLISHED,
                duration=rng.uniform(0.5, 3.0),
                src_bytes=req + rng.randint(0, 60),
                dst_bytes=resp,
                payload=payloads.emule_tcp(rng),
            )
            self._queued[source.address] = source
            self.after(
                self.jittered(1500.0, 0.3),
                lambda t, s=source: self._queue_poll(t, s, remaining=s.queue_length),
            )
            return
        self._transfer(now, source)

    def _queue_poll(self, now: float, source: EmuleSource, remaining: int) -> None:
        rng = self.rng
        if not source.is_online(now):
            self.sim.emit_connection(
                src=self.address,
                dst=source.address,
                dport=source.port,
                proto=Protocol.TCP,
                state=FlowState.TIMEOUT,
                duration=3.0,
                src_bytes=140,
                dst_bytes=0,
            )
            self._queued.pop(source.address, None)
            return
        req, resp = self.overlay.queue_poll_size()
        self.sim.emit_connection(
            src=self.address,
            dst=source.address,
            dport=source.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.3, 2.0),
            src_bytes=req,
            dst_bytes=resp,
            payload=payloads.emule_tcp(rng),
        )
        if remaining <= 1:
            self._queued.pop(source.address, None)
            self._transfer(now, source)
        else:
            self.after(
                self.jittered(1500.0, 0.3),
                lambda t, s=source: self._queue_poll(t, s, remaining - 1),
            )

    def _transfer(self, now: float, source: EmuleSource) -> None:
        rng = self.rng
        down = min(source.file_bytes, int(rng.lognormvariate(16.5, 1.0)))
        up = int(down * rng.uniform(0.1, 1.2))  # part exchange both ways
        duration = max(3.0, down / max(source.upload_rate, 1024.0))
        self.sim.emit_connection(
            src=self.address,
            dst=source.address,
            dport=source.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=duration,
            src_bytes=up + 200,
            dst_bytes=down + 200,
            payload=payloads.emule_tcp(rng),
        )

    # ------------------------------------------------------------------
    # Kad maintenance (UDP)
    # ------------------------------------------------------------------
    def _kad_tick(self, now: float) -> None:
        rng = self.rng
        contacts = rng.sample(self.overlay.sources, min(4, len(self.overlay.sources)))
        req, resp = self.overlay.kad_message_size()
        offset = 0.0
        for contact in contacts:
            offset += rng.uniform(0.05, 1.0)
            when = now + offset
            online = contact.is_online(when)
            self.sim.emit_connection(
                src=self.address,
                dst=contact.address,
                dport=KAD_PORT,
                proto=Protocol.UDP,
                state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
                duration=rng.uniform(0.02, 0.5),
                src_bytes=req + rng.randint(0, 20),
                dst_bytes=resp if online else 0,
                payload=payloads.emule_udp(rng),
                start=when,
            )
        self.after(rng.expovariate(1.0 / 240.0), self._kad_tick)
