"""A Gnutella file-sharing host (Trader).

Flow-level behaviour of a LimeWire-style leaf: a handful of long-lived
ultrapeer connections established with the 0.6 handshake (and re-made as
ultrapeers churn away), irregular human-driven queries, HTTP downloads
from query hits, and PUSH uploads — when a remote requester is
firewalled the *serving* host initiates the connection, so a busy sharer
shows large initiator-side byte counts.
"""

from __future__ import annotations

from typing import List

from ..flows.record import FlowState, Protocol
from ..p2p.gnutella import FileSource, GnutellaOverlay, Ultrapeer
from . import payloads
from .base import Agent

__all__ = ["GnutellaTraderAgent"]


class GnutellaTraderAgent(Agent):
    """One internal host running a Gnutella client."""

    kind = "trader-gnutella"

    def __init__(
        self,
        address: str,
        overlay: GnutellaOverlay,
        target_ultrapeers: int = 3,
        queries_per_hour: float = 6.0,
        shares_files: bool = True,
    ) -> None:
        super().__init__(address)
        if target_ultrapeers <= 0:
            raise ValueError("need at least one ultrapeer slot")
        self.overlay = overlay
        self.target_ultrapeers = target_ultrapeers
        self.queries_per_hour = queries_per_hour
        self.shares_files = shares_files
        self._connected: List[Ultrapeer] = []

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        rng = self.rng
        self.after(rng.uniform(0, 120), self._acquire_ultrapeers)
        self.after(rng.expovariate(self.queries_per_hour / 3600.0), self._query)
        self.after(self.jittered(90.0, 0.8), self._ping_tick)
        if self.shares_files:
            self.after(rng.expovariate(1.0 / 1800.0), self._push_upload)
            self.after(rng.expovariate(1.0 / 1200.0), self._inbound_download)

    def _inbound_download(self, now: float) -> None:
        """A remote peer fetches one of our shared files directly."""
        rng = self.rng
        requester = rng.choice(self.overlay.sources)
        size = max(int(rng.lognormvariate(14.5, 1.2)), 32 * 1024)
        self.sim.emit_connection(
            src=requester.address,
            dst=self.address,
            dport=6346,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=max(2.0, size / 45_000.0),
            src_bytes=rng.randint(300, 800),
            dst_bytes=size,
            payload=payloads.http_get(rng),
        )
        self.after(rng.expovariate(1.0 / 1200.0), self._inbound_download)

    # ------------------------------------------------------------------
    # Overlay maintenance
    # ------------------------------------------------------------------
    def _acquire_ultrapeers(self, now: float) -> None:
        rng = self.rng
        candidates = self.overlay.bootstrap_candidates(rng, count=15)
        offset = 0.0
        for candidate in candidates:
            if len(self._connected) >= self.target_ultrapeers:
                break
            offset += rng.uniform(0.3, 5.0)
            when = now + offset
            online = candidate.is_online(when)
            req, resp = self.overlay.handshake_size()
            self.sim.emit_connection(
                src=self.address,
                dst=candidate.address,
                dport=candidate.port,
                proto=Protocol.TCP,
                state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
                duration=rng.uniform(1.0, 4.0) if online else 3.0,
                src_bytes=req,
                dst_bytes=resp if online else 0,
                payload=payloads.gnutella_handshake(rng),
                start=when,
            )
            if online:
                self._connected.append(candidate)
        # Re-check the neighbour set later: churn erodes it.
        self.after(self.jittered(1200.0, 0.5), self._refresh_ultrapeers)

    def _refresh_ultrapeers(self, now: float) -> None:
        self._connected = [u for u in self._connected if u.is_online(now)]
        if len(self._connected) < self.target_ultrapeers:
            self._acquire_ultrapeers(now)
        else:
            self.after(self.jittered(1200.0, 0.5), self._refresh_ultrapeers)

    def _ping_tick(self, now: float) -> None:
        """Irregular keep-alive pings over the ultrapeer connections."""
        rng = self.rng
        for ultrapeer in self._connected:
            if rng.random() < 0.3:
                continue  # piggybacked on other traffic, no separate flow
            ping, pong = self.overlay.ping_size()
            online = ultrapeer.is_online(now)
            self.sim.emit_connection(
                src=self.address,
                dst=ultrapeer.address,
                dport=ultrapeer.port,
                proto=Protocol.TCP,
                state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
                duration=rng.uniform(0.05, 1.0),
                src_bytes=ping + rng.randint(0, 40),
                dst_bytes=pong if online else 0,
                payload=payloads.lime_payload(rng),
            )
        # Human-perturbed schedule: lognormal-ish spread, not a hard timer.
        self.after(90.0 * rng.lognormvariate(0.0, 0.7), self._ping_tick)

    # ------------------------------------------------------------------
    # Searching and downloading (human-driven)
    # ------------------------------------------------------------------
    def _query(self, now: float) -> None:
        rng = self.rng
        hits = self.overlay.query_hits(rng)
        for ultrapeer in self._connected or []:
            q, h = self.overlay.query_size(len(hits))
            self.sim.emit_connection(
                src=self.address,
                dst=ultrapeer.address,
                dport=ultrapeer.port,
                proto=Protocol.TCP,
                state=FlowState.ESTABLISHED if ultrapeer.is_online(now) else FlowState.TIMEOUT,
                duration=rng.uniform(0.5, 6.0),
                src_bytes=q,
                dst_bytes=h,
                payload=payloads.gnutella_query(rng),
            )
        if hits and rng.random() < 0.8:
            chosen = rng.sample(hits, min(len(hits), rng.randint(1, 3)))
            offset = rng.uniform(2.0, 30.0)  # user inspects results first
            for source in chosen:
                self.after(offset, lambda t, s=source: self._download(t, s))
                offset += rng.uniform(1.0, 20.0)
        self.after(rng.expovariate(self.queries_per_hour / 3600.0), self._query)

    def _download(self, now: float, source: FileSource) -> None:
        rng = self.rng
        online = source.is_online(now)
        if not online:
            self.sim.emit_connection(
                src=self.address,
                dst=source.address,
                dport=source.port,
                proto=Protocol.TCP,
                state=FlowState.TIMEOUT,
                duration=3.0,
                src_bytes=150,
                dst_bytes=0,
            )
            if rng.random() < 0.5:  # try again later, the human is patient
                self.after(rng.uniform(60, 900), lambda t: self._download(t, source))
            return
        duration = max(2.0, source.file_bytes / max(source.upload_rate, 1024.0))
        self.sim.emit_connection(
            src=self.address,
            dst=source.address,
            dport=source.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED,
            duration=duration,
            src_bytes=rng.randint(350, 900),
            dst_bytes=source.file_bytes,
            payload=payloads.http_get(rng),
        )

    # ------------------------------------------------------------------
    # Serving: PUSH uploads initiated by this host
    # ------------------------------------------------------------------
    def _push_upload(self, now: float) -> None:
        rng = self.rng
        requester = rng.choice(self.overlay.sources)
        online = requester.is_online(now)
        size = max(int(rng.lognormvariate(15.0, 1.2)), 64 * 1024)
        self.sim.emit_connection(
            src=self.address,
            dst=requester.address,
            dport=requester.port,
            proto=Protocol.TCP,
            state=FlowState.ESTABLISHED if online else FlowState.TIMEOUT,
            duration=max(2.0, size / 45_000.0) if online else 3.0,
            src_bytes=size if online else 160,
            dst_bytes=rng.randint(200, 800) if online else 0,
            payload=payloads.gnutella_connect_back(rng),
        )
        self.after(rng.expovariate(1.0 / 1800.0), self._push_upload)
