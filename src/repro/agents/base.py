"""The traffic-agent base class.

An agent animates one host: at :meth:`start` it schedules its first
event on the simulation, and every event handler emits flows and
reschedules itself.  Agents carry their own deterministic RNG substream,
derived from the simulation seed and the host address, so adding an
agent never perturbs another agent's randomness.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from ..netsim.network import NetworkSimulation
from ..netsim.rng import substream

__all__ = ["Agent"]


class Agent(abc.ABC):
    """Base class for all traffic generators.

    Subclasses implement :meth:`on_start` to schedule their initial
    events; the framework wires up the RNG and records the simulation
    handle.
    """

    #: Subclasses set this to a short stable label used in RNG derivation.
    kind: str = "agent"

    def __init__(self, address: str) -> None:
        self.address = address
        self._sim: Optional[NetworkSimulation] = None
        self._rng: Optional[random.Random] = None

    # ------------------------------------------------------------------
    # Framework plumbing
    # ------------------------------------------------------------------
    @property
    def sim(self) -> NetworkSimulation:
        """The simulation this agent runs in (set at start)."""
        if self._sim is None:
            raise RuntimeError(f"agent {self.address} has not been started")
        return self._sim

    @property
    def rng(self) -> random.Random:
        """This agent's private RNG substream."""
        if self._rng is None:
            raise RuntimeError(f"agent {self.address} has not been started")
        return self._rng

    def start(self, sim: NetworkSimulation) -> None:
        """Attach to ``sim`` and schedule initial events."""
        self._sim = sim
        self._rng = substream(sim.seed, self.kind, self.address)
        self.on_start()

    @abc.abstractmethod
    def on_start(self) -> None:
        """Schedule this agent's first events (subclass hook)."""

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def after(self, delay: float, handler) -> None:
        """Schedule ``handler(now)`` after ``delay`` seconds."""
        self.sim.schedule_in(max(delay, 0.0), handler)

    def jittered(self, base: float, spread: float = 0.1) -> float:
        """``base`` multiplied by a uniform factor in ``1 ± spread``.

        Models ordinary scheduling noise around a nominal timer value.
        """
        return base * self.rng.uniform(1.0 - spread, 1.0 + spread)
