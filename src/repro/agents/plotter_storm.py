"""A Storm bot (Plotter) riding the Overnet DHT.

Storm's observable behaviour, per the analyses the paper cites [1],
[13], [14], [15]: bootstrap from a hard-coded peer file, relentless
small UDP control messages, periodic searches for date-derived
rendezvous keys, periodic self-publicising, and keepalives to a stable
neighbour set.  The timers are compiled into the binary, so every bot in
the botnet shares them — the commonality the θ_hm test exploits.

All flows are tiny (tens to hundreds of bytes), persistent through the
whole window, and aimed at a slowly-changing peer set: exactly the
low-volume / low-churn / machine-periodic profile of §IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flows.record import FlowState, Protocol
from ..p2p.kademlia import KademliaNetwork, QueryOutcome
from ..p2p.overnet import MSG_SIZES, OvernetNode
from . import payloads
from .base import Agent

__all__ = ["StormTimers", "StormPlotterAgent", "STORM_NETWORK_CHURN"]

#: UDP port the simulated Overnet overlay listens on.
OVERNET_PORT = 7871

#: Churn of the global Storm/Overnet peer population.  Stale peer-file
#: entries and NATed bots put the steady-state online fraction near 60%,
#: which yields the 20–60% failed-connection band of Figure 5.
from ..p2p.churn import ChurnModel  # noqa: E402 - constant needs the type

STORM_NETWORK_CHURN = ChurnModel(
    median_session=100 * 60.0,
    session_sigma=1.0,
    mean_offline=100 * 60.0,
    fraction_dead=0.20,
    fraction_single_session=0.05,
)


@dataclass(frozen=True)
class StormTimers:
    """Timer constants compiled into the bot binary (seconds).

    Every bot built from the same binary shares these; the per-bot
    ``jitter`` models only OS scheduling noise, not behavioural
    randomisation.
    """

    keepalive: float = 90.0
    search: float = 300.0
    publicize: float = 600.0
    jitter: float = 0.02


class StormPlotterAgent(Agent):
    """One Storm-infected host."""

    kind = "plotter-storm"

    def __init__(
        self,
        address: str,
        network: KademliaNetwork,
        day: int = 0,
        timers: StormTimers = StormTimers(),
        keepalive_fanout: int = 8,
    ) -> None:
        super().__init__(address)
        self.network = network
        self.day = day
        self.timers = timers
        self.keepalive_fanout = keepalive_fanout
        self._node = None

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        rng = self.rng
        self._node = OvernetNode(self.network, rng)
        # Bots come alive quickly — they do not wait for a human.
        self.after(rng.uniform(0, 30), self._bootstrap)

    def _bootstrap(self, now: float) -> None:
        operation = self._node.connect(now)
        self._emit_operation(operation, gap=0.25)
        self.after(self.jittered(self.timers.keepalive, self.timers.jitter), self._keepalive)
        self.after(self.jittered(self.timers.search, self.timers.jitter), self._search)
        self.after(self.jittered(self.timers.publicize, self.timers.jitter), self._publicize)
        # Once publicised, other Overnet peers query *us* as well.
        self.after(self.rng.expovariate(1.0 / 120.0), self._inbound_query)

    def _inbound_query(self, now: float) -> None:
        rng = self.rng
        peer = self.network.peers[rng.choice(list(self.network.peers))]
        self.sim.emit_connection(
            src=peer.address,
            dst=self.address,
            dport=OVERNET_PORT,
            proto=Protocol.UDP,
            state=FlowState.ESTABLISHED,
            duration=rng.uniform(0.02, 0.5),
            src_bytes=MSG_SIZES["search"] + rng.randint(0, 8),
            dst_bytes=MSG_SIZES["search_next"],
            payload=payloads.opaque(rng),
        )
        self.after(rng.expovariate(1.0 / 120.0), self._inbound_query)

    # ------------------------------------------------------------------
    # Periodic protocol activity
    # ------------------------------------------------------------------
    def _keepalive(self, now: float) -> None:
        rng = self.rng
        outcomes = self._node.keepalive_targets(now, count=self.keepalive_fanout)
        for outcome in outcomes:
            # A keepalive round bundles several datagrams (hello, ip
            # query, publicize ack) into one Argus flow.
            bundle = rng.randint(2, 5)
            self._emit_rpc(
                outcome,
                request=MSG_SIZES["keepalive"] * bundle,
                response=MSG_SIZES["connect_reply"],
            )
        self.after(self.jittered(self.timers.keepalive, self.timers.jitter), self._keepalive)

    def _search(self, now: float) -> None:
        keys = self._node.daily_keys(self.day)
        key = keys[self.rng.randrange(len(keys))]
        operation = self._node.search(key, now)
        self._emit_operation(operation, gap=0.15)
        self.after(self.jittered(self.timers.search, self.timers.jitter), self._search)

    def _publicize(self, now: float) -> None:
        keys = self._node.daily_keys(self.day)
        key = keys[self.rng.randrange(len(keys))]
        operation = self._node.publicize(key, now)
        self._emit_operation(operation, gap=0.15)
        self.after(self.jittered(self.timers.publicize, self.timers.jitter), self._publicize)

    # ------------------------------------------------------------------
    # Flow emission
    # ------------------------------------------------------------------
    def _emit_rpc(self, outcome: QueryOutcome, request: int, response: int) -> None:
        rng = self.rng
        self.sim.emit_connection(
            src=self.address,
            dst=outcome.peer.address,
            dport=OVERNET_PORT,
            proto=Protocol.UDP,
            state=FlowState.ESTABLISHED if outcome.responded else FlowState.TIMEOUT,
            duration=rng.uniform(0.02, 0.8) if outcome.responded else 2.0,
            src_bytes=request + rng.randint(0, 8),
            dst_bytes=response if outcome.responded else 0,
            payload=payloads.opaque(rng),
        )

    def _emit_operation(self, operation, gap: float) -> None:
        rng = self.rng
        offset = 0.0
        for outcome in operation.rpcs:
            offset += rng.uniform(0.2, 1.8) * gap
            when = self.sim.now + offset
            self.sim.emit_connection(
                src=self.address,
                dst=outcome.peer.address,
                dport=OVERNET_PORT,
                proto=Protocol.UDP,
                state=FlowState.ESTABLISHED if outcome.responded else FlowState.TIMEOUT,
                duration=rng.uniform(0.02, 0.8) if outcome.responded else 2.0,
                src_bytes=operation.request_size + rng.randint(0, 8),
                dst_bytes=operation.response_size if outcome.responded else 0,
                payload=payloads.opaque(rng),
                start=when,
            )
