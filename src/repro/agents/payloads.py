"""Synthesis of the 64-byte payload snippets carried in flow records.

The paper's ground truth comes from the first 64 payload bytes of each
flow (§III): Gnutella hosts are recognised by the keywords ``GNUTELLA``,
``CONNECT BACK`` and ``LIME``; eMule by a leading ``0xe3``/``0xc5``
framing byte; BitTorrent by the handshake string, tracker HTTP requests
(``GET /scrape``, ``GET /announce``) and DHT bencoding markers
(``d1:ad2:id20``, ``d1:rd2:id20``).  The agents here emit snippets with
exactly those markers so the labeling rules in
:mod:`repro.datasets.groundtruth` fire on the same evidence the paper
used.  Plotter payloads are encrypted-looking random bytes — Storm and
Nugache obfuscated their messages, and the detector never reads payloads
anyway.
"""

from __future__ import annotations

import random

__all__ = [
    "gnutella_handshake",
    "gnutella_connect_back",
    "gnutella_query",
    "lime_payload",
    "emule_tcp",
    "emule_udp",
    "bittorrent_handshake",
    "tracker_announce_request",
    "tracker_scrape_request",
    "dht_query",
    "dht_response",
    "http_get",
    "smtp_banner_reply",
    "dns_query",
    "ssh_banner",
    "opaque",
]


def _pad_random(rng: random.Random, prefix: bytes, length: int = 64) -> bytes:
    """Pad ``prefix`` with random bytes up to ``length``."""
    if len(prefix) >= length:
        return prefix[:length]
    return prefix + bytes(rng.getrandbits(8) for _ in range(length - len(prefix)))


# ----------------------------------------------------------------------
# Gnutella
# ----------------------------------------------------------------------
def gnutella_handshake(rng: random.Random) -> bytes:
    """The Gnutella 0.6 connect preamble."""
    return _pad_random(rng, b"GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire/4.18\r\n")


def gnutella_connect_back(rng: random.Random) -> bytes:
    """A CONNECT BACK vendor message (firewall probe)."""
    return _pad_random(rng, b"CONNECT BACK/0.1\r\n")


def gnutella_query(rng: random.Random) -> bytes:
    """A query descriptor (binary header; keyword appears in cleartext)."""
    return _pad_random(rng, bytes([rng.getrandbits(8) for _ in range(16)]) + b"GNUTELLA")


def lime_payload(rng: random.Random) -> bytes:
    """A LimeWire vendor-tagged message."""
    return _pad_random(rng, b"LIME" + bytes([0x41, 0x0B, 0x02]))


# ----------------------------------------------------------------------
# eMule / eD2k
# ----------------------------------------------------------------------
def emule_tcp(rng: random.Random) -> bytes:
    """An eD2k TCP frame: 0xe3 marker, little-endian length, opcode."""
    length = rng.randint(6, 40)
    body = bytes(rng.getrandbits(8) for _ in range(length))
    return _pad_random(rng, bytes([0xE3]) + length.to_bytes(4, "little") + body)


def emule_udp(rng: random.Random) -> bytes:
    """An eMule extended-protocol UDP frame (0xc5 marker)."""
    return _pad_random(rng, bytes([0xC5, rng.choice((0x92, 0x94, 0x96))]))


# ----------------------------------------------------------------------
# BitTorrent
# ----------------------------------------------------------------------
def bittorrent_handshake(rng: random.Random, infohash: bytes) -> bytes:
    """The 68-byte peer-wire handshake (truncated to the snippet)."""
    return (bytes([19]) + b"BitTorrent protocol" + bytes(8) + infohash)[:64]


def tracker_announce_request(rng: random.Random, infohash: bytes) -> bytes:
    """The HTTP announce GET sent to a tracker."""
    hex_hash = infohash.hex()[:20]
    return _pad_random(rng, f"GET /announce?info_hash={hex_hash}".encode())


def tracker_scrape_request(rng: random.Random, infohash: bytes) -> bytes:
    """The HTTP scrape GET sent to a tracker."""
    hex_hash = infohash.hex()[:20]
    return _pad_random(rng, f"GET /scrape?info_hash={hex_hash}".encode())


def dht_query(rng: random.Random) -> bytes:
    """A mainline-DHT KRPC query (bencoded)."""
    return _pad_random(rng, b"d1:ad2:id20:" + bytes(rng.getrandbits(8) for _ in range(20)))


def dht_response(rng: random.Random) -> bytes:
    """A mainline-DHT KRPC response (bencoded)."""
    return _pad_random(rng, b"d1:rd2:id20:" + bytes(rng.getrandbits(8) for _ in range(20)))


# ----------------------------------------------------------------------
# Background application protocols
# ----------------------------------------------------------------------
def http_get(rng: random.Random) -> bytes:
    """An ordinary web request."""
    paths = (b"/", b"/index.html", b"/news", b"/search?q=", b"/img/logo.png")
    return _pad_random(rng, b"GET " + rng.choice(paths) + b" HTTP/1.1\r\nHost: ")


def smtp_banner_reply(rng: random.Random) -> bytes:
    """The client side of an SMTP exchange."""
    return _pad_random(rng, b"EHLO client.example.edu\r\nMAIL FROM:<")


def dns_query(rng: random.Random) -> bytes:
    """A DNS query (binary header plus a QNAME fragment).

    The transaction identifier's first byte is kept clear of the eMule
    framing markers so random DNS headers never collide with the
    ground-truth signatures.
    """
    first = rng.getrandbits(7)
    header = bytes([first]) + bytes(rng.getrandbits(8) for _ in range(11))
    return _pad_random(rng, header + b"\x03www\x07example\x03com\x00")


def ssh_banner(rng: random.Random) -> bytes:
    """An SSH protocol banner."""
    return _pad_random(rng, b"SSH-2.0-OpenSSH_4.7p1\r\n")


# ----------------------------------------------------------------------
# Plotters
# ----------------------------------------------------------------------
def opaque(rng: random.Random, length: int = 64) -> bytes:
    """Encrypted/obfuscated bot payload: uniformly random bytes.

    Guaranteed not to match any Trader signature: the first byte avoids
    the eMule framing markers and the BitTorrent handshake length byte.
    """
    first = rng.getrandbits(8)
    while first in (0xE3, 0xC5, 19, ord(b"G"), ord(b"d"), ord(b"L"), ord(b"C")):
        first = rng.getrandbits(8)
    return bytes([first]) + bytes(rng.getrandbits(8) for _ in range(length - 1))
