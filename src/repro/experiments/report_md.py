"""Assemble a single markdown report from saved benchmark results.

The benchmark suite writes each regenerated figure's table to
``benchmarks/results/``; :func:`build_report` stitches them into one
reviewable document with the paper's expectations alongside, and the
CLI's ``report`` pseudo-experiment writes it to disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["PAPER_EXPECTATIONS", "build_report", "write_report"]

#: What the paper reports, per artifact (shown next to measured tables).
PAPER_EXPECTATIONS: Dict[str, str] = {
    "fig1_volume_cdf": (
        "Paper: Plotters contribute far fewer bytes/flow than Traders; "
        "campus hosts in between."
    ),
    "fig2_new_ip_timeseries": (
        "Paper: >55% of a Trader's contacted IPs stay new all day; a "
        "Storm bot mostly re-contacts known peers after hour one."
    ),
    "fig3_interstitial": (
        "Paper: Nugache communicates at ~10/25/50 s intervals; Storm is "
        "strongly periodic; Traders show no comparable pattern."
    ),
    "fig5_failed_conn_cdf": (
        "Paper: P2P hosts fail far more connections than the rest; "
        "almost all Nugache bots exceed 65%."
    ),
    "fig6_roc_volume": "Paper: volume alone is coarse — FPR up to ~90%.",
    "fig7_roc_churn": "Paper: churn alone is similarly coarse.",
    "fig8_roc_hm": (
        "Paper: θ_hm is the sharp test; Storm ≫ Nugache (quiet bots "
        "hide under host traffic)."
    ),
    "fig9_findplotters": (
        "Paper: 87.50% Storm TPR, 30% Nugache TPR, 0.81% FPR, 5.40% of "
        "Traders surviving."
    ),
    "fig10_nugache_activity": (
        "Paper: each test preferentially filters the least "
        "communicative Nugache bots."
    ),
    "fig11_evasion_thresholds": (
        "Paper: ~5× volume growth needed for Storm, ~1.3× for Nugache; "
        "≥1.5× new-IP growth for churn."
    ),
    "fig12_jitter_decay": (
        "Paper: detection survives tens of seconds of jitter and decays "
        "at the minutes scale; small non-monotone bump for Nugache."
    ),
}


def build_report(
    results_dir: Union[str, Path],
    expectations: Optional[Dict[str, str]] = None,
) -> str:
    """Render every saved results table into one markdown document."""
    base = Path(results_dir)
    if not base.is_dir():
        raise FileNotFoundError(f"no results directory at {base}")
    notes = PAPER_EXPECTATIONS if expectations is None else expectations
    sections: List[str] = [
        "# Regenerated evaluation report",
        "",
        f"Source: `{base}` — regenerate with "
        "`pytest benchmarks/ --benchmark-only` "
        "(set `REPRO_SCALE=paper` for full size).",
        "",
    ]
    files = sorted(base.glob("*.txt"))
    if not files:
        raise FileNotFoundError(f"no saved result tables in {base}")
    for path in files:
        name = path.stem
        sections.append(f"## {name}")
        note = notes.get(name)
        if note:
            sections.append(f"*{note}*")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def write_report(
    results_dir: Union[str, Path], output: Union[str, Path]
) -> Path:
    """Build the report and write it to ``output``; returns the path."""
    text = build_report(results_dir)
    out = Path(output)
    out.write_text(text)
    return out
