"""Evasion figures: Figures 11 and 12 of the paper (§VI).

* Figure 11(a) — per day, the volume threshold τ_vol versus the median
  Plotter's average flow size: the evasion factor.
* Figure 11(b) — the same for τ_churn and the new-IP fraction.
* Figure 12 — the θ_hm true-positive rate as uniform ±d jitter is added
  to the bots' repeat-contact flows, for d from 30 s to 3 h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..datasets.overlay import overlay_traces
from ..detection.pipeline import find_plotters
from ..evasion.jitter import jitter_trace
from ..evasion.volume_inflation import required_inflation_factor
from ..evasion.churn_inflation import required_churn_factor
from ..netsim.rng import substream
from .config import ExperimentContext
from .tables import render_table

__all__ = [
    "ThresholdGapResult",
    "JitterResult",
    "run_fig11_evasion_thresholds",
    "run_fig12_jitter_decay",
    "DEFAULT_JITTER_SWEEP",
]

#: Jitter half-widths (seconds) swept in Figure 12: 30 s to 3 h.
DEFAULT_JITTER_SWEEP = (0.0, 30.0, 120.0, 600.0, 1800.0, 3600.0, 10800.0)


@dataclass
class ThresholdGapResult:
    """Per-day thresholds, per-botnet medians, and evasion factors."""

    volume_factors: Dict[str, List[float]]
    churn_factors: Dict[str, List[float]]
    table: str


@dataclass
class JitterResult:
    """TPR per jitter half-width per botnet."""

    points: Dict[str, List[Tuple[float, float]]]
    table: str


def run_fig11_evasion_thresholds(ctx: ExperimentContext) -> ThresholdGapResult:
    """Figure 11: how far each botnet sits below the dynamic thresholds.

    Expected shape: the median Storm bot must grow its per-flow volume
    by a large factor (the paper reports ~5×) while Nugache needs only a
    small one (~1.3×); both need ≥1.5× growth in new-IP fraction.
    """
    volume_factors: Dict[str, List[float]] = {"storm": [], "nugache": []}
    churn_factors: Dict[str, List[float]] = {"storm": [], "nugache": []}
    rows = []
    for day in ctx.days:
        result = ctx.pipeline_result(day)
        vol_metric = result.volume.metric
        churn_metric = result.churn.metric
        for botnet in ("storm", "nugache"):
            hosts = ctx.plotters(day, botnet)
            vol_values = [vol_metric[h] for h in hosts if h in vol_metric]
            churn_values = [churn_metric[h] for h in hosts if h in churn_metric]
            if not vol_values or not churn_values:
                continue
            vol_median = float(np.median(vol_values))
            churn_median = float(np.median(churn_values))
            vol_factor = required_inflation_factor(
                vol_median, result.volume.threshold
            )
            churn_factor = required_churn_factor(
                churn_median, result.churn.threshold
            )
            volume_factors[botnet].append(vol_factor)
            churn_factors[botnet].append(churn_factor)
            rows.append(
                [
                    str(day),
                    botnet,
                    f"{result.volume.threshold:.0f}",
                    f"{vol_median:.0f}",
                    f"{vol_factor:.2f}",
                    f"{result.churn.threshold:.3f}",
                    f"{churn_median:.3f}",
                    f"{churn_factor:.2f}",
                ]
            )
    table = render_table(
        "Figure 11: evasion factors per day "
        "(threshold vs median Plotter value)",
        [
            "day",
            "botnet",
            "tau_vol",
            "median vol",
            "vol factor",
            "tau_churn",
            "median churn",
            "churn factor",
        ],
        rows,
    )
    return ThresholdGapResult(
        volume_factors=volume_factors,
        churn_factors=churn_factors,
        table=table,
    )


def run_fig12_jitter_decay(
    ctx: ExperimentContext,
    sweep: Tuple[float, ...] = DEFAULT_JITTER_SWEEP,
    days: List[int] = None,
) -> JitterResult:
    """Figure 12: pipeline TPR as bots jitter their repeat contacts.

    Expected shape: detection survives small jitter (tens of seconds)
    and decays once the randomisation reaches minutes — the bots must
    slow themselves down materially to escape θ_hm.
    """
    if days is None:
        days = ctx.days[: max(1, len(ctx.days) // 2)]
    points: Dict[str, List[Tuple[float, float]]] = {"storm": [], "nugache": []}
    rows = []
    for d in sweep:
        tpr_sum = {"storm": 0.0, "nugache": 0.0}
        for day in days:
            campus = ctx.campus_day(day)
            rng = substream(ctx.config.seed, "jitter", day, int(d))
            traces = [
                jitter_trace(ctx.storm_trace(), d, rng, campus.window),
                jitter_trace(ctx.nugache_trace(), d, rng, campus.window),
            ]
            overlaid = overlay_traces(
                campus, traces, substream(ctx.config.seed, "overlay", day)
            )
            result = find_plotters(
                overlaid.store, hosts=campus.all_hosts, config=ctx.config.pipeline
            )
            for botnet in ("storm", "nugache"):
                plotters = overlaid.plotters_of(botnet)
                tpr_sum[botnet] += (
                    len(result.suspects & plotters) / len(plotters)
                    if plotters
                    else 0.0
                )
        for botnet in ("storm", "nugache"):
            tpr = tpr_sum[botnet] / len(days)
            points[botnet].append((d, tpr))
            rows.append([f"{d:.0f}", botnet, f"{tpr:.3f}"])
    table = render_table(
        f"Figure 12: TPR vs jitter half-width (mean over {len(days)} days)",
        ["d (s)", "botnet", "TPR"],
        rows,
    )
    return JitterResult(points=points, table=table)
