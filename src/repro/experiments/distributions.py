"""Distribution figures: Figures 1, 2, 3 and 5 of the paper.

* Figure 1 — CDF of average flow size per host, per dataset.
* Figure 2 — fraction of new IPs contacted per hour: one Trader versus
  one Storm bot.
* Figure 3 — per-destination interstitial-time distributions of a Storm
  bot, a Nugache bot, a BitTorrent host and a Gnutella host.
* Figure 5 — CDF of failed-connection percentage per host, per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..flows.metrics import (
    average_flow_size,
    failed_connection_rate,
    interstitial_times,
    new_ip_timeseries,
)
from ..netsim.entities import HostRole
from ..stats.ecdf import quantile_series
from .config import ExperimentContext
from .tables import render_table

__all__ = [
    "DistributionResult",
    "run_fig1_volume_cdf",
    "run_fig2_new_ip_timeseries",
    "run_fig3_interstitial",
    "run_fig5_failed_conn_cdf",
]

#: Quantiles reported for each CDF series.
_CDF_PROBS = (0.1, 0.25, 0.5, 0.75, 0.9)


@dataclass
class DistributionResult:
    """Per-dataset value series plus a rendered table."""

    name: str
    series: Dict[str, List[float]]
    table: str


def _per_host_metric(ctx: ExperimentContext, day: int, metric) -> Dict[str, List[float]]:
    """The metric per host, grouped into the paper's four datasets.

    ``CMU\\Trader`` hosts come from the campus day (background only);
    Traders from the labelled Trader set; Storm/Nugache values come
    from the honeynet traces alone, as in Figures 1 and 5 ("generated
    from the Plotter traces only").
    """
    campus = ctx.campus_day(day)
    store = campus.store
    traders = ctx.traders(day)
    series: Dict[str, List[float]] = {
        "cmu-minus-trader": [],
        "trader": [],
        "storm": [],
        "nugache": [],
    }
    for host in campus.all_hosts:
        flows = store.flows_from(host)
        if not flows:
            continue
        value = metric(flows)
        if host in traders:
            series["trader"].append(value)
        else:
            series["cmu-minus-trader"].append(value)
    for trace_name in ("storm", "nugache"):
        trace = ctx.storm_trace() if trace_name == "storm" else ctx.nugache_trace()
        for bot in trace.bots:
            flows = trace.store.flows_from(bot)
            if flows:
                series[trace_name].append(metric(flows))
    return series


def _cdf_table(name: str, series: Dict[str, List[float]], unit: str) -> str:
    rows = []
    for label, values in series.items():
        if not values:
            rows.append([label, "0", *["-"] * len(_CDF_PROBS)])
            continue
        quantiles = quantile_series(values, _CDF_PROBS)
        rows.append(
            [label, str(len(values))]
            + [f"{q:.2f}" for _p, q in quantiles]
        )
    header = ["dataset", "hosts"] + [f"p{int(p * 100)}" for p in _CDF_PROBS]
    return render_table(f"{name} ({unit})", header, rows)


def run_fig1_volume_cdf(ctx: ExperimentContext, day: int = 0) -> DistributionResult:
    """Figure 1: average uploaded bytes per flow, per host, per dataset.

    Expected shape: Plotters orders of magnitude below Traders, with
    CMU\\Trader in between.
    """
    series = _per_host_metric(ctx, day, average_flow_size)
    table = _cdf_table("Figure 1: avg flow size per host", series, "bytes/flow")
    return DistributionResult(name="fig1", series=series, table=table)


def run_fig5_failed_conn_cdf(ctx: ExperimentContext, day: int = 0) -> DistributionResult:
    """Figure 5: failed-connection percentage per host, per dataset.

    Expected shape: P2P hosts (Traders and Plotters) fail far more than
    CMU\\Trader hosts; Nugache is the extreme (>65%).
    """
    series = _per_host_metric(ctx, day, failed_connection_rate)
    table = _cdf_table(
        "Figure 5: failed connection rate per host", series, "fraction"
    )
    return DistributionResult(name="fig5", series=series, table=table)


def run_fig2_new_ip_timeseries(
    ctx: ExperimentContext, day: int = 0
) -> DistributionResult:
    """Figure 2: hourly fraction of newly contacted IPs, Trader vs Storm.

    Expected shape: the Trader keeps contacting mostly-new peers all
    day; after its first hour the Storm bot mostly re-contacts peers it
    already knows.
    """
    campus = ctx.campus_day(day)
    traders = sorted(ctx.traders(day))
    if not traders:
        raise RuntimeError("no labelled Traders on this day")
    # The Trader meeting the most peers gives the clearest series (a
    # queue-polling eMule host has many flows but few fresh contacts).
    trader = max(traders, key=lambda h: len(campus.store.destinations_of(h)))
    storm = ctx.storm_trace()
    bot = max(storm.bots, key=lambda b: len(storm.store.flows_from(b)))

    trader_series = new_ip_timeseries(campus.store.flows_from(trader))
    storm_series = new_ip_timeseries(storm.store.flows_from(bot))
    series = {
        "trader": [frac for _t, frac in trader_series],
        "storm": [frac for _t, frac in storm_series],
    }
    rows = []
    for label, pts in (("trader", trader_series), ("storm", storm_series)):
        for hour_offset, frac in pts:
            rows.append([label, f"{hour_offset / 3600.0:.0f}", f"{frac:.3f}"])
    table = render_table(
        "Figure 2: fraction of new IPs contacted per hour",
        ["host", "hour", "new-ip fraction"],
        rows,
    )
    return DistributionResult(name="fig2", series=series, table=table)


def _modal_bins(samples: List[float], n_modes: int = 4) -> List[Tuple[float, float]]:
    """The most-populated log-time bins: (seconds, mass) pairs."""
    if not samples:
        return []
    logs = np.log10(np.maximum(np.asarray(samples, dtype=float), 1e-3))
    counts, edges = np.histogram(logs, bins=40, range=(-2.0, 5.0))
    order = np.argsort(counts)[::-1][:n_modes]
    total = counts.sum()
    modes = []
    for idx in sorted(order):
        if counts[idx] == 0:
            continue
        center = (edges[idx] + edges[idx + 1]) / 2.0
        modes.append((float(10 ** center), float(counts[idx] / total)))
    return modes


def run_fig3_interstitial(ctx: ExperimentContext, day: int = 0) -> DistributionResult:
    """Figure 3: interstitial-time distributions of four host classes.

    Expected shape: Storm and Nugache mass concentrates on a few timer
    values (Nugache near 10/25/50 s); Trader mass spreads across scales
    with no dominant mode.
    """
    campus = ctx.campus_day(day)
    storm = ctx.storm_trace()
    nugache = ctx.nugache_trace()
    storm_bot = max(storm.bots, key=lambda b: len(storm.store.flows_from(b)))
    nugache_bot = max(nugache.bots, key=lambda b: len(nugache.store.flows_from(b)))

    def trader_of(role: HostRole) -> str:
        hosts = [h for h, r in campus.roles.items() if r is role]
        return max(hosts, key=lambda h: len(campus.store.flows_from(h)))

    subjects = {
        "storm": interstitial_times(storm.store.flows_from(storm_bot)),
        "nugache": interstitial_times(nugache.store.flows_from(nugache_bot)),
        "bittorrent": interstitial_times(
            campus.store.flows_from(trader_of(HostRole.TRADER_BITTORRENT))
        ),
        "gnutella": interstitial_times(
            campus.store.flows_from(trader_of(HostRole.TRADER_GNUTELLA))
        ),
    }
    rows = []
    series: Dict[str, List[float]] = {}
    for label, samples in subjects.items():
        series[label] = samples
        for seconds, mass in _modal_bins(samples):
            rows.append([label, f"{seconds:.1f}", f"{mass:.3f}"])
    table = render_table(
        "Figure 3: dominant interstitial-time modes per host class",
        ["host class", "mode (s)", "mass"],
        rows,
    )
    return DistributionResult(name="fig3", series=series, table=table)
