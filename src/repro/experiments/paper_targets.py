"""Machine-readable reproduction targets from the paper.

EXPERIMENTS.md narrates paper-vs-measured; this module encodes the
*shape* criteria as executable checks, so "did the reproduction hold?"
is a function call, not a judgement.  Each check returns a
:class:`ShapeCheck` with the claim, the measured value(s), and a
verdict; the Figure 9 benchmark asserts the non-negotiable ones.

The criteria deliberately test orderings and rough factors, never
absolute equality — the substrate is a simulator, not the 2007 CMU
border (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["PAPER_HEADLINE", "ShapeCheck", "check_headline", "check_roc_shape"]

#: The paper's §V-B operating-point numbers (Figure 9).
PAPER_HEADLINE: Dict[str, float] = {
    "tpr_storm": 0.8750,
    "tpr_nugache": 0.30,
    "fpr": 0.0081,
    "trader_survival": 0.0540,
}


@dataclass(frozen=True)
class ShapeCheck:
    """One reproduction criterion and its outcome."""

    name: str
    claim: str
    measured: str
    passed: bool

    def __str__(self) -> str:  # pragma: no cover - convenience
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.claim} (measured: {self.measured})"


def check_headline(summary: Dict[str, float]) -> List[ShapeCheck]:
    """Shape checks for the Figure 9 headline rates.

    ``summary`` is the dict produced by
    :func:`repro.detection.report.average_reports` (keys ``tpr_storm``,
    ``tpr_nugache``, ``fpr``, ``trader_survival``).
    """
    storm = summary["tpr_storm"]
    nugache = summary["tpr_nugache"]
    fpr = summary["fpr"]
    traders = summary["trader_survival"]
    return [
        ShapeCheck(
            name="storm-high",
            claim="Storm detection is high (paper: 87.5%; shape: ≥ 60%)",
            measured=f"{storm:.3f}",
            passed=storm >= 0.60,
        ),
        ShapeCheck(
            name="storm-over-nugache",
            claim="Storm is detected at a higher rate than Nugache",
            measured=f"{storm:.3f} vs {nugache:.3f}",
            passed=storm >= nugache,
        ),
        ShapeCheck(
            name="nugache-partial",
            claim=(
                "Nugache is partially detected (paper: 30%; shape: "
                "strictly between the FPR and Storm)"
            ),
            measured=f"{nugache:.3f} (fpr {fpr:.3f})",
            passed=fpr < nugache < max(storm, 1e-9) + 1e-9,
        ),
        ShapeCheck(
            name="fpr-small",
            claim=(
                "FPR is far below the single tests' tens of percent "
                "(shape: ≤ 15%)"
            ),
            measured=f"{fpr:.4f}",
            passed=fpr <= 0.15,
        ),
        ShapeCheck(
            name="traders-mostly-cleared",
            claim=(
                "most Traders are eliminated despite the shared "
                "substrate (paper: 5.4% survive; shape: ≤ 35%)"
            ),
            measured=f"{traders:.3f}",
            passed=traders <= 0.35,
        ),
    ]


def check_roc_shape(
    points: Dict[str, Sequence[Tuple[float, float, float]]],
) -> List[ShapeCheck]:
    """Shape checks for a single-test ROC (Figures 6–8 form).

    ``points`` maps botnet → [(percentile, TPR, FPR), …].
    """
    checks: List[ShapeCheck] = []
    for botnet, series in points.items():
        tprs = [tpr for _p, tpr, _f in series]
        fprs = [fpr for _p, _t, fpr in series]
        checks.append(
            ShapeCheck(
                name=f"{botnet}-tpr-monotone",
                claim="looser thresholds keep at least as many bots",
                measured=str([round(t, 3) for t in tprs]),
                passed=all(b >= a - 1e-9 for a, b in zip(tprs, tprs[1:])),
            )
        )
        checks.append(
            ShapeCheck(
                name=f"{botnet}-fpr-monotone",
                claim="looser thresholds keep at least as many negatives",
                measured=str([round(f, 3) for f in fprs]),
                passed=all(b >= a - 1e-9 for a, b in zip(fprs, fprs[1:])),
            )
        )
    if {"storm", "nugache"} <= set(points):
        storm_mean = sum(t for _p, t, _f in points["storm"]) / len(
            points["storm"]
        )
        nugache_mean = sum(t for _p, t, _f in points["nugache"]) / len(
            points["nugache"]
        )
        checks.append(
            ShapeCheck(
                name="storm-dominates-sweep",
                claim="Storm ≥ Nugache on average across the sweep",
                measured=f"{storm_mean:.3f} vs {nugache_mean:.3f}",
                passed=storm_mean >= nugache_mean - 1e-9,
            )
        )
    return checks
