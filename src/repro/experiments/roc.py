"""ROC figures: Figures 6, 7 and 8 of the paper.

Each test's ROC sweeps its threshold percentile over {10, 30, 50, 70,
90} and reports true/false positive rates *relative to the test's input
set* — S (post-reduction) for θ_vol and θ_churn, S_vol ∪ S_churn for
θ_hm — averaged over the campus days, exactly as §V-B describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from ..detection.churn import churn_metric
from ..detection.humanmachine import cluster_hosts, host_histograms
from ..detection.reduction import initial_data_reduction
from ..detection.volume import volume_metric
from ..stats.roc import PERCENTILE_SWEEP, RocCurve, roc_from_selections
from ..stats.thresholds import percentile_threshold, select_below
from .config import ExperimentContext
from .tables import render_table

__all__ = ["RocResult", "run_fig6_roc_volume", "run_fig7_roc_churn", "run_fig8_roc_hm"]


@dataclass
class RocResult:
    """Averaged ROC points per botnet plus a rendered table."""

    name: str
    points: Dict[str, List[Tuple[float, float, float]]]  # botnet -> (pct, tpr, fpr)
    table: str


def _metric_roc(
    ctx: ExperimentContext, metric_fn, name: str
) -> RocResult:
    """Shared sweep logic for the θ_vol / θ_churn ROCs."""
    sums: Dict[str, Dict[float, List[float]]] = {
        "storm": {p: [0.0, 0.0] for p in PERCENTILE_SWEEP},
        "nugache": {p: [0.0, 0.0] for p in PERCENTILE_SWEEP},
    }
    n_days = len(ctx.days)
    for day in ctx.days:
        overlaid = ctx.overlaid_day(day)
        hosts = ctx.campus_day(day).all_hosts
        reduced = initial_data_reduction(overlaid.store, hosts).selected_set
        metric = metric_fn(overlaid.store, reduced)
        values = list(metric.values())
        plotters = {
            "storm": ctx.plotters(day, "storm"),
            "nugache": ctx.plotters(day, "nugache"),
        }
        all_plotters = plotters["storm"] | plotters["nugache"]
        for pct in PERCENTILE_SWEEP:
            threshold = percentile_threshold(values, pct)
            selected = select_below(metric, threshold)
            for botnet in ("storm", "nugache"):
                positives = plotters[botnet] & reduced
                negatives = (reduced - all_plotters)
                tpr = len(selected & positives) / len(positives) if positives else 0.0
                fpr = len(selected & negatives) / len(negatives) if negatives else 0.0
                sums[botnet][pct][0] += tpr
                sums[botnet][pct][1] += fpr
    points = {
        botnet: [
            (pct, sums[botnet][pct][0] / n_days, sums[botnet][pct][1] / n_days)
            for pct in PERCENTILE_SWEEP
        ]
        for botnet in ("storm", "nugache")
    }
    rows = [
        [botnet, f"{pct:.0f}", f"{tpr:.3f}", f"{fpr:.3f}"]
        for botnet, pts in points.items()
        for pct, tpr, fpr in pts
    ]
    table = render_table(
        f"{name}: ROC (averaged over {n_days} days)",
        ["botnet", "threshold pct", "TPR", "FPR"],
        rows,
    )
    return RocResult(name=name, points=points, table=table)


def run_fig6_roc_volume(ctx: ExperimentContext) -> RocResult:
    """Figure 6: ROC of θ_vol.

    Expected shape: high TPR comes only with a high FPR — volume alone
    is a coarse test; Storm dominates Nugache at every point.
    """
    return _metric_roc(ctx, volume_metric, "Figure 6: volume test")


def run_fig7_roc_churn(ctx: ExperimentContext) -> RocResult:
    """Figure 7: ROC of θ_churn.

    Expected shape: coarse like volume, with Storm ≥ Nugache.
    """
    return _metric_roc(ctx, churn_metric, "Figure 7: churn test")


def run_fig8_roc_hm(ctx: ExperimentContext) -> RocResult:
    """Figure 8: ROC of θ_hm over S_vol ∪ S_churn (both at 50th pct).

    The clustering is computed once per day; the sweep only moves the
    diameter threshold τ_hm, as in the paper.
    """
    sums: Dict[str, Dict[float, List[float]]] = {
        "storm": {p: [0.0, 0.0] for p in PERCENTILE_SWEEP},
        "nugache": {p: [0.0, 0.0] for p in PERCENTILE_SWEEP},
    }
    n_days = len(ctx.days)
    for day in ctx.days:
        overlaid = ctx.overlaid_day(day)
        result = ctx.pipeline_result(day)
        union = result.union_vol_churn
        histograms = host_histograms(overlaid.store, sorted(union))
        # The dendrogram does not depend on τ_hm: cluster once, then
        # sweep only the diameter threshold.
        clustering = cluster_hosts(
            histograms, 50.0, ctx.config.pipeline.hm_cut_fraction
        )
        diameters = list(clustering.diameters)
        plotters = {
            "storm": ctx.plotters(day, "storm"),
            "nugache": ctx.plotters(day, "nugache"),
        }
        all_plotters = plotters["storm"] | plotters["nugache"]
        for pct in PERCENTILE_SWEEP:
            threshold = percentile_threshold(diameters, pct) if diameters else 0.0
            selected = {
                h
                for cluster, diameter in zip(clustering.clusters, diameters)
                if diameter <= threshold + 1e-9 and len(cluster) >= 2
                for h in cluster
            }
            for botnet in ("storm", "nugache"):
                positives = plotters[botnet] & union
                negatives = union - all_plotters
                tpr = len(selected & positives) / len(positives) if positives else 0.0
                fpr = len(selected & negatives) / len(negatives) if negatives else 0.0
                sums[botnet][pct][0] += tpr
                sums[botnet][pct][1] += fpr
    points = {
        botnet: [
            (pct, sums[botnet][pct][0] / n_days, sums[botnet][pct][1] / n_days)
            for pct in PERCENTILE_SWEEP
        ]
        for botnet in ("storm", "nugache")
    }
    rows = [
        [botnet, f"{pct:.0f}", f"{tpr:.3f}", f"{fpr:.3f}"]
        for botnet, pts in points.items()
        for pct, tpr, fpr in pts
    ]
    table = render_table(
        f"Figure 8: human-vs-machine test ROC (averaged over {n_days} days)",
        ["botnet", "threshold pct", "TPR", "FPR"],
        rows,
    )
    return RocResult(name="Figure 8: hm test", points=points, table=table)
