"""Extension experiments beyond the paper's evaluation.

* **Trader-hosted bots** (§VI's "ongoing work"): implant every bot onto
  a *Trader* host — the adversarial placement the paper identifies as
  its limitation — and compare the plain pipeline against the
  port-split pipeline of :mod:`repro.detection.portsplit`.
* **Waledac generalization**: overlay a bot family the detector was
  never calibrated for (HTTP transport, web-sized flows, soft timers)
  and measure how much detection power carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..datasets.honeynet import capture_storm_trace, capture_waledac_trace
from ..datasets.overlay import overlay_traces
from ..detection.pipeline import find_plotters
from ..detection.portsplit import PortSplitConfig, find_plotters_port_split
from ..netsim.rng import substream
from .config import ExperimentContext
from .tables import render_table

__all__ = [
    "CombinedEvasionResult",
    "run_ext_combined_evasion",
    "TraderHostedResult",
    "WaledacResult",
    "run_ext_trader_hosted",
    "run_ext_waledac",
]


@dataclass
class TraderHostedResult:
    """Detection of Trader-hosted bots: plain vs. port-split pipeline."""

    rates: Dict[str, Tuple[float, float]]  # variant -> (storm TPR, FPR)
    table: str


@dataclass
class WaledacResult:
    """Detection rates per botnet when Waledac joins the overlay."""

    rates: Dict[str, float]
    fpr: float
    table: str


def run_ext_trader_hosted(ctx: ExperimentContext) -> TraderHostedResult:
    """§VI extension: bots implanted exclusively onto Trader hosts.

    Expected shape: the plain pipeline degrades (the Trader's bulk
    transfers push the combined host out of θ_vol and blur θ_hm), while
    splitting traffic per destination-port group recovers much of the
    loss — the bot's port group still looks like a bot.
    """
    n_days = max(1, len(ctx.days) // 2)
    sums = {"plain": [0.0, 0.0], "port-split": [0.0, 0.0]}
    for day in ctx.days[:n_days]:
        campus = ctx.campus_day(day)
        traders = ctx.traders(day)
        storm = ctx.storm_trace()
        if storm.bot_count > len(traders):
            storm = capture_storm_trace(
                seed=ctx.config.seed,
                n_bots=len(traders),
                window=ctx.config.campus.window,
            )
        overlaid = overlay_traces(
            campus,
            [storm],
            substream(ctx.config.seed, "trader-hosted", day),
            eligible=traders,
        )
        plotters = overlaid.plotter_hosts
        negatives = campus.all_hosts - plotters

        plain = find_plotters(
            overlaid.store, hosts=campus.all_hosts, config=ctx.config.pipeline
        )
        sums["plain"][0] += len(plain.suspects & plotters) / len(plotters)
        sums["plain"][1] += len(plain.suspects & negatives) / len(negatives)

        split = find_plotters_port_split(
            overlaid.store,
            campus.all_hosts,
            config=PortSplitConfig(pipeline=ctx.config.pipeline),
        )
        sums["port-split"][0] += len(split.suspects & plotters) / len(plotters)
        sums["port-split"][1] += len(split.suspects & negatives) / len(negatives)

    rates = {
        variant: (acc[0] / n_days, acc[1] / n_days)
        for variant, acc in sums.items()
    }
    rows = [
        [variant, f"{tpr:.3f}", f"{fpr:.4f}"]
        for variant, (tpr, fpr) in rates.items()
    ]
    table = render_table(
        f"Extension: Storm bots implanted on Trader hosts "
        f"(mean over {n_days} days)",
        ["pipeline", "storm TPR", "FPR"],
        rows,
    )
    return TraderHostedResult(rates=rates, table=table)


def run_ext_waledac(ctx: ExperimentContext) -> WaledacResult:
    """Generalization: an unseen bot family joins the overlay.

    Expected shape: Waledac detection lands *between* Storm and the
    background — its persistence and timers still separate it from
    humans, but web-sized flows on port 80 erode the volume test's
    margin, so it escapes more often than Storm.
    """
    waledac = capture_waledac_trace(
        seed=ctx.config.seed,
        n_bots=max(10, ctx.config.storm_bots),
        window=ctx.config.campus.window,
    )
    n_days = max(1, len(ctx.days) // 2)
    tpr = {"storm": 0.0, "nugache": 0.0, "waledac": 0.0}
    fpr_sum = 0.0
    for day in ctx.days[:n_days]:
        campus = ctx.campus_day(day)
        overlaid = overlay_traces(
            campus,
            [ctx.storm_trace(), ctx.nugache_trace(), waledac],
            substream(ctx.config.seed, "waledac-overlay", day),
        )
        result = find_plotters(
            overlaid.store, hosts=campus.all_hosts, config=ctx.config.pipeline
        )
        all_plotters: Set[str] = overlaid.plotter_hosts
        negatives = campus.all_hosts - all_plotters
        fpr_sum += len(result.suspects & negatives) / len(negatives)
        for botnet in tpr:
            hosts = overlaid.plotters_of(botnet)
            tpr[botnet] += (
                len(result.suspects & hosts) / len(hosts) if hosts else 0.0
            )
    rates = {botnet: value / n_days for botnet, value in tpr.items()}
    fpr = fpr_sum / n_days
    rows = [[botnet, f"{value:.3f}"] for botnet, value in rates.items()]
    rows.append(["(FPR)", f"{fpr:.4f}"])
    table = render_table(
        f"Extension: unseen-family (Waledac) generalization "
        f"(mean over {n_days} days)",
        ["botnet", "TPR"],
        rows,
    )
    return WaledacResult(rates=rates, fpr=fpr, table=table)


@dataclass
class CombinedEvasionResult:
    """Detection and traffic overhead per evasion plan."""

    rows: Dict[str, Tuple[float, float, float]]  # plan -> (TPR, byte-oh, flow-oh)
    table: str


def run_ext_combined_evasion(ctx: ExperimentContext) -> CombinedEvasionResult:
    """A botmaster who evades every test at once — and what it costs.

    §VI prices each evasion separately; the realistic adversary pays
    all three at once.  Measured shape (EXPERIMENTS.md): the union
    S_vol ∪ S_churn makes single-metric evasion worthless (the bot pays
    +300% upload for nothing), timing jitter is the decisive component,
    and small churn pads dilute a simultaneous volume evasion (the
    ``pad_bytes`` knob prices the repair).  Escaping everything costs a
    >10× upload overhead plus scanning-like padding, chosen against
    thresholds the bot cannot observe — the §VI argument, priced end to
    end.
    """
    from ..evasion.combined import EvasionPlan, apply_evasion_plan
    from ..netsim.addressing import AddressSpace

    plans = {
        "none": EvasionPlan(),
        "volume-only x4": EvasionPlan(volume_factor=4.0),
        "churn-only 0.85": EvasionPlan(churn_target=0.85),
        "jitter-only 10m": EvasionPlan(jitter=600.0),
        # Naive composition: the three §VI evasions applied together
        # with their individually-sufficient settings; its tiny churn
        # pads partially undo the volume evasion.
        "all-naive": EvasionPlan(
            volume_factor=4.0, churn_target=0.85, jitter=600.0
        ),
        # Tuned composition: large pad flows (so padding does not undo
        # the volume evasion) and hours-scale jitter.  Expensive, and
        # the settings require knowledge the bot does not have (§VI).
        "all-tuned": EvasionPlan(
            volume_factor=8.0, churn_target=0.85, jitter=7200.0,
            pad_bytes=2000,
        ),
    }
    n_days = max(1, len(ctx.days) // 4)
    rows: Dict[str, Tuple[float, float, float]] = {}
    for label, plan in plans.items():
        tpr_sum = 0.0
        byte_oh = flow_oh = 0.0
        for day in ctx.days[:n_days]:
            campus = ctx.campus_day(day)
            space = AddressSpace()  # fresh pad-address pool per run
            rng = substream(ctx.config.seed, "combined", day, label)
            evaded, cost = apply_evasion_plan(
                ctx.storm_trace(), plan, rng, space.random_external,
                horizon=campus.window,
            )
            overlaid = overlay_traces(
                campus, [evaded], substream(ctx.config.seed, "overlay", day)
            )
            result = find_plotters(
                overlaid.store, hosts=campus.all_hosts,
                config=ctx.config.pipeline,
            )
            plotters = overlaid.plotter_hosts
            tpr_sum += len(result.suspects & plotters) / len(plotters)
            byte_oh += cost.upload_overhead
            flow_oh += cost.flow_overhead
        rows[label] = (tpr_sum / n_days, byte_oh / n_days, flow_oh / n_days)
    table_rows = [
        [label, f"{tpr:.3f}", f"{b:+.1%}", f"{f:+.1%}"]
        for label, (tpr, b, f) in rows.items()
    ]
    table = render_table(
        f"Extension: combined evasion — Storm detection vs traffic cost "
        f"(mean over {n_days} days)",
        ["plan", "storm TPR", "upload overhead", "flow overhead"],
        table_rows,
    )
    return CombinedEvasionResult(rows=rows, table=table)
