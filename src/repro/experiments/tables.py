"""Plain-text table rendering for experiment output.

Every figure runner returns structured data plus a table; the harness
prints the same rows/series the paper's figures show, so paper-vs-
measured comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table with a title line."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        if len(row) != len(header):
            raise ValueError(
                f"row arity {len(row)} does not match header {len(header)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str, points: Sequence[tuple], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as a two-column table."""
    return render_table(
        title, [x_label, y_label], [(f"{x:g}", f"{y:.4f}") for x, y in points]
    )
