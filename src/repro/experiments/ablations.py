"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation replaces one component of the pipeline and re-measures
the Figure 9 headline numbers:

* **distance** — Earth Mover's Distance vs. a plain L1 histogram
  distance in θ_hm;
* **binning** — Freedman–Diaconis vs. fixed-width histograms, and
  log-scale vs. raw-seconds samples;
* **thresholds** — dynamic (percentile) vs. fixed absolute thresholds
  for θ_vol / θ_churn;
* **composition** — each test alone vs. the FindPlotters composition;
* **baselines** — TDG / volume-only / failed-connection-only detectors
  on the same traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..baselines.entropy import EntropyDetector
from ..baselines.failedconn import FailedConnDetector
from ..baselines.tdg import TdgDetector
from ..baselines.volume_only import VolumeOnlyDetector
from ..detection.churn import theta_churn
from ..detection.humanmachine import MIN_SAMPLES, host_histograms
from ..detection.pipeline import PipelineConfig, find_plotters
from ..detection.reduction import initial_data_reduction
from ..detection.volume import theta_vol
from ..flows.metrics import interstitial_times
from ..stats.clustering import agglomerate, cluster_diameter, cut_top_links
from ..stats.histogram import Histogram, build_histogram
from ..stats.thresholds import percentile_threshold
from .config import ExperimentContext
from .tables import render_table

__all__ = [
    "AblationResult",
    "run_ablation_distance",
    "run_ablation_binning",
    "run_ablation_thresholds",
    "run_ablation_composition",
    "run_baseline_comparison",
]


@dataclass
class AblationResult:
    """Variant → (storm TPR, nugache TPR, FPR) plus a rendered table."""

    name: str
    rates: Dict[str, Tuple[float, float, float]]
    table: str


def _score(
    ctx: ExperimentContext, day: int, selected: Set[str]
) -> Tuple[float, float, float]:
    """(storm TPR, nugache TPR, FPR over non-Plotters) for one day."""
    storm = ctx.plotters(day, "storm")
    nugache = ctx.plotters(day, "nugache")
    hosts = ctx.campus_day(day).all_hosts
    negatives = hosts - storm - nugache
    return (
        len(selected & storm) / len(storm) if storm else 0.0,
        len(selected & nugache) / len(nugache) if nugache else 0.0,
        len(selected & negatives) / len(negatives) if negatives else 0.0,
    )


def _averaged(
    ctx: ExperimentContext,
    variants: Dict[str, Callable[[int], Set[str]]],
    name: str,
) -> AblationResult:
    """Run each variant on every day and average the rates."""
    sums = {label: [0.0, 0.0, 0.0] for label in variants}
    n = len(ctx.days)
    for day in ctx.days:
        for label, runner in variants.items():
            tpr_s, tpr_n, fpr = _score(ctx, day, runner(day))
            acc = sums[label]
            acc[0] += tpr_s
            acc[1] += tpr_n
            acc[2] += fpr
    rates = {
        label: (acc[0] / n, acc[1] / n, acc[2] / n)
        for label, acc in sums.items()
    }
    rows = [
        [label, f"{s:.3f}", f"{g:.3f}", f"{f:.4f}"]
        for label, (s, g, f) in rates.items()
    ]
    table = render_table(
        f"Ablation: {name} (mean over {n} days)",
        ["variant", "storm TPR", "nugache TPR", "FPR"],
        rows,
    )
    return AblationResult(name=name, rates=rates, table=table)


# ----------------------------------------------------------------------
# θ_hm variants: shared machinery with a pluggable histogram/distance
# ----------------------------------------------------------------------
def _l1_distance(a: Histogram, b: Histogram) -> float:
    """L1 distance on a merged support — ignores *how far* mass moved."""
    support = sorted(set(a.centers) | set(b.centers))
    wa = dict(zip(a.centers, a.weights))
    wb = dict(zip(b.centers, b.weights))
    return sum(abs(wa.get(x, 0.0) - wb.get(x, 0.0)) for x in support)


def _fixed_bin_histogram(samples: List[float], width: float = 0.25) -> Histogram:
    """Fixed-width binning — the evasion-prone alternative to FD."""
    data = np.asarray(samples, dtype=float)
    lo = float(np.floor(data.min() / width) * width)
    hi = float(np.ceil(data.max() / width) * width) + width
    n_bins = max(1, int(round((hi - lo) / width)))
    counts, edges = np.histogram(data, bins=n_bins, range=(lo, hi))
    centers = (edges[:-1] + edges[1:]) / 2.0
    mask = counts > 0
    weights = counts[mask].astype(float)
    weights /= weights.sum()
    weights[-1] += 1.0 - weights.sum()
    return Histogram(
        centers=tuple(float(c) for c in centers[mask]),
        weights=tuple(float(w) for w in weights),
        bin_width=width,
    )


def _hm_selected(
    ctx: ExperimentContext,
    day: int,
    histogram_builder: Callable[[List[float]], Histogram],
    distance: Optional[Callable[[Histogram, Histogram], float]] = None,
    log_scale: bool = True,
) -> Set[str]:
    """θ_hm with pluggable binning/distance, on the day's usual input."""
    from ..stats.emd import emd_1d

    overlaid = ctx.overlaid_day(day)
    result = ctx.pipeline_result(day)
    union = sorted(result.union_vol_churn)
    metric = distance if distance is not None else emd_1d

    histograms: Dict[str, Histogram] = {}
    for host in union:
        samples = interstitial_times(overlaid.store.flows_from(host))
        if len(samples) < MIN_SAMPLES:
            continue
        if log_scale:
            samples = [float(np.log10(max(s, 1e-3))) for s in samples]
        histograms[host] = histogram_builder(samples)
    hosts = sorted(histograms)
    if len(hosts) < 2:
        return set(hosts)
    n = len(hosts)
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = metric(histograms[hosts[i]], histograms[hosts[j]])
            dist[i, j] = d
            dist[j, i] = d
    dend = agglomerate(dist, "average")
    members = cut_top_links(dend, ctx.config.pipeline.hm_cut_fraction)
    diameters = [cluster_diameter(dist, m) for m in members]
    threshold = percentile_threshold(diameters, ctx.config.pipeline.hm_percentile)
    return {
        hosts[i]
        for m, d in zip(members, diameters)
        if d <= threshold + 1e-9 and len(m) >= 2
        for i in m
    }


def run_ablation_distance(ctx: ExperimentContext) -> AblationResult:
    """EMD vs. L1 histogram distance in θ_hm.

    EMD respects the *geometry* of the time axis (mass moved 10 s costs
    less than mass moved 10 min); L1 only counts overlap, so hosts with
    near-miss timer peaks look maximally different.
    """
    return _averaged(
        ctx,
        {
            "emd": lambda day: _hm_selected(ctx, day, build_histogram),
            "l1": lambda day: _hm_selected(
                ctx, day, build_histogram, distance=_l1_distance
            ),
        },
        "EMD vs L1 distance",
    )


def run_ablation_binning(ctx: ExperimentContext) -> AblationResult:
    """Freedman–Diaconis vs. fixed bins; log-scale vs. raw seconds."""
    return _averaged(
        ctx,
        {
            "fd-log (default)": lambda day: _hm_selected(ctx, day, build_histogram),
            "fixed-log": lambda day: _hm_selected(
                ctx, day, _fixed_bin_histogram
            ),
            "fd-raw (paper-literal)": lambda day: _hm_selected(
                ctx, day, build_histogram, log_scale=False
            ),
        },
        "histogram binning",
    )


def run_ablation_thresholds(ctx: ExperimentContext) -> AblationResult:
    """Dynamic percentile thresholds vs. fixed absolute ones.

    The fixed variant freezes day 0's thresholds and reuses them on
    every later day — what an operator without the paper's dynamic
    scheme would do, and what a Plotter could learn and evade.
    """
    day0 = ctx.pipeline_result(ctx.days[0])
    fixed_vol = day0.volume.threshold
    fixed_churn = day0.churn.threshold

    def dynamic(day: int) -> Set[str]:
        return ctx.pipeline_result(day).suspects

    def fixed(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        hosts = ctx.campus_day(day).all_hosts
        reduced = initial_data_reduction(overlaid.store, hosts).selected_set
        from ..stats.thresholds import select_below
        from ..detection.volume import volume_metric
        from ..detection.churn import churn_metric
        from ..detection.humanmachine import theta_hm

        vol_sel = select_below(volume_metric(overlaid.store, reduced), fixed_vol)
        churn_sel = select_below(churn_metric(overlaid.store, reduced), fixed_churn)
        hm = theta_hm(
            overlaid.store,
            vol_sel | churn_sel,
            percentile=ctx.config.pipeline.hm_percentile,
            cut_fraction=ctx.config.pipeline.hm_cut_fraction,
        )
        return hm.selected_set

    return _averaged(
        ctx,
        {"dynamic (paper)": dynamic, "fixed-day0": fixed},
        "dynamic vs fixed thresholds",
    )


def run_ablation_composition(ctx: ExperimentContext) -> AblationResult:
    """Each test alone vs. the FindPlotters composition.

    Reproduces the paper's core claim: any single test is far too
    coarse; only the composition concentrates on Plotters.
    """

    def volume_alone(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        hosts = ctx.campus_day(day).all_hosts
        reduced = initial_data_reduction(overlaid.store, hosts).selected_set
        return theta_vol(overlaid.store, reduced).selected_set

    def churn_alone(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        hosts = ctx.campus_day(day).all_hosts
        reduced = initial_data_reduction(overlaid.store, hosts).selected_set
        return theta_churn(overlaid.store, reduced).selected_set

    def composition(day: int) -> Set[str]:
        return ctx.pipeline_result(day).suspects

    return _averaged(
        ctx,
        {
            "volume alone": volume_alone,
            "churn alone": churn_alone,
            "FindPlotters": composition,
        },
        "single tests vs composition",
    )


def run_baseline_comparison(ctx: ExperimentContext) -> AblationResult:
    """FindPlotters vs. the baseline detectors on identical traffic.

    The baselines find *P2P hosts* (or noisy hosts); only FindPlotters
    separates Plotters from Traders — visible as baseline FPRs an order
    of magnitude higher at comparable recall.
    """

    def tdg(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        flagged, _scores = TdgDetector().detect(
            overlaid.store, ctx.campus_day(day).all_hosts
        )
        return flagged

    def volume_only(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        return VolumeOnlyDetector().detect(
            overlaid.store, ctx.campus_day(day).all_hosts
        ).selected_set

    def failedconn(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        return FailedConnDetector().detect(
            overlaid.store, ctx.campus_day(day).all_hosts
        ).selected_set

    def entropy(day: int) -> Set[str]:
        overlaid = ctx.overlaid_day(day)
        return EntropyDetector().detect(
            overlaid.store, ctx.campus_day(day).all_hosts
        ).selected_set

    def findplotters(day: int) -> Set[str]:
        return ctx.pipeline_result(day).suspects

    return _averaged(
        ctx,
        {
            "tdg": tdg,
            "volume-only": volume_only,
            "failed-conn-only": failedconn,
            "timing-entropy": entropy,
            "FindPlotters": findplotters,
        },
        "baseline comparison",
    )
