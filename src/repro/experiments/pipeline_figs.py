"""Pipeline figures: Figures 9 and 10 of the paper.

* Figure 9 — the FindPlotters funnel: how many hosts of each class
  survive each stage, and the headline TP/FP rates.
* Figure 10 — CDF of per-bot flow counts for the Nugache bots that
  survive each stage, showing that the tests preferentially lose the
  least-communicative bots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..detection.report import DetectionReport, average_reports, evaluate_pipeline
from ..stats.bootstrap import bootstrap_mean_ci
from ..stats.ecdf import quantile_series
from .config import ExperimentContext
from .tables import render_table

__all__ = ["FunnelResult", "ActivityResult", "run_fig9_funnel", "run_fig10_nugache_activity"]

_STAGES = ("input", "reduction", "volume", "churn", "vol-or-churn", "hm")


@dataclass
class FunnelResult:
    """Per-day reports, their averages, and a rendered funnel table."""

    reports: List[DetectionReport]
    summary: Dict[str, float]
    table: str


@dataclass
class ActivityResult:
    """Flow-count quantiles of surviving Nugache bots per stage."""

    per_stage: Dict[str, List[int]]
    table: str


def day_report(ctx: ExperimentContext, day: int) -> DetectionReport:
    """Run FindPlotters on one day and score it against ground truth."""
    result = ctx.pipeline_result(day)
    return evaluate_pipeline(
        result,
        {
            "storm": ctx.plotters(day, "storm"),
            "nugache": ctx.plotters(day, "nugache"),
        },
        ctx.traders(day),
    )


def run_fig9_funnel(ctx: ExperimentContext) -> FunnelResult:
    """Figure 9: the staged funnel, averaged over all days.

    Expected shape: each stage alone is coarse; the composition drives
    non-Plotter survivors down sharply while Storm detection stays high
    and Nugache detection lands well below Storm (the paper's 87.50% /
    30% / 0.81% operating point).
    """
    reports = [day_report(ctx, day) for day in ctx.days]
    summary = average_reports(reports)

    stage_means: Dict[str, Dict[str, float]] = {}
    for stage_index, stage_name in enumerate(_STAGES):
        acc: Dict[str, float] = {}
        for report in reports:
            counts = report.stages[stage_index]
            acc["total"] = acc.get("total", 0.0) + counts.total
            for cls, value in counts.per_class.items():
                acc[cls] = acc.get(cls, 0.0) + value
        stage_means[stage_name] = {k: v / len(reports) for k, v in acc.items()}

    classes = ["total", "storm", "nugache", "trader"]
    rows = [
        [stage] + [f"{stage_means[stage].get(cls, 0.0):.1f}" for cls in classes]
        for stage in _STAGES
    ]
    table_funnel = render_table(
        f"Figure 9: hosts surviving each stage (mean over {len(reports)} days)",
        ["stage"] + classes,
        rows,
    )
    def ci(per_day):
        return bootstrap_mean_ci(per_day).format(3)

    table_summary = render_table(
        "Figure 9: headline rates (mean [90% bootstrap CI over days])",
        ["metric", "value"],
        [
            ["storm TPR", ci([r.tpr("storm") for r in reports])],
            ["nugache TPR", ci([r.tpr("nugache") for r in reports])],
            ["false positive rate", ci([r.false_positive_rate for r in reports])],
            ["trader survival", ci([r.trader_survival for r in reports])],
        ],
    )
    return FunnelResult(
        reports=reports,
        summary=summary,
        table=table_funnel + "\n\n" + table_summary,
    )


def run_fig10_nugache_activity(ctx: ExperimentContext) -> ActivityResult:
    """Figure 10: flow counts of Nugache bots surviving each stage.

    Expected shape: the distribution shifts right (toward busier bots)
    at every stage — quiet bots are the ones each test loses.
    """
    trace = ctx.nugache_trace()
    bot_flows = {bot: len(trace.store.flows_from(bot)) for bot in trace.bots}

    per_stage: Dict[str, List[int]] = {stage: [] for stage in _STAGES}
    for day in ctx.days:
        overlaid = ctx.overlaid_day(day)
        result = ctx.pipeline_result(day)
        host_of = {
            bot: host
            for bot, host in overlaid.assignments.items()
            if overlaid.botnet_of[bot] == "nugache"
        }
        stage_sets = {
            "input": set(result.input_hosts),
            "reduction": result.reduced_hosts,
            "volume": result.volume.selected_set,
            "churn": result.churn.selected_set,
            "vol-or-churn": result.union_vol_churn,
            "hm": result.suspects,
        }
        for stage, hosts in stage_sets.items():
            for bot, host in host_of.items():
                if host in hosts:
                    per_stage[stage].append(bot_flows[bot])

    rows = []
    for stage in _STAGES:
        counts = per_stage[stage]
        if counts:
            quantiles = quantile_series(
                [float(c) for c in counts], (0.1, 0.5, 0.9)
            )
            rows.append(
                [stage, str(len(counts))]
                + [f"{q:.0f}" for _p, q in quantiles]
            )
        else:
            rows.append([stage, "0", "-", "-", "-"])
    table = render_table(
        "Figure 10: flow counts of surviving Nugache bots "
        f"(accumulated over {len(ctx.days)} days)",
        ["stage", "bot-days", "p10 flows", "p50 flows", "p90 flows"],
        rows,
    )
    return ActivityResult(per_stage=per_stage, table=table)
