"""Experiment harness: one runner per figure of the paper's evaluation."""

from .config import ExperimentConfig, ExperimentContext, context_from_env
from .distributions import (
    DistributionResult,
    run_fig1_volume_cdf,
    run_fig2_new_ip_timeseries,
    run_fig3_interstitial,
    run_fig5_failed_conn_cdf,
)
from .roc import RocResult, run_fig6_roc_volume, run_fig7_roc_churn, run_fig8_roc_hm
from .pipeline_figs import (
    ActivityResult,
    FunnelResult,
    day_report,
    run_fig10_nugache_activity,
    run_fig9_funnel,
)
from .evasion_figs import (
    DEFAULT_JITTER_SWEEP,
    JitterResult,
    ThresholdGapResult,
    run_fig11_evasion_thresholds,
    run_fig12_jitter_decay,
)
from .ablations import (
    AblationResult,
    run_ablation_binning,
    run_ablation_composition,
    run_ablation_distance,
    run_ablation_thresholds,
    run_baseline_comparison,
)
from .sensitivity import (
    SensitivityResult,
    run_sensitivity_botnet_size,
    run_sensitivity_sampling,
    run_sensitivity_window,
)
from .extensions import (
    CombinedEvasionResult,
    run_ext_combined_evasion,
    TraderHostedResult,
    WaledacResult,
    run_ext_trader_hosted,
    run_ext_waledac,
)
from .paper_targets import PAPER_HEADLINE, ShapeCheck, check_headline, check_roc_shape
from .report_md import PAPER_EXPECTATIONS, build_report, write_report
from .tables import render_series, render_table
from .cli import EXPERIMENTS, main

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "context_from_env",
    "DistributionResult",
    "run_fig1_volume_cdf",
    "run_fig2_new_ip_timeseries",
    "run_fig3_interstitial",
    "run_fig5_failed_conn_cdf",
    "RocResult",
    "run_fig6_roc_volume",
    "run_fig7_roc_churn",
    "run_fig8_roc_hm",
    "ActivityResult",
    "FunnelResult",
    "day_report",
    "run_fig10_nugache_activity",
    "run_fig9_funnel",
    "DEFAULT_JITTER_SWEEP",
    "JitterResult",
    "ThresholdGapResult",
    "run_fig11_evasion_thresholds",
    "run_fig12_jitter_decay",
    "AblationResult",
    "run_ablation_binning",
    "run_ablation_composition",
    "run_ablation_distance",
    "run_ablation_thresholds",
    "run_baseline_comparison",
    "SensitivityResult",
    "run_sensitivity_botnet_size",
    "run_sensitivity_sampling",
    "run_sensitivity_window",
    "CombinedEvasionResult",
    "run_ext_combined_evasion",
    "TraderHostedResult",
    "WaledacResult",
    "run_ext_trader_hosted",
    "run_ext_waledac",
    "PAPER_HEADLINE",
    "ShapeCheck",
    "check_headline",
    "check_roc_shape",
    "PAPER_EXPECTATIONS",
    "build_report",
    "write_report",
    "render_series",
    "render_table",
    "EXPERIMENTS",
    "main",
]
