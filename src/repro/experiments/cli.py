"""Command-line entry point: run any experiment and print its table.

Usage::

    repro-experiments --list
    repro-experiments fig9
    repro-experiments fig6 fig7 fig8 --scale paper
    repro-experiments all --scale quick
    repro-experiments fig9 --metrics-out metrics.jsonl --prom-out metrics.prom
    repro-experiments fig9 --prom-port 9109 --ledger-dir runs/

Result tables go to stdout; progress diagnostics go to the namespaced
``repro.experiments`` logger on stderr (``--log-level`` adjusts it).
The shared telemetry flags (:func:`repro.obs.add_observability_args`)
switch the observability layer on for the run: ``--metrics-out``
streams spans as JSONL, ``--prom-out`` writes a Prometheus text file,
``--prom-port`` serves live ``/metrics`` while experiments run, and
``--ledger-dir`` records the run into the persistent ledger
(``repro-obs`` inspects it).  All outputs are flushed even when an
experiment crashes — the ledger then carries ``status="error"``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Callable, Dict

from .. import obs
from ..stats.emd import PAIRWISE_BACKENDS

from .ablations import (
    run_ablation_binning,
    run_ablation_composition,
    run_ablation_distance,
    run_ablation_thresholds,
    run_baseline_comparison,
)
from .config import ExperimentConfig, ExperimentContext
from .distributions import (
    run_fig1_volume_cdf,
    run_fig2_new_ip_timeseries,
    run_fig3_interstitial,
    run_fig5_failed_conn_cdf,
)
from .evasion_figs import run_fig11_evasion_thresholds, run_fig12_jitter_decay
from .extensions import (
    run_ext_combined_evasion,
    run_ext_trader_hosted,
    run_ext_waledac,
)
from .sensitivity import (
    run_sensitivity_botnet_size,
    run_sensitivity_sampling,
    run_sensitivity_window,
)
from .pipeline_figs import run_fig10_nugache_activity, run_fig9_funnel
from .plots import ascii_cdf, ascii_decay, ascii_xy
from .roc import RocResult, run_fig6_roc_volume, run_fig7_roc_churn, run_fig8_roc_hm

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": run_fig1_volume_cdf,
    "fig2": run_fig2_new_ip_timeseries,
    "fig3": run_fig3_interstitial,
    "fig5": run_fig5_failed_conn_cdf,
    "fig6": run_fig6_roc_volume,
    "fig7": run_fig7_roc_churn,
    "fig8": run_fig8_roc_hm,
    "fig9": run_fig9_funnel,
    "fig10": run_fig10_nugache_activity,
    "fig11": run_fig11_evasion_thresholds,
    "fig12": run_fig12_jitter_decay,
    "ablation-distance": run_ablation_distance,
    "ablation-binning": run_ablation_binning,
    "ablation-thresholds": run_ablation_thresholds,
    "ablation-composition": run_ablation_composition,
    "baselines": run_baseline_comparison,
    "ext-trader-hosted": run_ext_trader_hosted,
    "ext-waledac": run_ext_waledac,
    "ext-combined-evasion": run_ext_combined_evasion,
    "sensitivity-sampling": run_sensitivity_sampling,
    "sensitivity-botnet-size": run_sensitivity_botnet_size,
    "sensitivity-window": run_sensitivity_window,
}


def main(argv=None) -> int:
    """Parse arguments, run the requested experiments, print tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation figures of 'Are Your Hosts Trading "
            "or Plotting?' (Yen & Reiter, ICDCS 2010) on synthetic traffic."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="campus size: quick (~10%% scale) or paper (full size)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII figure where the result supports one",
    )
    obs.add_observability_args(parser)
    parser.add_argument(
        "--log-level",
        default="INFO",
        help="level for the repro.* diagnostic logger (default INFO)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes for pipeline feature extraction "
            "(0 = in-process; results are identical for any setting)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist per-shard extraction checkpoints to this directory",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip extraction shards whose checkpoint is intact",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help=(
            "make pipeline stage failures fatal instead of stepping "
            "down the fallback ladder (parallel extraction -> "
            "sequential, pruned/vectorized theta_hm -> loop)"
        ),
    )
    parser.add_argument(
        "--hm-backend",
        choices=PAIRWISE_BACKENDS,
        default=None,
        help=(
            "pairwise-EMD engine for theta_hm (default auto, which "
            "escalates loop -> vectorized -> parallel -> pruned by "
            "population size; all engines yield identical suspects)"
        ),
    )
    parser.add_argument(
        "--hm-exact",
        action="store_true",
        help=(
            "forbid the pruned theta_hm engine (auto then stops "
            "escalating at parallel) — the exactness escape hatch"
        ),
    )
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        help=(
            "spool each pipeline run's flows into a segment store under "
            "DIR and extract features from disk (bounded memory; "
            "identical results)"
        ),
    )
    parser.add_argument(
        "--segment-rows",
        type=int,
        metavar="N",
        help="segment cut threshold for --store-dir (default 262144 rows)",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.segment_rows is not None and args.segment_rows < 1:
        parser.error("--segment-rows must be >= 1")
    logger = obs.configure_logging(level=args.log_level).getChild("experiments")

    if args.list or not args.experiments:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    config = (
        ExperimentConfig.paper() if args.scale == "paper" else ExperimentConfig.quick()
    )
    if (
        args.workers
        or args.checkpoint_dir
        or args.no_degrade
        or args.store_dir
        or args.hm_backend
        or args.hm_exact
    ):
        overrides = dict(
            n_workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            degrade=not args.no_degrade,
            store_dir=args.store_dir,
            hm_exact=args.hm_exact,
        )
        if args.hm_backend is not None:
            overrides["hm_backend"] = args.hm_backend
        if args.segment_rows is not None:
            overrides["segment_rows"] = args.segment_rows
        config = dataclasses.replace(
            config,
            pipeline=dataclasses.replace(config.pipeline, **overrides),
        )
    ctx = ExperimentContext(config)
    # One ObsSession owns every telemetry output; its __exit__ runs on
    # success *and* on a crashed experiment, so --metrics-out/--prom-out
    # files and the ledger entry survive failures.
    session = obs.ObsSession.from_args(
        args,
        kind="experiments",
        config=config.pipeline,
        command=["repro-experiments", *(sys.argv[1:] if argv is None else argv)],
    )
    if args.metrics_out:
        logger.info("streaming span events to %s", args.metrics_out)
    timings = {}
    with session:
        for name in names:
            logger.info("running %s at scale=%s", name, args.scale)
            started = time.time()
            with obs.span("experiment", experiment=name, scale=args.scale):
                result = EXPERIMENTS[name](ctx)
            elapsed = time.time() - started
            timings[name] = round(elapsed, 3)
            print(result.table)
            if args.plot:
                figure = _ascii_figure(name, result)
                if figure is not None:
                    print()
                    print(figure)
            print(f"[{name} completed in {elapsed:.1f}s at scale={args.scale}]")
            print()
        session.annotate(
            experiments=names, scale=args.scale, timings_seconds=timings
        )
    if args.prom_out:
        logger.info("wrote Prometheus exposition to %s", args.prom_out)
    return 0


def _ascii_figure(name: str, result) -> "str | None":
    """An ASCII rendering for results with a natural plot form."""
    from .distributions import DistributionResult
    from .evasion_figs import JitterResult

    if isinstance(result, DistributionResult) and name in ("fig1", "fig5"):
        return ascii_cdf(
            result.series,
            title=f"{name}: per-host CDF",
            x_label="bytes/flow" if name == "fig1" else "failed fraction",
            log_x=(name == "fig1"),
        )
    if isinstance(result, RocResult):
        return ascii_xy(
            {
                botnet: [(fpr, tpr) for _pct, tpr, fpr in points]
                for botnet, points in result.points.items()
            },
            title=f"{name}: ROC",
            x_label="FPR",
            y_label="TPR",
        )
    if isinstance(result, JitterResult):
        return ascii_decay(result.points, title=f"{name}: TPR vs jitter")
    return None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
