"""Shared experiment configuration and cached computation context.

Every figure runner draws from the same synthetic world: eight campus
days, one Storm honeynet trace, one Nugache honeynet trace, and a
per-day overlay — mirroring §V, where a single 24-hour bot trace is
re-overlaid onto each day of CMU traffic.  :class:`ExperimentContext`
builds these lazily and caches them, so a session that runs all twelve
experiments synthesises each day exactly once.

Two scales are provided: ``paper()`` (the full-size campus the headline
numbers are calibrated on) and ``quick()`` (a ~10× smaller campus for
tests and smoke runs; same structure, noisier numbers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..datasets.campus import CampusConfig, CampusDay, build_campus_day
from ..datasets.groundtruth import identify_traders
from ..datasets.honeynet import (
    HoneynetTrace,
    capture_nugache_trace,
    capture_storm_trace,
)
from ..datasets.overlay import OverlaidDay, overlay_traces
from ..detection.pipeline import PipelineConfig, PipelineResult, find_plotters
from ..netsim.rng import substream

__all__ = ["ExperimentConfig", "ExperimentContext", "context_from_env"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and seeding of one experiment session."""

    campus: CampusConfig = field(default_factory=CampusConfig)
    n_days: int = 8
    storm_bots: int = 13
    nugache_bots: int = 82
    seed: int = 2007
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Full scale: the configuration the headline numbers use."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A ~4× smaller campus, two days — for smoke runs.

        Structure and qualitative shapes survive at this scale; the
        absolute rates are noisier than at :meth:`paper` scale (fewer
        hosts per cluster, fewer bots per botnet).
        """
        return cls(
            campus=CampusConfig().scaled(0.5),
            n_days=2,
            storm_bots=13,
            nugache_bots=40,
        )

    @property
    def is_paper_scale(self) -> bool:
        """Whether this configuration is the full-size campus."""
        return self.campus.n_background >= 800


class ExperimentContext:
    """Lazily built, cached datasets and detection runs."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.is_paper_scale = config.is_paper_scale
        self._campus: Dict[int, CampusDay] = {}
        self._overlaid: Dict[int, OverlaidDay] = {}
        self._pipeline: Dict[int, PipelineResult] = {}
        self._traders: Dict[int, Dict[str, str]] = {}
        self._storm: Optional[HoneynetTrace] = None
        self._nugache: Optional[HoneynetTrace] = None

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    @property
    def days(self) -> List[int]:
        """The day indices of this session."""
        return list(range(self.config.n_days))

    def campus_day(self, day: int) -> CampusDay:
        """The background+Trader traffic of one day (cached)."""
        if day not in self._campus:
            self._campus[day] = build_campus_day(self.config.campus, day)
        return self._campus[day]

    def storm_trace(self) -> HoneynetTrace:
        """The Storm honeynet trace (captured once, reused every day)."""
        if self._storm is None:
            self._storm = capture_storm_trace(
                seed=self.config.seed,
                n_bots=self.config.storm_bots,
                window=self.config.campus.window,
            )
        return self._storm

    def nugache_trace(self) -> HoneynetTrace:
        """The Nugache honeynet trace (captured once, reused every day)."""
        if self._nugache is None:
            self._nugache = capture_nugache_trace(
                seed=self.config.seed,
                n_bots=self.config.nugache_bots,
                window=self.config.campus.window,
            )
        return self._nugache

    def overlaid_day(self, day: int) -> OverlaidDay:
        """One campus day with both bot traces implanted (cached)."""
        if day not in self._overlaid:
            self._overlaid[day] = overlay_traces(
                self.campus_day(day),
                [self.storm_trace(), self.nugache_trace()],
                substream(self.config.seed, "overlay", day),
            )
        return self._overlaid[day]

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def traders(self, day: int) -> Set[str]:
        """Payload-labelled Trader hosts of one day (cached)."""
        if day not in self._traders:
            campus = self.campus_day(day)
            self._traders[day] = identify_traders(campus.store, campus.all_hosts)
        return set(self._traders[day])

    def plotters(self, day: int, botnet: str) -> Set[str]:
        """Hosts carrying an implanted bot of ``botnet`` on ``day``."""
        return self.overlaid_day(day).plotters_of(botnet)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def pipeline_result(self, day: int) -> PipelineResult:
        """FindPlotters on the overlaid day at the default thresholds."""
        if day not in self._pipeline:
            overlaid = self.overlaid_day(day)
            self._pipeline[day] = find_plotters(
                overlaid.store,
                hosts=self.campus_day(day).all_hosts,
                config=self.config.pipeline,
            )
        return self._pipeline[day]


def context_from_env() -> ExperimentContext:
    """Build a context from the ``REPRO_SCALE`` environment variable.

    ``REPRO_SCALE=paper`` selects the full-size configuration; anything
    else (including unset) selects the quick one.  Benchmarks use this
    so CI smoke runs stay fast while a full reproduction is one
    environment variable away.
    """
    scale = os.environ.get("REPRO_SCALE", "quick").lower()
    if scale == "paper":
        return ExperimentContext(ExperimentConfig.paper())
    return ExperimentContext(ExperimentConfig.quick())
