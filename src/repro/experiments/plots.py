"""Terminal plots: ASCII renderings of the paper's figure types.

The experiment tables give exact numbers; these helpers give the same
data the *visual* form the paper's figures have — CDF staircases, ROC
scatter, decay curves — without any plotting dependency, so `repro-
experiments` output is readable at a glance over ssh.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats.ecdf import ecdf

__all__ = ["ascii_cdf", "ascii_xy", "ascii_decay"]

#: Glyphs assigned to series, in order.
_GLYPHS = "ox+*#@%&"


def _canvas(width: int, height: int) -> List[List[str]]:
    return [[" "] * width for _ in range(height)]


def _render(
    canvas: List[List[str]],
    title: str,
    x_label: str,
    y_label: str,
    x_lo: float,
    x_hi: float,
    legend: Sequence[Tuple[str, str]],
) -> str:
    height = len(canvas)
    lines = [title]
    for row_index, row in enumerate(canvas):
        y_value = 1.0 - row_index / (height - 1) if height > 1 else 1.0
        prefix = f"{y_value:4.2f} |" if row_index % 2 == 0 else "     |"
        lines.append(prefix + "".join(row))
    width = len(canvas[0]) if canvas else 0
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_lo:<12g}{x_label:^{max(width - 24, 1)}}{x_hi:>10g}")
    lines.append(
        "      legend: "
        + "  ".join(f"{glyph}={name}" for name, glyph in legend)
        + f"   (y: {y_label})"
    )
    return "\n".join(lines)


def _plot_points(
    series: Dict[str, List[Tuple[float, float]]],
    title: str,
    x_label: str,
    y_label: str,
    width: int,
    height: int,
    log_x: bool,
) -> str:
    """Shared scatter renderer over unit-scaled y in [0, 1]."""
    xs = [x for pts in series.values() for x, _y in pts]
    if not xs:
        raise ValueError("nothing to plot")
    x_lo, x_hi = min(xs), max(xs)
    if log_x:
        floor = min(x for x in xs if x > 0) if any(x > 0 for x in xs) else 1.0
        x_lo = max(x_lo, floor)

    def x_to_col(x: float) -> int:
        if x_hi == x_lo:
            return 0
        if log_x:
            x = max(x, x_lo)
            frac = (math.log10(x) - math.log10(x_lo)) / (
                math.log10(x_hi) - math.log10(x_lo)
            )
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    canvas = _canvas(width, height)
    legend = []
    for index, (name, points) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append((name, glyph))
        for x, y in points:
            y = min(1.0, max(0.0, y))
            row = min(height - 1, max(0, int(round((1.0 - y) * (height - 1)))))
            canvas[row][x_to_col(x)] = glyph
    return _render(canvas, title, x_label, y_label, x_lo, x_hi, legend)


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    title: str,
    x_label: str = "value",
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
) -> str:
    """Render per-dataset CDFs (the Figure 1 / Figure 5 form)."""
    staircases = {
        name: ecdf(list(values))
        for name, values in series.items()
        if len(values) > 0
    }
    return _plot_points(
        staircases, title, x_label, "cumulative fraction", width, height, log_x
    )


def ascii_xy(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str,
    x_label: str,
    y_label: str,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
) -> str:
    """Render (x, y∈[0,1]) series — ROC sweeps, decay curves."""
    return _plot_points(
        {name: list(points) for name, points in series.items()},
        title,
        x_label,
        y_label,
        width,
        height,
        log_x,
    )


def ascii_decay(
    points: Dict[str, Sequence[Tuple[float, float]]],
    title: str,
    x_label: str = "jitter d (s)",
) -> str:
    """Render the Figure 12 decay-curve form (log x-axis)."""
    return ascii_xy(
        points, title, x_label, "TPR", log_x=True
    )
