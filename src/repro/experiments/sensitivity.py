"""Sensitivity studies: robustness axes the paper leaves open.

* **flow sampling** — detection quality when the border keeps only a
  1-in-N sample of flows (uniform and host-consistent sampling);
* **botnet size** — detection as the number of implanted Storm bots
  shrinks (θ_hm needs a *population* of similar bots to cluster);
* **window length** — detection as the observation window D shrinks
  from the paper's six hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..datasets.campus import build_campus_day
from ..datasets.honeynet import capture_storm_trace
from ..datasets.overlay import overlay_traces
from ..detection.pipeline import find_plotters
from ..flows.sampling import sample_per_host, sample_uniform
from ..flows.store import FlowStore
from ..netsim.rng import substream
from .config import ExperimentContext
from .tables import render_table

__all__ = [
    "SensitivityResult",
    "run_sensitivity_sampling",
    "run_sensitivity_botnet_size",
    "run_sensitivity_window",
]


@dataclass
class SensitivityResult:
    """Swept parameter → (storm TPR, nugache TPR, FPR)."""

    name: str
    rates: Dict[str, Tuple[float, float, float]]
    table: str


def _score_day(ctx: ExperimentContext, day: int, store: FlowStore, window=None):
    campus = ctx.campus_day(day)
    overlaid = ctx.overlaid_day(day)
    result = find_plotters(store, hosts=campus.all_hosts, config=ctx.config.pipeline)
    storm = overlaid.plotters_of("storm")
    nugache = overlaid.plotters_of("nugache")
    negatives = campus.all_hosts - storm - nugache
    return (
        len(result.suspects & storm) / len(storm),
        len(result.suspects & nugache) / len(nugache),
        len(result.suspects & negatives) / len(negatives),
    )


def _render(name: str, rates: Dict[str, Tuple[float, float, float]], n_days: int) -> str:
    rows = [
        [label, f"{s:.3f}", f"{n:.3f}", f"{f:.4f}"]
        for label, (s, n, f) in rates.items()
    ]
    return render_table(
        f"Sensitivity: {name} (mean over {n_days} days)",
        ["setting", "storm TPR", "nugache TPR", "FPR"],
        rows,
    )


def run_sensitivity_sampling(
    ctx: ExperimentContext,
    rates: Tuple[float, ...] = (1.0, 0.5, 0.25, 0.1),
) -> SensitivityResult:
    """Detection under 1-in-N flow sampling.

    Measured shape (see EXPERIMENTS.md): *uniform* sampling degrades
    gently — a chatty bot's periodicity survives thinning (a 1-in-10
    sample of 6,000 periodic flows is still 600 periodic flows) — while
    *host-consistent* sampling is all-or-nothing per host, so at rate r
    it silently discards ≈(1−r) of the bots outright.  For this
    detector, packet-budget-limited operators should prefer uniform
    flow sampling.
    """
    n_days = max(1, len(ctx.days) // 2)
    out: Dict[str, List[float]] = {}
    for rate in rates:
        for strategy in ("uniform", "per-host"):
            label = f"{strategy}@{rate:g}"
            acc = out.setdefault(label, [0.0, 0.0, 0.0])
            for day in ctx.days[:n_days]:
                store = ctx.overlaid_day(day).store
                if strategy == "uniform":
                    sampled = sample_uniform(
                        store, rate, substream(ctx.config.seed, "samp", day, str(rate))
                    )
                else:
                    sampled = sample_per_host(store, rate, salt=day)
                s, n, f = _score_day(ctx, day, sampled)
                acc[0] += s
                acc[1] += n
                acc[2] += f
    rates_out = {
        label: (acc[0] / n_days, acc[1] / n_days, acc[2] / n_days)
        for label, acc in out.items()
    }
    return SensitivityResult(
        name="flow sampling",
        rates=rates_out,
        table=_render("flow sampling", rates_out, n_days),
    )


def run_sensitivity_botnet_size(
    ctx: ExperimentContext,
    sizes: Tuple[int, ...] = (13, 8, 4, 2),
) -> SensitivityResult:
    """Detection as the Storm botnet shrinks.

    Expected shape: θ_hm's power comes from *similarity between bots*;
    with only a couple of bots in the network the cluster evidence
    thins and detection decays — a structural property the paper's
    13-bot trace cannot show.
    """
    n_days = max(1, len(ctx.days) // 2)
    out: Dict[str, Tuple[float, float, float]] = {}
    for size in sizes:
        trace = capture_storm_trace(
            seed=ctx.config.seed, n_bots=size, window=ctx.config.campus.window
        )
        acc = [0.0, 0.0]
        for day in ctx.days[:n_days]:
            campus = ctx.campus_day(day)
            overlaid = overlay_traces(
                campus, [trace], substream(ctx.config.seed, "size", day, size)
            )
            result = find_plotters(
                overlaid.store, hosts=campus.all_hosts, config=ctx.config.pipeline
            )
            storm = overlaid.plotter_hosts
            negatives = campus.all_hosts - storm
            acc[0] += len(result.suspects & storm) / len(storm)
            acc[1] += len(result.suspects & negatives) / len(negatives)
        out[f"{size} bots"] = (acc[0] / n_days, 0.0, acc[1] / n_days)
    return SensitivityResult(
        name="botnet size",
        rates=out,
        table=_render("botnet size (storm only)", out, n_days),
    )


def run_sensitivity_window(
    ctx: ExperimentContext,
    fractions: Tuple[float, ...] = (1.0, 0.5, 0.25),
) -> SensitivityResult:
    """Detection as the observation window D shrinks.

    Expected shape: shorter windows starve the churn metric (its
    one-hour grace period eats a growing share of D) and thin the
    interstitial samples, degrading detection — quantifying the paper's
    implicit choice of a six-hour window.
    """
    n_days = max(1, len(ctx.days) // 2)
    window = ctx.config.campus.window
    out: Dict[str, Tuple[float, float, float]] = {}
    for fraction in fractions:
        horizon = window * fraction
        acc = [0.0, 0.0, 0.0]
        for day in ctx.days[:n_days]:
            overlaid = ctx.overlaid_day(day)
            clipped = overlaid.store.between(0.0, horizon)
            s, n, f = _score_day(ctx, day, clipped)
            acc[0] += s
            acc[1] += n
            acc[2] += f
        out[f"D={fraction:g}x"] = (
            acc[0] / n_days,
            acc[1] / n_days,
            acc[2] / n_days,
        )
    return SensitivityResult(
        name="window length",
        rates=out,
        table=_render("window length", out, n_days),
    )
