"""Keyed, prefix-preserving IP address anonymization.

The CMU dataset the paper uses was *anonymized* before analysis (§III),
which only works because every quantity the detector consumes is
invariant under a consistent relabeling of addresses.  This module
provides such a relabeling — a deterministic, keyed, prefix-preserving
pseudonymization in the spirit of Crypto-PAn: two addresses sharing a
k-octet prefix map to pseudonyms sharing a k-octet prefix, so subnet
structure (internal vs. external, /16 membership) survives while the
concrete addresses do not.

The detection-invariance property is verified by the test suite: the
FindPlotters output on anonymized traffic is exactly the anonymized
output on the original traffic.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import replace
from typing import Dict, Iterable, List

from .record import FlowRecord
from .store import FlowStore

__all__ = ["Anonymizer"]


class Anonymizer:
    """Deterministic prefix-preserving address pseudonymizer.

    Each octet is substituted through a keyed permutation of 0..255
    whose key depends on the preceding (already-anonymized-input)
    prefix, giving the prefix-preserving property.  The mapping is
    stateless and repeatable: the same key always yields the same
    pseudonyms, so multi-day analyses keep host identities consistent.
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("anonymization key must be non-empty")
        self._key = key
        self._octet_cache: Dict[str, List[int]] = {}
        self._address_cache: Dict[str, str] = {}

    def _permutation(self, prefix: str) -> List[int]:
        """The octet permutation used at position ``prefix``."""
        table = self._octet_cache.get(prefix)
        if table is None:
            digest = hmac.new(
                self._key, f"prefix:{prefix}".encode(), hashlib.sha256
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            # Fisher–Yates with a simple deterministic LCG on the seed.
            table = list(range(256))
            state = seed or 1
            for i in range(255, 0, -1):
                state = (state * 6364136223846793005 + 1442695040888963407) % (
                    1 << 64
                )
                j = state % (i + 1)
                table[i], table[j] = table[j], table[i]
            self._octet_cache[prefix] = table
        return table

    def anonymize_address(self, address: str) -> str:
        """Pseudonymize one dotted-quad address."""
        cached = self._address_cache.get(address)
        if cached is not None:
            return cached
        octets = address.split(".")
        if len(octets) != 4:
            raise ValueError(f"not a dotted-quad address: {address!r}")
        out: List[str] = []
        prefix = ""
        for octet_text in octets:
            octet = int(octet_text)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {address!r}")
            out.append(str(self._permutation(prefix)[octet]))
            prefix = f"{prefix}.{octet_text}"
        result = ".".join(out)
        self._address_cache[address] = result
        return result

    def anonymize_flow(self, flow: FlowRecord) -> FlowRecord:
        """Pseudonymize both endpoints of one flow."""
        return replace(
            flow,
            src=self.anonymize_address(flow.src),
            dst=self.anonymize_address(flow.dst),
        )

    def anonymize_store(self, store: FlowStore) -> FlowStore:
        """Pseudonymize an entire trace."""
        return FlowStore(self.anonymize_flow(f) for f in store)

    def anonymize_hosts(self, hosts: Iterable[str]) -> List[str]:
        """Pseudonymize a host list (e.g. the internal host set)."""
        return [self.anonymize_address(h) for h in hosts]
