"""Convenience predicates and selectors over flow stores.

These helpers express the host/time scoping the paper's evaluation needs:
restricting Λ to internal hosts, to a detection window D, or to hosts that
were active (initiated successful flows) within the window.
"""

from __future__ import annotations

from typing import Callable, Iterable, Set

from .record import FlowRecord, Protocol
from .store import FlowStore

__all__ = [
    "is_internal",
    "internal_initiators",
    "active_hosts",
    "tcp_udp_only",
    "restrict_window",
    "by_destination_port",
]


def is_internal(address: str, prefixes: Iterable[str]) -> bool:
    """Whether ``address`` falls inside one of the internal prefixes.

    Prefixes are dotted string prefixes such as ``"10.1."`` — sufficient
    for the /16-style internal subnets the paper's vantage point covers.
    """
    return any(address.startswith(p) for p in prefixes)


def internal_initiators(store: FlowStore, prefixes: Iterable[str]) -> Set[str]:
    """Internal hosts that initiated at least one flow in the store."""
    prefix_list = list(prefixes)
    return {h for h in store.initiators if is_internal(h, prefix_list)}


def active_hosts(store: FlowStore) -> Set[str]:
    """Hosts that initiated at least one *successful* flow (§V-A)."""
    active: Set[str] = set()
    for host in store.initiators:
        if any(not f.failed for f in store.flows_from(host)):
            active.add(host)
    return active


def tcp_udp_only(store: FlowStore) -> FlowStore:
    """Restrict to TCP and UDP flows (the paper's protocol scope, §III)."""
    return store.filter(lambda f: f.proto in (Protocol.TCP, Protocol.UDP))


def restrict_window(store: FlowStore, t0: float, t1: float) -> FlowStore:
    """Restrict to flows starting within ``[t0, t1)`` — the window D."""
    return store.between(t0, t1)


def by_destination_port(port: int) -> Callable[[FlowRecord], bool]:
    """Predicate selecting flows addressed to ``port``."""

    def predicate(flow: FlowRecord) -> bool:
        return flow.dport == port

    return predicate
