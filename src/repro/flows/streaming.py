"""One-pass, bounded-memory feature extraction for busy borders.

The paper's scalability pitch (§I, §VII) is that flow summaries let the
detector "scale to very busy networks" — CMU's border ran at ~5000
flows per second.  Batch feature extraction
(:mod:`repro.flows.metrics`) re-scans the stored trace per host; this
module provides the streaming counterpart an operator would actually
deploy: flows are consumed once, in any order of arrival, and per-host
state is bounded.

Exact state kept per host: flow/failure counters, uploaded-byte sum,
the destination set with first-contact times (needed exactly by the
churn metric), and per-destination *last* flow start (for interstitial
gaps).  The unbounded part — the interstitial samples themselves — is
replaced by reservoir sampling with a configurable cap, giving an
unbiased sample of the distribution θ_hm histograms are built from.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..obs import metrics as obs_metrics
from .metrics import (
    NEW_IP_GRACE_PERIOD,
    HostFeatures,
    new_fraction_from_first_contacts,
)
from .record import FlowRecord

__all__ = ["StreamingHostState", "StreamingFeatureExtractor"]

#: Default cap on retained interstitial samples per host.
DEFAULT_RESERVOIR = 4096

# Ingest telemetry (no-ops while repro.obs is disabled).  The rate
# gauge is refreshed every _RATE_REFRESH flows rather than per flow so
# a busy border pays one division per batch, not per record.
_FLOWS_INGESTED = obs_metrics.counter(
    "repro_flows_ingested_total",
    "Flows consumed by streaming feature extractors",
)
_INGEST_RATE = obs_metrics.gauge(
    "repro_flow_ingest_rate_per_s",
    "Wall-clock ingest throughput of the busiest extractor (flows/s)",
)
_FLOWS_SKIPPED = obs_metrics.counter(
    "repro_ingest_rows_skipped_total",
    "Malformed rows/records dropped by skip-mode ingestion",
)
_RATE_REFRESH = 1024


@dataclass
class StreamingHostState:
    """Accumulated per-host state (bounded except for the dest map)."""

    flow_count: int = 0
    successful: int = 0
    uploaded_bytes: int = 0
    first_activity: Optional[float] = None
    first_contact: Dict[str, float] = field(default_factory=dict)
    last_start: Dict[str, float] = field(default_factory=dict)
    reservoir: List[float] = field(default_factory=list)
    samples_seen: int = 0
    #: Incremented whenever the reservoir *contents* change (append or
    #: replacement).  Skipped samples leave it untouched, so downstream
    #: caches keyed on the version stay valid exactly as long as the
    #: host's interstitial sample set is unchanged.
    reservoir_version: int = 0


class StreamingFeatureExtractor:
    """Consume flows one at a time; emit per-host feature bundles.

    Flows may arrive out of order up to the granularity the detector
    cares about: first-contact times take the minimum seen, and
    interstitial gaps use absolute differences, so modest reordering
    (as produced by a real collector's export batching) does not skew
    the features.
    """

    def __init__(
        self,
        reservoir_size: int = DEFAULT_RESERVOIR,
        grace_period: float = NEW_IP_GRACE_PERIOD,
        seed: int = 0,
    ) -> None:
        if reservoir_size <= 0:
            raise ValueError("reservoir size must be positive")
        self.reservoir_size = reservoir_size
        self.grace_period = grace_period
        self._rng = random.Random(seed)
        self._hosts: Dict[str, StreamingHostState] = {}
        self._ingested = 0
        self._ingest_t0: Optional[float] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def update(self, flow: FlowRecord) -> None:
        """Account one flow to its initiator."""
        if obs_metrics.is_enabled():
            self._note_ingest()
        state = self._hosts.setdefault(flow.src, StreamingHostState())
        state.flow_count += 1
        if not flow.failed:
            state.successful += 1
        state.uploaded_bytes += flow.src_bytes
        if state.first_activity is None or flow.start < state.first_activity:
            state.first_activity = flow.start
        seen = state.first_contact.get(flow.dst)
        if seen is None or flow.start < seen:
            state.first_contact[flow.dst] = flow.start

        last = state.last_start.get(flow.dst)
        if last is not None:
            self._add_sample(state, abs(flow.start - last))
        state.last_start[flow.dst] = flow.start

    def update_many(self, flows, errors: str = "strict") -> int:
        """Account an iterable of flows; returns the number ingested.

        ``errors="skip"`` drops elements whose ingestion raises
        ``ValueError``/``TypeError``/``AttributeError`` (counting them
        in ``repro_ingest_rows_skipped_total``) instead of aborting a
        live feed over one malformed record; ``"strict"`` (the default)
        propagates the first error unchanged.
        """
        if errors not in ("strict", "skip"):
            raise ValueError(
                f"errors must be 'strict' or 'skip', got {errors!r}"
            )
        ingested = 0
        for flow in flows:
            try:
                self.update(flow)
            except (ValueError, TypeError, AttributeError):
                if errors == "strict":
                    raise
                _FLOWS_SKIPPED.inc()
                continue
            ingested += 1
        return ingested

    def _note_ingest(self) -> None:
        """Count one ingested flow; periodically refresh the rate gauge."""
        now = time.perf_counter()
        if self._ingest_t0 is None:
            self._ingest_t0 = now
        self._ingested += 1
        _FLOWS_INGESTED.inc()
        if self._ingested % _RATE_REFRESH == 0:
            elapsed = now - self._ingest_t0
            if elapsed > 0:
                _INGEST_RATE.set(self._ingested / elapsed)

    def _add_sample(self, state: StreamingHostState, gap: float) -> None:
        state.samples_seen += 1
        if len(state.reservoir) < self.reservoir_size:
            state.reservoir.append(gap)
            state.reservoir_version += 1
            return
        # Vitter's algorithm R: replace with probability k/n.
        index = self._rng.randrange(state.samples_seen)
        if index < self.reservoir_size:
            state.reservoir[index] = gap
            state.reservoir_version += 1

    # ------------------------------------------------------------------
    # Read out
    # ------------------------------------------------------------------
    @property
    def hosts(self) -> Set[str]:
        """All initiators seen so far."""
        return set(self._hosts)

    def features(self, host: str) -> HostFeatures:
        """The feature bundle for one host.

        Raises ``KeyError`` for a host never seen.
        """
        state = self._hosts[host]
        dests = len(state.first_contact)
        if state.first_activity is not None:
            # One definition of the §IV-B churn metric, shared with the
            # batch extractor.
            new_fraction = new_fraction_from_first_contacts(
                state.first_contact, state.first_activity, self.grace_period
            )
        else:
            new_fraction = 0.0
        return HostFeatures(
            host=host,
            flow_count=state.flow_count,
            successful_flow_count=state.successful,
            avg_flow_size=(
                state.uploaded_bytes / state.flow_count
                if state.flow_count
                else 0.0
            ),
            failed_conn_rate=(
                (state.flow_count - state.successful) / state.flow_count
                if state.flow_count
                else 0.0
            ),
            new_ip_fraction=new_fraction,
            distinct_destinations=dests,
            interstitials=tuple(state.reservoir),
        )

    def all_features(self) -> Dict[str, HostFeatures]:
        """Feature bundles for every host seen."""
        # Read-out is a natural refresh point, so short streams (fewer
        # than _RATE_REFRESH flows) still report a throughput figure.
        if obs_metrics.is_enabled() and self._ingested:
            elapsed = time.perf_counter() - (self._ingest_t0 or 0.0)
            if elapsed > 0:
                _INGEST_RATE.set(self._ingested / elapsed)
        return {host: self.features(host) for host in self._hosts}

    def reservoir_version(self, host: str) -> int:
        """Version counter of the host's interstitial reservoir.

        Changes iff the reservoir contents changed; two calls returning
        the same value guarantee the sample set (and hence any histogram
        built from it) is unchanged.  Raises ``KeyError`` for a host
        never seen.
        """
        return self._hosts[host].reservoir_version

    def state_size(self, host: str) -> Tuple[int, int]:
        """(destination-map entries, reservoir entries) for one host."""
        state = self._hosts[host]
        return (len(state.first_contact), len(state.reservoir))
