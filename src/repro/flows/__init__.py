"""Flow-record substrate: the Argus-style bi-directional flow model.

This package provides the data the paper's detector consumes — flow
records, an indexed store, Argus-like serialization, per-host feature
extraction, and scoping filters.
"""

from .record import FlowRecord, FlowState, Protocol, PAYLOAD_SNIPPET_LEN
from .store import FlowStore
from .argus import read_flows, write_flows, dumps, loads
from .metrics import (
    HostFeatures,
    average_flow_size,
    extract_all_features,
    extract_features,
    failed_connection_rate,
    features_from_sorted_flows,
    interstitial_times,
    new_ip_fraction,
    new_ip_timeseries,
)
from .parallel import (
    ShardExtractionError,
    extract_features_parallel,
    plan_shards,
)
from .filters import (
    active_hosts,
    internal_initiators,
    is_internal,
    restrict_window,
    tcp_udp_only,
)
from .anonymize import Anonymizer
from .streaming import StreamingFeatureExtractor, StreamingHostState
from .sampling import sample_per_host, sample_uniform
from .assembly import DEFAULT_IDLE_TIMEOUT, FlowAssembler, PacketRecord

__all__ = [
    "FlowRecord",
    "FlowState",
    "Protocol",
    "PAYLOAD_SNIPPET_LEN",
    "FlowStore",
    "read_flows",
    "write_flows",
    "dumps",
    "loads",
    "HostFeatures",
    "average_flow_size",
    "failed_connection_rate",
    "new_ip_fraction",
    "new_ip_timeseries",
    "interstitial_times",
    "extract_features",
    "features_from_sorted_flows",
    "extract_all_features",
    "ShardExtractionError",
    "extract_features_parallel",
    "plan_shards",
    "active_hosts",
    "internal_initiators",
    "is_internal",
    "restrict_window",
    "tcp_udp_only",
    "Anonymizer",
    "StreamingFeatureExtractor",
    "StreamingHostState",
    "sample_per_host",
    "sample_uniform",
    "DEFAULT_IDLE_TIMEOUT",
    "FlowAssembler",
    "PacketRecord",
]
