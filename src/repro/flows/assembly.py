"""Assembling bi-directional flow records from packet headers.

This is the function Argus itself performs (§III): "Argus inspects each
packet and groups together those within the same connection into one
bi-directional record."  The reproduction's simulators emit flow
records directly, but a deployment consumes packets — so the substrate
includes the assembler:

* packets sharing a 5-tuple (in either direction — the bidirectional
  key is orientation-normalised) belong to one flow;
* the *initiator* is the endpoint that sent the first packet seen;
* a flow ends when it has been idle longer than the timeout (or when
  the assembler is flushed), after which the same 5-tuple starts a new
  record — Argus's idle-timeout semantics;
* the first payload bytes sent by the initiator become the record's
  64-byte snippet;
* the connection state is inferred from TCP flags: a flow whose
  initiator saw no answering packet is a ``TIMEOUT``; an answer that is
  a pure RST is ``REJECTED``; anything answered is ``ESTABLISHED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .record import PAYLOAD_SNIPPET_LEN, FlowRecord, FlowState, Protocol

__all__ = ["PacketRecord", "FlowAssembler", "DEFAULT_IDLE_TIMEOUT"]

#: Argus's default idle timeout for flow termination, in seconds.
DEFAULT_IDLE_TIMEOUT = 60.0

#: TCP flag bits (subset the assembler interprets).
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_ACK = 0x10


@dataclass(frozen=True)
class PacketRecord:
    """One observed packet header (plus leading payload bytes)."""

    src: str
    dst: str
    sport: int
    dport: int
    proto: Protocol
    timestamp: float
    length: int
    flags: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("packet length must be non-negative")


@dataclass
class _FlowState:
    """Accumulator for one in-progress bi-directional flow."""

    initiator: Tuple[str, int]
    responder: Tuple[str, int]
    proto: Protocol
    start: float
    last_seen: float
    fwd_bytes: int = 0
    rev_bytes: int = 0
    fwd_pkts: int = 0
    rev_pkts: int = 0
    saw_reverse: bool = False
    reverse_pure_rst: bool = False
    payload: bytes = b""

    def to_record(self) -> FlowRecord:
        if not self.saw_reverse:
            state = FlowState.TIMEOUT
        elif self.reverse_pure_rst:
            state = FlowState.REJECTED
        else:
            state = FlowState.ESTABLISHED
        return FlowRecord(
            src=self.initiator[0],
            dst=self.responder[0],
            sport=self.initiator[1],
            dport=self.responder[1],
            proto=self.proto,
            start=self.start,
            end=self.last_seen,
            src_bytes=self.fwd_bytes,
            dst_bytes=self.rev_bytes,
            src_pkts=self.fwd_pkts,
            dst_pkts=self.rev_pkts,
            state=state,
            payload=self.payload[:PAYLOAD_SNIPPET_LEN],
        )


def _flow_key(packet: PacketRecord):
    """Orientation-normalised 5-tuple."""
    a = (packet.src, packet.sport)
    b = (packet.dst, packet.dport)
    endpoints = (a, b) if a <= b else (b, a)
    return (endpoints, packet.proto)


class FlowAssembler:
    """Streaming packet → bi-directional flow record assembler.

    Feed packets in timestamp order via :meth:`add`; completed flows
    (idle past the timeout) are returned as they expire.  Call
    :meth:`flush` at end of capture for the remainder.
    """

    def __init__(self, idle_timeout: float = DEFAULT_IDLE_TIMEOUT) -> None:
        if idle_timeout <= 0:
            raise ValueError("idle timeout must be positive")
        self.idle_timeout = idle_timeout
        self._active: Dict[object, _FlowState] = {}
        self._clock: float = float("-inf")

    # ------------------------------------------------------------------
    def add(self, packet: PacketRecord) -> List[FlowRecord]:
        """Ingest one packet; return any flows that expired before it."""
        if packet.timestamp < self._clock:
            raise ValueError(
                "packets must be fed in non-decreasing timestamp order"
            )
        self._clock = packet.timestamp
        expired = self._expire(packet.timestamp)

        key = _flow_key(packet)
        state = self._active.get(key)
        if state is None:
            state = _FlowState(
                initiator=(packet.src, packet.sport),
                responder=(packet.dst, packet.dport),
                proto=packet.proto,
                start=packet.timestamp,
                last_seen=packet.timestamp,
            )
            self._active[key] = state

        forward = (packet.src, packet.sport) == state.initiator
        state.last_seen = packet.timestamp
        if forward:
            state.fwd_bytes += packet.length
            state.fwd_pkts += 1
            if len(state.payload) < PAYLOAD_SNIPPET_LEN and packet.payload:
                state.payload += packet.payload
        else:
            state.rev_bytes += packet.length
            state.rev_pkts += 1
            if not state.saw_reverse:
                state.saw_reverse = True
                state.reverse_pure_rst = bool(packet.flags & FLAG_RST) and not (
                    packet.flags & FLAG_ACK and packet.length > 0
                )
            elif state.reverse_pure_rst:
                # Any substantive later answer upgrades the verdict.
                state.reverse_pure_rst = bool(packet.flags & FLAG_RST)
        return expired

    def _expire(self, now: float) -> List[FlowRecord]:
        expired_keys = [
            key
            for key, state in self._active.items()
            if now - state.last_seen > self.idle_timeout
        ]
        records = []
        for key in expired_keys:
            records.append(self._active.pop(key).to_record())
        return records

    def flush(self) -> List[FlowRecord]:
        """Finalise every in-progress flow (end of capture)."""
        records = [state.to_record() for state in self._active.values()]
        self._active.clear()
        return sorted(records, key=lambda f: f.start)

    def assemble(self, packets: Iterable[PacketRecord]) -> List[FlowRecord]:
        """Convenience: run a whole packet stream and flush."""
        records: List[FlowRecord] = []
        for packet in packets:
            records.extend(self.add(packet))
        records.extend(self.flush())
        return sorted(records, key=lambda f: f.start)

    @property
    def active_flows(self) -> int:
        """Number of flows currently being assembled."""
        return len(self._active)
