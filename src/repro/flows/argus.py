"""Serialization of flow records to and from an Argus-like CSV format.

Argus (referenced in §III of the paper) emits textual flow summaries; this
module provides an equivalent on-disk representation so synthesised traces
can be captured once and replayed across experiments.  The column set
mirrors the fields the paper lists: addressing, protocol, timestamps,
per-direction packet/byte counts, connection state, and the 64-byte payload
snippet (hex-encoded).

Fault-tolerant ingest
---------------------
An eight-day border trace is millions of rows from a real collector —
some of them torn, truncated, or mis-encoded.  :func:`read_flows` and
:func:`loads` therefore take an ``errors`` policy:

* ``"strict"`` (the default) — the first malformed row raises
  ``ValueError`` with ``path:lineno`` context, exactly as before;
* ``"skip"`` — malformed rows are counted, logged, and dropped;
* ``"quarantine"`` — as ``skip``, but each bad row is also appended to
  a *dead-letter CSV* (the same columns plus an ``error`` column) so
  it can be inspected or replayed after the collector bug is fixed.

:func:`read_flows_report` returns the :class:`IngestReport` alongside
the store; the ``repro_ingest_rows_{ok,skipped,quarantined}_total``
counters feed the metrics registry.  Writes go through the crash-safe
atomic writer (:mod:`repro.resilience.io`), so a killed
:func:`write_flows` never leaves a half-written trace where a complete
one stood.

Out-of-core ingest
------------------
With ``to_store=`` the parsed rows are streamed straight into a
:class:`repro.storage.SegmentStore` at that directory — at no point is
the full trace materialised in memory; only one segment's buffer
(``segment_rows`` rows) is ever held.  The return value is then a
:class:`repro.storage.StoreView` (FlowStore-shaped, bit-identical
features) instead of a :class:`FlowStore`.  The error policies compose
unchanged: quarantined rows still land in the dead-letter CSV while
good rows land in segments.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from ..resilience import faults
from ..resilience.io import atomic_write
from .record import FlowRecord, FlowState, Protocol
from .store import FlowStore

if TYPE_CHECKING:  # pragma: no cover - typing only (lazy at runtime)
    from ..storage.view import StoreView

__all__ = [
    "ARGUS_COLUMNS",
    "DEAD_LETTER_COLUMNS",
    "PARSE_ERROR_MODES",
    "IngestReport",
    "flow_to_row",
    "row_to_flow",
    "write_flows",
    "read_flows",
    "read_flows_report",
    "default_dead_letter_path",
    "dumps",
    "loads",
    "loads_report",
]

#: Column order of the Argus-like CSV format.
ARGUS_COLUMNS = (
    "start",
    "end",
    "proto",
    "src",
    "sport",
    "dst",
    "dport",
    "src_pkts",
    "dst_pkts",
    "src_bytes",
    "dst_bytes",
    "state",
    "payload_hex",
)

#: Dead-letter files carry the raw fields plus the parse error.
DEAD_LETTER_COLUMNS = ARGUS_COLUMNS + ("error",)

#: Recognised malformed-row policies.
PARSE_ERROR_MODES = ("strict", "skip", "quarantine")

#: Cap on per-report retained error messages/rows — enough to debug,
#: bounded so a 99%-corrupt file cannot balloon the report.
_REPORT_ERROR_CAP = 32

logger = get_logger("flows.argus")

_ROWS_OK = obs_metrics.counter(
    "repro_ingest_rows_ok_total", "Trace rows parsed into flow records"
)
_ROWS_SKIPPED = obs_metrics.counter(
    "repro_ingest_rows_skipped_total",
    "Malformed trace rows dropped under errors='skip'",
)
_ROWS_QUARANTINED = obs_metrics.counter(
    "repro_ingest_rows_quarantined_total",
    "Malformed trace rows diverted to a dead-letter file",
)


def flow_to_row(flow: FlowRecord) -> List[str]:
    """Render one flow as a CSV row (list of strings)."""
    # repr() of a float round-trips exactly in Python 3, so traces can
    # be compared record-for-record after a save/load cycle.
    return [
        repr(flow.start),
        repr(flow.end),
        flow.proto.value,
        flow.src,
        str(flow.sport),
        flow.dst,
        str(flow.dport),
        str(flow.src_pkts),
        str(flow.dst_pkts),
        str(flow.src_bytes),
        str(flow.dst_bytes),
        flow.state.value,
        flow.payload.hex(),
    ]


def row_to_flow(row: List[str]) -> FlowRecord:
    """Parse one CSV row back into a :class:`FlowRecord`.

    Raises
    ------
    ValueError
        If the row has the wrong arity or a field fails to parse.
    """
    if len(row) != len(ARGUS_COLUMNS):
        raise ValueError(
            f"expected {len(ARGUS_COLUMNS)} columns, got {len(row)}: {row!r}"
        )
    (start, end, proto, src, sport, dst, dport,
     src_pkts, dst_pkts, src_bytes, dst_bytes, state, payload_hex) = row
    return FlowRecord(
        src=src,
        dst=dst,
        sport=int(sport),
        dport=int(dport),
        proto=Protocol(proto),
        start=float(start),
        end=float(end),
        src_bytes=int(src_bytes),
        dst_bytes=int(dst_bytes),
        src_pkts=int(src_pkts),
        dst_pkts=int(dst_pkts),
        state=FlowState(state),
        payload=bytes.fromhex(payload_hex),
    )


def write_flows(path: Union[str, Path], flows: Iterable[FlowRecord]) -> int:
    """Write flows to ``path`` in Argus-like CSV format.

    The write is crash-safe: rows land in a temp file beside ``path``
    which is fsync'd and atomically renamed into place, so a reader
    (or a killed writer) never observes a truncated trace.  Returns
    the number of records written.
    """
    count = 0
    with atomic_write(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(ARGUS_COLUMNS)
        for flow in flows:
            writer.writerow(flow_to_row(flow))
            count += 1
    return count


# ----------------------------------------------------------------------
# Fault-tolerant reading
# ----------------------------------------------------------------------
@dataclass
class IngestReport:
    """Outcome counts (and sampled errors) of one trace read."""

    source: str
    errors_mode: str = "strict"
    rows_ok: int = 0
    rows_skipped: int = 0
    rows_quarantined: int = 0
    dead_letter: Optional[str] = None
    #: First few ``source:lineno: message`` strings, capped.
    error_samples: List[str] = field(default_factory=list)

    @property
    def rows_bad(self) -> int:
        """Malformed rows encountered, regardless of policy."""
        return self.rows_skipped + self.rows_quarantined

    def describe(self) -> str:
        out = (
            f"{self.source}: {self.rows_ok} rows ok, "
            f"{self.rows_bad} malformed ({self.errors_mode})"
        )
        if self.dead_letter is not None and self.rows_quarantined:
            out += f"; dead-letter: {self.dead_letter}"
        return out

    def _note_error(self, message: str) -> None:
        if len(self.error_samples) < _REPORT_ERROR_CAP:
            self.error_samples.append(message)


def default_dead_letter_path(path: Union[str, Path]) -> Path:
    """Where quarantined rows go when no explicit path is given."""
    path = Path(path)
    return path.with_name(path.name + ".deadletter.csv")


class _DeadLetterWriter:
    """Appends quarantined rows (raw fields + error) to a CSV file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None
        self._writer = None

    def _open(self):
        if self._writer is None:
            faults.io_point("dead-letter")
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a", newline="")
            self._writer = csv.writer(self._handle)
            if fresh:
                self._writer.writerow(DEAD_LETTER_COLUMNS)
        return self._writer

    def append(self, row: List[str], error: str) -> None:
        width = len(ARGUS_COLUMNS)
        padded = (list(row) + [""] * width)[:width]
        self._open().writerow(padded + [error])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
            self._writer = None


def _strip_bom(cell: str) -> str:
    return cell.lstrip("﻿")


def _parse_rows(
    rows: Iterator[List[str]],
    *,
    source: str,
    errors: str,
    report: IngestReport,
    dead_letter: Optional[_DeadLetterWriter],
) -> Iterator[FlowRecord]:
    """Parse CSV rows under the given malformed-row policy.

    ``rows`` must be a ``csv.reader`` (its ``line_num`` attribute
    provides the physical line for error context).  A UTF-8 BOM on the
    header row is tolerated — collectors on Windows prepend one.
    """
    header = next(rows, None)
    if header is None:
        return
    if header:
        header = [_strip_bom(header[0])] + list(header[1:])
    if tuple(header) != ARGUS_COLUMNS:
        raise ValueError(f"{source}: unrecognised trace header: {header!r}")
    corrupt = faults.parse_corruptor()
    for row in rows:
        if not row:
            continue
        if corrupt is not None:
            row = corrupt(row)
        try:
            flow = row_to_flow(row)
        except ValueError as exc:
            lineno = getattr(rows, "line_num", "?")
            message = f"{source}:{lineno}: {exc}"
            if errors == "strict":
                raise ValueError(message) from exc
            report._note_error(message)
            if errors == "quarantine":
                report.rows_quarantined += 1
                _ROWS_QUARANTINED.inc()
                if dead_letter is not None:
                    dead_letter.append(row, str(exc))
            else:
                report.rows_skipped += 1
                _ROWS_SKIPPED.inc()
            continue
        report.rows_ok += 1
        yield flow
    _ROWS_OK.inc(report.rows_ok)
    if report.rows_bad:
        logger.warning(
            "%s: %d malformed row(s) %s (first: %s)",
            source,
            report.rows_bad,
            "quarantined" if errors == "quarantine" else "skipped",
            report.error_samples[0] if report.error_samples else "?",
        )


def _check_errors_mode(errors: str) -> None:
    if errors not in PARSE_ERROR_MODES:
        raise ValueError(
            f"unknown errors mode {errors!r}; expected one of {PARSE_ERROR_MODES}"
        )


def _spill_to_store(
    flows: Iterator[FlowRecord],
    to_store: Union[str, Path],
    segment_rows: Optional[int],
):
    """Stream parsed flows into a fresh segment store; return its view.

    Imported lazily — :mod:`repro.storage` builds on the flows package,
    so the dependency must stay call-time-only, and readers that never
    spill never pay for it.
    """
    from ..storage import StoreView, fresh_store
    from ..storage.writer import DEFAULT_SEGMENT_ROWS

    store = fresh_store(to_store)
    with store.writer(
        segment_rows=segment_rows or DEFAULT_SEGMENT_ROWS
    ) as writer:
        for flow in flows:
            writer.add(flow)
    return StoreView(store)


def read_flows_report(
    path: Union[str, Path],
    *,
    errors: str = "strict",
    dead_letter: Optional[Union[str, Path]] = None,
    to_store: Optional[Union[str, Path]] = None,
    segment_rows: Optional[int] = None,
) -> Tuple[Union[FlowStore, "StoreView"], IngestReport]:
    """Read a trace and return ``(store, ingest report)``.

    In ``quarantine`` mode malformed rows are appended to
    ``dead_letter`` (default: ``<path>.deadletter.csv`` beside the
    trace).  The dead-letter file is append-mode, so repeated partial
    loads accumulate rather than overwrite.

    With ``to_store`` the rows are spilled to a segment store at that
    directory as they parse — the full trace is never held in memory —
    and the first element of the return value is a
    :class:`repro.storage.StoreView` over it.  ``segment_rows``
    controls the cut threshold (default
    :data:`repro.storage.DEFAULT_SEGMENT_ROWS`).
    """
    _check_errors_mode(errors)
    report = IngestReport(source=str(path), errors_mode=errors)
    sink: Optional[_DeadLetterWriter] = None
    if errors == "quarantine":
        target = (
            Path(dead_letter)
            if dead_letter is not None
            else default_dead_letter_path(path)
        )
        report.dead_letter = str(target)
        sink = _DeadLetterWriter(target)
    try:
        # utf-8-sig transparently strips a leading BOM; BOM-free files
        # read identically.
        with open(path, newline="", encoding="utf-8-sig") as handle:
            flows = _parse_rows(
                csv.reader(handle),
                source=str(path),
                errors=errors,
                report=report,
                dead_letter=sink,
            )
            if to_store is not None:
                store = _spill_to_store(flows, to_store, segment_rows)
            else:
                store = FlowStore(flows)
    finally:
        if sink is not None:
            sink.close()
    return store, report


def read_flows(
    path: Union[str, Path],
    *,
    errors: str = "strict",
    dead_letter: Optional[Union[str, Path]] = None,
    to_store: Optional[Union[str, Path]] = None,
    segment_rows: Optional[int] = None,
) -> Union[FlowStore, "StoreView"]:
    """Read a trace written by :func:`write_flows` into a store.

    ``errors`` selects the malformed-row policy (see the module
    docstring); the default ``"strict"`` raises on the first bad row,
    with ``path:lineno`` context, preserving the original behaviour.
    ``to_store`` spills rows to a segment store instead of memory (see
    :func:`read_flows_report`).  Use :func:`read_flows_report` when the
    outcome counts are needed.
    """
    store, _ = read_flows_report(
        path,
        errors=errors,
        dead_letter=dead_letter,
        to_store=to_store,
        segment_rows=segment_rows,
    )
    return store


def dumps(flows: Iterable[FlowRecord]) -> str:
    """Serialise flows to an in-memory CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(ARGUS_COLUMNS)
    for flow in flows:
        writer.writerow(flow_to_row(flow))
    return buffer.getvalue()


def loads_report(
    text: str,
    *,
    errors: str = "strict",
    dead_letter: Optional[Union[str, Path]] = None,
) -> Tuple[FlowStore, IngestReport]:
    """Parse a CSV string and return ``(store, ingest report)``.

    Without a ``dead_letter`` path, quarantine mode still counts and
    samples the bad rows in the report — there is just no file to
    append them to.
    """
    _check_errors_mode(errors)
    report = IngestReport(source="<string>", errors_mode=errors)
    sink: Optional[_DeadLetterWriter] = None
    if errors == "quarantine" and dead_letter is not None:
        report.dead_letter = str(dead_letter)
        sink = _DeadLetterWriter(dead_letter)
    try:
        store = FlowStore(
            _parse_rows(
                csv.reader(io.StringIO(text.lstrip("﻿"))),
                source="<string>",
                errors=errors,
                report=report,
                dead_letter=sink,
            )
        )
    finally:
        if sink is not None:
            sink.close()
    return store, report


def loads(
    text: str,
    *,
    errors: str = "strict",
    dead_letter: Optional[Union[str, Path]] = None,
) -> FlowStore:
    """Parse a CSV string produced by :func:`dumps`."""
    store, _ = loads_report(text, errors=errors, dead_letter=dead_letter)
    return store
