"""Serialization of flow records to and from an Argus-like CSV format.

Argus (referenced in §III of the paper) emits textual flow summaries; this
module provides an equivalent on-disk representation so synthesised traces
can be captured once and replayed across experiments.  The column set
mirrors the fields the paper lists: addressing, protocol, timestamps,
per-direction packet/byte counts, connection state, and the 64-byte payload
snippet (hex-encoded).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from .record import FlowRecord, FlowState, Protocol
from .store import FlowStore

__all__ = [
    "ARGUS_COLUMNS",
    "flow_to_row",
    "row_to_flow",
    "write_flows",
    "read_flows",
    "dumps",
    "loads",
]

#: Column order of the Argus-like CSV format.
ARGUS_COLUMNS = (
    "start",
    "end",
    "proto",
    "src",
    "sport",
    "dst",
    "dport",
    "src_pkts",
    "dst_pkts",
    "src_bytes",
    "dst_bytes",
    "state",
    "payload_hex",
)


def flow_to_row(flow: FlowRecord) -> List[str]:
    """Render one flow as a CSV row (list of strings)."""
    # repr() of a float round-trips exactly in Python 3, so traces can
    # be compared record-for-record after a save/load cycle.
    return [
        repr(flow.start),
        repr(flow.end),
        flow.proto.value,
        flow.src,
        str(flow.sport),
        flow.dst,
        str(flow.dport),
        str(flow.src_pkts),
        str(flow.dst_pkts),
        str(flow.src_bytes),
        str(flow.dst_bytes),
        flow.state.value,
        flow.payload.hex(),
    ]


def row_to_flow(row: List[str]) -> FlowRecord:
    """Parse one CSV row back into a :class:`FlowRecord`.

    Raises
    ------
    ValueError
        If the row has the wrong arity or a field fails to parse.
    """
    if len(row) != len(ARGUS_COLUMNS):
        raise ValueError(
            f"expected {len(ARGUS_COLUMNS)} columns, got {len(row)}: {row!r}"
        )
    (start, end, proto, src, sport, dst, dport,
     src_pkts, dst_pkts, src_bytes, dst_bytes, state, payload_hex) = row
    return FlowRecord(
        src=src,
        dst=dst,
        sport=int(sport),
        dport=int(dport),
        proto=Protocol(proto),
        start=float(start),
        end=float(end),
        src_bytes=int(src_bytes),
        dst_bytes=int(dst_bytes),
        src_pkts=int(src_pkts),
        dst_pkts=int(dst_pkts),
        state=FlowState(state),
        payload=bytes.fromhex(payload_hex),
    )


def write_flows(path: Union[str, Path], flows: Iterable[FlowRecord]) -> int:
    """Write flows to ``path`` in Argus-like CSV format.

    Returns the number of records written.
    """
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(ARGUS_COLUMNS)
        for flow in flows:
            writer.writerow(flow_to_row(flow))
            count += 1
    return count


def _read_rows(handle: Iterator[List[str]]) -> Iterator[FlowRecord]:
    header = next(handle, None)
    if header is None:
        return
    if tuple(header) != ARGUS_COLUMNS:
        raise ValueError(f"unrecognised trace header: {header!r}")
    for row in handle:
        if row:
            yield row_to_flow(row)


def read_flows(path: Union[str, Path]) -> FlowStore:
    """Read a trace written by :func:`write_flows` into a store."""
    with open(path, newline="") as handle:
        return FlowStore(_read_rows(csv.reader(handle)))


def dumps(flows: Iterable[FlowRecord]) -> str:
    """Serialise flows to an in-memory CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(ARGUS_COLUMNS)
    for flow in flows:
        writer.writerow(flow_to_row(flow))
    return buffer.getvalue()


def loads(text: str) -> FlowStore:
    """Parse a CSV string produced by :func:`dumps`."""
    return FlowStore(_read_rows(csv.reader(io.StringIO(text))))
