"""Per-host features extracted from flow records.

These are the exact quantities the paper's tests consume:

* **average bytes uploaded per flow** (§IV-A) — the volume test metric;
* **failed-connection rate** (§V-A) — the initial data-reduction metric;
* **fraction of new destination IPs** contacted after the first hour of a
  host's activity in the window (§IV-B) — the churn test metric;
* **per-destination flow interstitial times** (§IV-C) — the raw samples
  behind the human-vs-machine test.

**Sorting invariant.**  Every helper accepts flows in *any* order and
produces the paper's §IV definitions; the order-sensitive ones
(:func:`new_ip_fraction`, :func:`interstitial_times`) take a
``presorted`` flag so callers that already hold start-ordered flows —
:meth:`repro.flows.store.FlowStore.flows_from` maintains that order at
insertion — skip the redundant per-call sorts.  :func:`extract_features`
sorts (at most) once and passes ``presorted=True`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .record import FlowRecord
from .store import FlowStore

__all__ = [
    "HostFeatures",
    "average_flow_size",
    "failed_connection_rate",
    "new_fraction_from_first_contacts",
    "new_ip_fraction",
    "new_ip_timeseries",
    "interstitial_times",
    "extract_features",
    "features_from_sorted_flows",
    "extract_all_features",
]

#: Seconds in the "settling" period of the churn metric: destinations first
#: contacted within this span of a host's first activity are treated as the
#: host's baseline peer set (§IV-B uses one hour).
NEW_IP_GRACE_PERIOD = 3600.0


@dataclass(frozen=True)
class HostFeatures:
    """Bundle of the per-host features used by the detection tests."""

    host: str
    flow_count: int
    successful_flow_count: int
    avg_flow_size: float
    failed_conn_rate: float
    new_ip_fraction: float
    distinct_destinations: int
    interstitials: Tuple[float, ...]

    @property
    def initiated_successful(self) -> bool:
        """Whether the host initiated at least one successful flow.

        The paper only considers hosts that initiated successful
        connections within the day (§V-A).
        """
        return self.successful_flow_count > 0


def average_flow_size(flows: Sequence[FlowRecord]) -> float:
    """Mean bytes *uploaded* (initiator-side) per flow (§IV-A).

    The paper prefers this over the cumulative byte count because a chatty
    Plotter can accumulate a large total while each flow stays tiny.
    Returns 0.0 for an empty sequence.
    """
    if not flows:
        return 0.0
    return sum(f.src_bytes for f in flows) / len(flows)


def failed_connection_rate(flows: Sequence[FlowRecord]) -> float:
    """Fraction of a host's initiated flows that failed (§V-A).

    Returns 0.0 for an empty sequence.
    """
    if not flows:
        return 0.0
    return sum(1 for f in flows if f.failed) / len(flows)


def _first_contact_times(flows: Sequence[FlowRecord]) -> Dict[str, float]:
    """Earliest start time at which each destination was first contacted."""
    first: Dict[str, float] = {}
    for flow in flows:
        seen = first.get(flow.dst)
        if seen is None or flow.start < seen:
            first[flow.dst] = flow.start
    return first


def new_fraction_from_first_contacts(
    first_contact: Dict[str, float],
    activity_start: float,
    grace_period: float = NEW_IP_GRACE_PERIOD,
) -> float:
    """§IV-B churn from a first-contact map and the host's first activity.

    Shared by the batch path (:func:`new_ip_fraction`) and the streaming
    extractor, so the paper's definition lives in exactly one place:
    the fraction of contacted destinations whose first contact falls
    *strictly after* ``activity_start + grace_period``.

    Returns 0.0 when the host contacted no destinations.
    """
    if not first_contact:
        return 0.0
    cutoff = activity_start + grace_period
    new = sum(1 for t in first_contact.values() if t > cutoff)
    return new / len(first_contact)


def new_ip_fraction(
    flows: Sequence[FlowRecord],
    grace_period: float = NEW_IP_GRACE_PERIOD,
    presorted: bool = False,
) -> float:
    """Fraction of destinations first contacted after the grace period.

    §IV-B quantifies peer churn as the ratio of (i) the number of IP
    addresses a host first contacts after its first hour of activity to
    (ii) the total number of IP addresses it contacts in the window.  A
    high value means high churn (Trader-like); a low value means the host
    keeps talking to the same peers (Plotter-like).

    With ``presorted`` the caller asserts ``flows`` is start-ordered
    (the :class:`~repro.flows.store.FlowStore` invariant), letting the
    first-activity scan read ``flows[0]`` instead of a min pass; the
    result is identical either way.

    Returns 0.0 when the host contacted no destinations.
    """
    first = _first_contact_times(flows)
    if not first:
        return 0.0
    if presorted:
        activity_start = flows[0].start
    else:
        activity_start = min(f.start for f in flows)
    return new_fraction_from_first_contacts(first, activity_start, grace_period)


def new_ip_timeseries(
    flows: Sequence[FlowRecord], bucket: float = 3600.0
) -> List[Tuple[float, float]]:
    """Per-bucket fraction of contacted destinations that are new.

    For each time bucket (default: one hour) starting at the host's first
    activity, report ``(bucket_start_offset, new_fraction)`` where
    ``new_fraction`` is the share of destinations contacted in the bucket
    that had never been contacted before.  This reproduces the view in
    Figure 2 of the paper.
    """
    if not flows:
        return []
    ordered = sorted(flows, key=lambda f: f.start)
    t0 = ordered[0].start
    seen: Set[str] = set()
    series: List[Tuple[float, float]] = []
    bucket_index = 0
    bucket_dests: Set[str] = set()
    bucket_new: Set[str] = set()

    def flush() -> None:
        if bucket_dests:
            series.append(
                (bucket_index * bucket, len(bucket_new) / len(bucket_dests))
            )
        seen.update(bucket_dests)

    for flow in ordered:
        idx = int((flow.start - t0) // bucket)
        if idx != bucket_index:
            flush()
            bucket_index = idx
            bucket_dests = set()
            bucket_new = set()
        bucket_dests.add(flow.dst)
        if flow.dst not in seen:
            bucket_new.add(flow.dst)
    flush()
    return series


def interstitial_times(
    flows: Sequence[FlowRecord], presorted: bool = False
) -> List[float]:
    """Per-destination flow interstitial times for one host (§IV-C).

    For each destination the host contacts, compute the gaps between the
    start times of consecutive flows to that destination; the returned
    samples pool the gaps across *all* destinations, since the monitor does
    not know which destinations are P2P peers.  Sample order: destinations
    in order of first contact, gaps per destination in start order.

    With ``presorted`` the caller asserts ``flows`` is start-ordered, so
    the per-destination start lists are born sorted and the per-call
    sorts are skipped; the samples are identical either way.
    """
    per_dest: Dict[str, List[float]] = {}
    for flow in flows:
        per_dest.setdefault(flow.dst, []).append(flow.start)
    samples: List[float] = []
    for starts in per_dest.values():
        if len(starts) < 2:
            continue
        if not presorted:
            starts.sort()
        samples.extend(b - a for a, b in zip(starts, starts[1:]))
    return samples


def extract_features(
    store: FlowStore, host: str, grace_period: float = NEW_IP_GRACE_PERIOD
) -> HostFeatures:
    """Compute the full feature bundle for one host.

    ``store.flows_from`` returns start-ordered flows (the store's
    sort-once invariant), so the order-sensitive metrics run with
    ``presorted=True`` and nothing here re-sorts.
    """
    flows = store.flows_from(host)
    return features_from_sorted_flows(host, flows, grace_period)


def features_from_sorted_flows(
    host: str,
    flows: Sequence[FlowRecord],
    grace_period: float = NEW_IP_GRACE_PERIOD,
) -> HostFeatures:
    """Feature bundle from flows already sorted by start time.

    This is the reference per-host extraction kernel: the parallel
    engine's vectorized shard kernel
    (:mod:`repro.flows.parallel`) is pinned bit-identical to it by the
    equivalence test suite.  Callers must pass start-ordered flows.
    """
    return HostFeatures(
        host=host,
        flow_count=len(flows),
        successful_flow_count=sum(1 for f in flows if not f.failed),
        avg_flow_size=average_flow_size(flows),
        failed_conn_rate=failed_connection_rate(flows),
        new_ip_fraction=new_ip_fraction(flows, grace_period, presorted=True),
        distinct_destinations=len({f.dst for f in flows}),
        interstitials=tuple(interstitial_times(flows, presorted=True)),
    )


def extract_all_features(
    store: FlowStore, grace_period: float = NEW_IP_GRACE_PERIOD
) -> Dict[str, HostFeatures]:
    """Feature bundles for every initiating host in the store."""
    return {
        host: extract_features(store, host, grace_period)
        for host in store.initiators
    }
