"""Host-sharded, multi-process feature extraction with checkpoint/resume.

The paper's detector consumes border flow records at ~5000 flows/s over
eight days (§V); per-host feature extraction is the pipeline's dominant
cost before θ_hm.  This module decomposes it the same way the θ_hm
distance engine was decomposed (PR 1): a **planner** partitions the
host population into shards balanced by *flow count*, **workers** run
the extraction kernel per shard (in-process, or across a
``ProcessPoolExecutor``), and a **merge** step reassembles the per-host
:class:`~repro.flows.metrics.HostFeatures` map deterministically.

Every configuration — any worker count, any shard count, either kernel —
produces results bit-identical to the sequential reference path
(:func:`repro.flows.metrics.extract_all_features`); the equivalence is
pinned by the test suite and re-asserted by the benchmark harness.

Engine anatomy
--------------
:class:`ParallelExtractor` is the reusable engine: it publishes the
store to a fork-inherited registry, builds the store's columnar
snapshot once (:meth:`repro.flows.store.FlowStore.columnar`), and keeps
a warm worker pool across :meth:`~ParallelExtractor.extract` calls —
repeated extraction (tumbling windows, threshold sweeps, benchmarks)
pays process start-up once.  Workers return compact columnar results
(numpy arrays), and the parent assembles ``HostFeatures`` during the
deterministic merge, so inter-process traffic stays small.  The pool is
keyed to the store's mutation :attr:`~repro.flows.store.FlowStore.version`
and is recreated if the store changed.  When the platform offers no
``fork`` start method, shard flow lists are shipped to workers
explicitly instead — slower, but identical results.

:func:`extract_features_parallel` is the one-shot convenience wrapper
(engine construction and teardown included).

**Segment-backed stores.**  A store exposing a ``parallel_spec``
attribute (a :class:`repro.storage.view.StoreView`) switches the
engine to its out-of-core mode: instead of forking a snapshot or
shipping flow lists, the spec — a small tuple naming the store
directory and catalog generation — is sent to each worker, which
re-opens the store and memory-maps its shards independently.  Works
identically under ``fork`` and ``spawn``, and the parent process never
materialises the trace.  Results remain bit-identical to every other
configuration.

Checkpoint/resume
-----------------
With ``checkpoint_dir`` set, each completed shard's features are
written to a versioned on-disk checkpoint keyed by a content hash of
the shard's host set (with per-host flow counts) and the extraction
parameters.  A killed run restarted with ``resume=True`` skips shards
whose checkpoint loads and matches its key; anything else — missing
file, truncated pickle, version or key mismatch — is recomputed.  A
failed worker is retried up to ``max_retries`` times before the run
aborts with a per-shard :class:`ShardExtractionError` report.

Failure handling
----------------
Per-shard retry runs under a :class:`repro.resilience.RetryPolicy`
(jittered exponential backoff between attempts/waves); a failed worker
is retried until the policy is exhausted, then the run aborts with a
per-shard :class:`ShardExtractionError` report.  Checkpoint-directory
I/O errors never abort a run: the first one disables checkpointing for
the rest of the run, reported through the ``on_degrade`` callback (the
pipeline's :class:`~repro.resilience.StageGuard` wires it into the run
summary).  A broken worker pool is warm-restarted between retry waves
and the restart reported the same way.

Telemetry
---------
When the parent has :mod:`repro.obs` enabled, each pooled shard runs
with worker-side recording armed: the worker snapshots its registry at
shard start, and ships the metrics *delta* (plus its finished span
dicts) back alongside the shard payload.  The parent merges every
delta (:meth:`~repro.obs.metrics.MetricsRegistry.merge_delta`) and
replays the spans to its sinks, so ``repro_extract_*`` /
``repro_storage_*`` counters and kernel histograms incremented inside
workers are no longer lost with the pool — a merged parallel run's
counter totals are bit-equal to a sequential run's (pinned by
``tests/flows/test_parallel_obs_merge.py``).

Fault injection (testing only)
------------------------------
The unified knobs live in :mod:`repro.resilience.faults`:
``REPRO_FAULT_EXTRACT_FAIL_SHARDS`` (comma-separated shard indices that
raise in the worker), ``REPRO_FAULT_EXTRACT_SHARD_DELAY`` (seconds of
per-shard latency so kill-and-resume tests can interrupt a run
deterministically) and ``REPRO_FAULT_EXTRACT_KILL_ONCE`` (sentinel file
whose claimer hard-exits, breaking the pool exactly once).  The legacy
``REPRO_EXTRACT_*`` names keep working as aliases.  All are read in the
worker, never in production configuration.

See ``docs/scaling.md`` for the shard planner, the checkpoint format,
and resume semantics; ``docs/resilience.md`` for the degradation
ladder and fault knobs.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace as dataclass_replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.export import InMemorySink
from ..obs.logconf import get_logger
from ..obs.tracing import span
from ..resilience import faults
from ..resilience.io import atomic_write
from ..resilience.retry import RetryError, RetryPolicy, record_attempt
from .metrics import (
    NEW_IP_GRACE_PERIOD,
    HostFeatures,
    features_from_sorted_flows,
)
from .record import FlowRecord, FlowState
from .store import ColumnarFlows, FlowStore

#: Callback signature for degradations the extractor handles itself
#: (checkpointing disabled after an I/O error, pool warm-restart):
#: ``on_degrade(stage, from_mode, to_mode, error)`` — matches
#: :meth:`repro.resilience.StageGuard.note`.
OnDegrade = Callable[[str, str, str, str], None]

__all__ = [
    "CHECKPOINT_VERSION",
    "PARALLEL_KERNELS",
    "ParallelExtractor",
    "Shard",
    "ShardFailure",
    "ShardExtractionError",
    "plan_shards",
    "shard_checkpoint_key",
    "extract_features_parallel",
]

#: Bump when the checkpoint payload layout (or the meaning of the
#: features it stores) changes; checkpoints from other versions are
#: ignored on resume and recomputed.
CHECKPOINT_VERSION = 1

#: Shard kernels: ``vectorized`` (numpy group-by over the store's
#: columnar snapshot, the default) and ``reference`` (the per-host
#: pure-Python path) — bit-identical outputs.
PARALLEL_KERNELS = ("vectorized", "reference")

#: Shards per worker when ``n_shards`` is not given: small enough that
#: per-shard overhead stays negligible, large enough that LPT balancing
#: absorbs skewed hosts and checkpoints are usefully fine-grained.
SHARDS_PER_WORKER = 4

logger = get_logger("flows.parallel")

_SHARDS = obs_metrics.counter(
    "repro_extract_shards_total",
    "Extraction shards by outcome",
    labels=("result",),
)
_RETRIES = obs_metrics.counter(
    "repro_extract_shard_retries_total",
    "Shard attempts that failed and were retried",
)
_CHECKPOINT = obs_metrics.counter(
    "repro_extract_checkpoint_total",
    "Shard checkpoint lookups and writes by outcome",
    labels=("result",),
)
_SHARD_SECONDS = obs_metrics.histogram(
    "repro_extract_shard_seconds",
    "Per-shard extraction wall time (measured in the worker)",
)
_WORKERS_GAUGE = obs_metrics.gauge(
    "repro_extract_workers", "Worker processes of the last extraction run"
)
_HOSTS_GAUGE = obs_metrics.gauge(
    "repro_extract_hosts", "Hosts covered by the last extraction run"
)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One planned unit of extraction work."""

    index: int
    hosts: Tuple[str, ...]
    flow_count: int
    #: Content hash identifying this shard's checkpoint; empty when the
    #: run is not checkpointed.
    key: str = ""


@dataclass(frozen=True)
class ShardFailure:
    """Diagnostic record of one shard that exhausted its retries."""

    index: int
    host_count: int
    attempts: int
    errors: Tuple[str, ...]


class ShardExtractionError(RuntimeError):
    """Raised when shards still fail after ``max_retries`` retries."""

    def __init__(self, failures: Sequence[ShardFailure]) -> None:
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} shard(s) failed after retries:"]
        for failure in self.failures:
            last = failure.errors[-1] if failure.errors else "unknown error"
            lines.append(
                f"  shard {failure.index} ({failure.host_count} hosts, "
                f"{failure.attempts} attempts): {last}"
            )
        super().__init__("\n".join(lines))


def plan_shards(
    flow_counts: Mapping[str, int], n_shards: int
) -> List[Tuple[str, ...]]:
    """Partition hosts into ``n_shards`` shards balanced by flow count.

    Longest-processing-time greedy: hosts are placed heaviest-first onto
    the least-loaded shard, so a handful of busy hosts cannot serialise
    the run the way a host-count split would.  Deterministic — ties
    break on host name and shard index — and empty shards are dropped.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    buckets: List[List[str]] = [[] for _ in range(n_shards)]
    heap = [(0, index) for index in range(n_shards)]
    heapq.heapify(heap)
    ordered = sorted(flow_counts, key=lambda h: (-flow_counts[h], h))
    for host in ordered:
        load, index = heapq.heappop(heap)
        buckets[index].append(host)
        heapq.heappush(heap, (load + flow_counts[host], index))
    return [tuple(sorted(bucket)) for bucket in buckets if bucket]


def shard_checkpoint_key(
    hosts: Sequence[str],
    flow_counts: Mapping[str, int],
    grace_period: float,
) -> str:
    """Content hash of a shard: host set, per-host flow counts, params.

    Including the flow counts means a checkpoint is only reused when the
    shard's *input* is plausibly unchanged, not merely its host names;
    including :data:`CHECKPOINT_VERSION` and the extraction parameters
    invalidates checkpoints across format or semantic changes.
    """
    payload = json.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "grace_period": grace_period,
            "hosts": [[host, int(flow_counts[host])] for host in sorted(hosts)],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Checkpoint I/O
# ----------------------------------------------------------------------
def _checkpoint_path(directory: Path, key: str) -> Path:
    return directory / f"shard-{key[:24]}.ckpt"


def _load_checkpoint(path: Path, key: str) -> Optional[Dict[str, HostFeatures]]:
    """The checkpointed features, or ``None`` if absent/stale/corrupt."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CHECKPOINT_VERSION or payload.get("key") != key:
        return None
    features = payload.get("features")
    if not isinstance(features, dict) or not all(
        isinstance(value, HostFeatures) for value in features.values()
    ):
        return None
    return features


def _write_checkpoint(
    path: Path, key: str, features: Dict[str, HostFeatures]
) -> None:
    """Crash-safely persist one shard's features (temp + fsync + rename)."""
    faults.io_point("checkpoint")
    payload = {
        "version": CHECKPOINT_VERSION,
        "key": key,
        "features": features,
    }
    with atomic_write(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def _write_manifest(
    directory: Path,
    shards: Sequence[Shard],
    grace_period: float,
    kernel: str,
) -> None:
    """Human-readable run manifest, for debugging interrupted runs."""
    faults.io_point("manifest")
    manifest = {
        "version": CHECKPOINT_VERSION,
        "grace_period": grace_period,
        "kernel": kernel,
        "shards": [
            {
                "index": shard.index,
                "hosts": len(shard.hosts),
                "flows": shard.flow_count,
                "key": shard.key,
            }
            for shard in shards
        ],
    }
    with atomic_write(directory / "manifest.json", "w") as fh:
        fh.write(json.dumps(manifest, indent=2) + "\n")


class _Checkpointing:
    """Checkpoint I/O that degrades to no-op instead of killing the run.

    The first ``OSError`` from the checkpoint directory (read-only
    mount, disk full, NFS flap) disables further checkpoint *writes*
    for the rest of the run, reports the degradation once through
    ``on_degrade``, and counts it — the run then completes without
    checkpointing rather than dying million of flows in.
    """

    def __init__(self, directory: Path, on_degrade: Optional[OnDegrade]) -> None:
        self.directory = directory
        self.on_degrade = on_degrade
        self.disabled = False

    def _degrade(self, exc: OSError) -> None:
        if self.disabled:
            return
        self.disabled = True
        error = f"{type(exc).__name__}: {exc}"
        logger.warning(
            "checkpoint directory %s failed (%s); continuing without "
            "checkpointing",
            self.directory,
            error,
        )
        _CHECKPOINT.inc(result="io-error")
        if self.on_degrade is not None:
            self.on_degrade(
                "extract_checkpoint", "checkpointed", "no-checkpoint", error
            )

    def prepare(self, shards: Sequence[Shard], grace_period: float, kernel: str) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _write_manifest(self.directory, shards, grace_period, kernel)
        except OSError as exc:
            self._degrade(exc)

    def load(self, shard: Shard) -> Optional[Dict[str, HostFeatures]]:
        if self.disabled:
            return None
        return _load_checkpoint(
            _checkpoint_path(self.directory, shard.key), shard.key
        )

    def write(self, shard: Shard, features: Dict[str, HostFeatures]) -> None:
        if self.disabled:
            return
        try:
            _write_checkpoint(
                _checkpoint_path(self.directory, shard.key), shard.key, features
            )
        except OSError as exc:
            self._degrade(exc)
        else:
            _CHECKPOINT.inc(result="write")


# ----------------------------------------------------------------------
# Shard kernels
# ----------------------------------------------------------------------
@dataclass
class _ShardColumns:
    """Columnar per-host results of one shard, pre-assembly.

    This is the worker → parent transport format: plain numpy arrays
    pickle as raw buffers, an order of magnitude cheaper than a map of
    ``HostFeatures`` objects with per-host interstitial tuples.  The
    parent assembles ``HostFeatures`` during the merge.
    """

    hosts: List[str]
    flow_counts: np.ndarray
    success_counts: np.ndarray
    byte_sums: np.ndarray
    dest_counts: np.ndarray
    new_counts: np.ndarray
    gaps: np.ndarray
    gap_offsets: np.ndarray


def _columns_core(
    hosts: List[str],
    counts_arr: np.ndarray,
    starts: np.ndarray,
    src_bytes: np.ndarray,
    success: np.ndarray,
    dst_codes: np.ndarray,
    n_destinations: int,
    grace_period: float,
) -> _ShardColumns:
    """Vectorized group-by over one shard's columnar flows.

    Inputs are grouped by host (in ``hosts`` order) and start-ordered
    within each host — the store's sort-once invariant, preserved by
    both gather paths.  All derived quantities match the reference
    kernel bit for bit: ratios divide Python ints and interstitial gaps
    are the same IEEE subtractions in the same order.
    """
    total = len(starts)
    n_hosts = len(hosts)
    offsets = np.zeros(n_hosts + 1, dtype=np.int64)
    np.cumsum(counts_arr, out=offsets[1:])
    host_idx = np.repeat(np.arange(n_hosts, dtype=np.int64), counts_arr)

    success_counts = np.add.reduceat(success, offsets[:-1])
    byte_sums = np.add.reduceat(src_bytes, offsets[:-1])

    # (host, destination) pairs: group flows per pair while preserving
    # the per-host start order.
    pair = host_idx * np.int64(n_destinations) + dst_codes
    order = np.argsort(pair, kind="stable")
    pair_sorted = pair[order]
    first_mask = np.ones(total, dtype=bool)
    first_mask[1:] = pair_sorted[1:] != pair_sorted[:-1]
    first_orig_idx = order[first_mask]
    pair_host = host_idx[order][first_mask]
    first_contact = starts[order][first_mask]

    dest_counts = np.bincount(pair_host, minlength=n_hosts)
    activity_start = starts[offsets[:-1]]
    cutoff = activity_start + grace_period
    is_new = first_contact > cutoff[pair_host]
    new_counts = np.bincount(pair_host[is_new], minlength=n_hosts)

    # Interstitials in the reference order: destinations by first
    # appearance, gaps within a destination by start time.  Keying each
    # flow by the index of its pair's first flow sorts into exactly
    # that order.
    pair_rank = np.cumsum(first_mask) - 1
    key = np.empty(total, dtype=np.int64)
    key[order] = first_orig_idx[pair_rank]
    order2 = np.argsort(key, kind="stable")
    key2 = key[order2]
    starts2 = starts[order2]
    same_pair = key2[1:] == key2[:-1]
    gaps = (starts2[1:] - starts2[:-1])[same_pair]
    gap_host = host_idx[order2][1:][same_pair]
    gap_counts = np.bincount(gap_host, minlength=n_hosts)
    gap_offsets = np.zeros(n_hosts + 1, dtype=np.int64)
    np.cumsum(gap_counts, out=gap_offsets[1:])

    return _ShardColumns(
        hosts=hosts,
        flow_counts=counts_arr,
        success_counts=success_counts,
        byte_sums=byte_sums,
        dest_counts=dest_counts,
        new_counts=new_counts,
        gaps=gaps,
        gap_offsets=gap_offsets,
    )


def _assemble(columns: _ShardColumns) -> Dict[str, HostFeatures]:
    """``HostFeatures`` from one shard's columnar results.

    The divisions happen here, on Python ints, exactly as the reference
    kernel computes them.
    """
    gap_values = columns.gaps.tolist()
    gap_offsets = columns.gap_offsets.tolist()
    out: Dict[str, HostFeatures] = {}
    for i, host in enumerate(columns.hosts):
        flow_count = int(columns.flow_counts[i])
        successful = int(columns.success_counts[i])
        dests = int(columns.dest_counts[i])
        out[host] = HostFeatures(
            host=host,
            flow_count=flow_count,
            successful_flow_count=successful,
            avg_flow_size=int(columns.byte_sums[i]) / flow_count,
            failed_conn_rate=(flow_count - successful) / flow_count,
            new_ip_fraction=int(columns.new_counts[i]) / dests,
            distinct_destinations=dests,
            interstitials=tuple(gap_values[gap_offsets[i] : gap_offsets[i + 1]]),
        )
    return out


def _shard_columns_from_snapshot(
    snapshot: ColumnarFlows, hosts: Tuple[str, ...], grace_period: float
) -> _ShardColumns:
    """Gather a shard's rows from the store snapshot and run the kernel."""
    indices = [snapshot.index_of[host] for host in hosts]
    offsets = snapshot.host_offsets
    selection = np.concatenate([np.arange(offsets[i], offsets[i + 1]) for i in indices])
    counts_arr = np.array(
        [int(offsets[i + 1] - offsets[i]) for i in indices], dtype=np.int64
    )
    return _columns_core(
        list(hosts),
        counts_arr,
        snapshot.starts[selection],
        snapshot.src_bytes[selection],
        snapshot.success[selection],
        snapshot.dst_codes[selection],
        snapshot.n_destinations,
        grace_period,
    )


def _shard_columns_from_flows(
    hosts: Tuple[str, ...],
    flows_of: Callable[[str], List[FlowRecord]],
    grace_period: float,
) -> _ShardColumns:
    """Build shard columns straight from flow objects (no snapshot)."""
    kept_hosts: List[str] = []
    counts: List[int] = []
    all_flows: List[FlowRecord] = []
    for host in hosts:
        flows = flows_of(host)
        if not flows:
            continue
        kept_hosts.append(host)
        counts.append(len(flows))
        all_flows.extend(flows)
    established = FlowState.ESTABLISHED
    codes: Dict[str, int] = {}
    total = len(all_flows)
    return _columns_core(
        kept_hosts,
        np.asarray(counts, dtype=np.int64),
        np.array([f.start for f in all_flows], dtype=np.float64),
        np.array([f.src_bytes for f in all_flows], dtype=np.int64),
        np.array([f.state is established for f in all_flows], dtype=np.int64),
        np.fromiter(
            (codes.setdefault(f.dst, len(codes)) for f in all_flows),
            dtype=np.int64,
            count=total,
        ),
        len(codes),
        grace_period,
    )


def _extract_shard_reference(
    hosts: Sequence[str],
    flows_of: Callable[[str], List[FlowRecord]],
    grace_period: float,
) -> Dict[str, HostFeatures]:
    """Per-host reference kernel (the sequential path, host by host)."""
    return {
        host: features_from_sorted_flows(host, flows_of(host), grace_period)
        for host in hosts
    }


# ----------------------------------------------------------------------
# Worker plumbing
# ----------------------------------------------------------------------
#: Stores published for fork inheritance, keyed by engine token.  A
#: worker forked while an engine is alive sees that engine's store under
#: its token; tokens are never reused, so concurrent engines (even on
#: different stores) cannot cross wires.  Under a ``spawn`` start method
#: the registry is not inherited and shard payloads are shipped instead.
_PARENT_STORES: Dict[int, FlowStore] = {}
_TOKENS = itertools.count(1)

#: Process-local cache of segment-store views opened from shipped
#: specs, keyed by the spec tuple itself (which embeds the catalog
#: generation, so a mutated store never hits a stale view).  Workers in
#: a warm pool open each store once and reuse the memory maps across
#: every shard they run.
_WORKER_VIEWS: Dict[Tuple, object] = {}


def _view_from_spec(spec: Tuple):
    """The (cached) segment-store view a ``parallel_spec`` describes.

    Imported lazily: :mod:`repro.storage` depends on this module's
    kernel, so the import must happen at call time, and only processes
    actually running store-backed shards pay for it.
    """
    view = _WORKER_VIEWS.get(spec)
    if view is None:
        from ..storage.view import StoreView

        view = StoreView.from_parallel_spec(spec)
        _WORKER_VIEWS[spec] = view
    return view


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unavailable."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _inject_faults(index: int) -> None:
    """Honour the documented fault-injection knobs (see
    :mod:`repro.resilience.faults`; legacy ``REPRO_EXTRACT_*`` names
    remain as aliases)."""
    delay = faults.extract_shard_delay()
    if delay:
        time.sleep(delay)
    faults.extract_kill_once()
    faults.extract_fail(index)


def _worker_obs_begin():
    """Arm per-shard telemetry collection inside a pool worker.

    Under ``fork`` the child inherited the parent's live registry
    (non-zero values) and sink list (shared file handles); under
    ``spawn`` it starts disabled and empty.  Both cases normalise to
    the same protocol: drop inherited sinks (the parent replays our
    spans itself — writing through a forked JSONL handle would
    double-log), capture our finished spans locally, switch recording
    on, and snapshot the registry so only *this shard's* increments
    ship home.
    """
    obs_tracing.clear_sinks()
    sink = InMemorySink()
    obs_tracing.add_sink(sink)
    obs_metrics.enable()
    return sink, obs_metrics.get_registry().state()


def _worker_obs_delta(sink: InMemorySink, baseline) -> Dict:
    """The shard's telemetry delta: metric diffs plus finished spans."""
    delta = obs_metrics.get_registry().delta_since(baseline)
    obs_tracing.clear_sinks()
    spans = []
    for record in sink.spans:
        record = dict(record)
        record["process"] = "worker"
        spans.append(record)
    return {"metrics": delta, "spans": spans, "pid": os.getpid()}


def _run_shard(
    token: int,
    index: int,
    hosts: Tuple[str, ...],
    grace_period: float,
    kernel: str,
    payload: Optional[Dict[str, List[FlowRecord]]],
    store_spec: Optional[Tuple] = None,
    collect_obs: bool = False,
):
    """Worker entry: extract one shard → (index, result, secs, obs).

    ``result`` is a ``_ShardColumns`` for the vectorized kernel (the
    parent assembles features) or a ready ``{host: HostFeatures}`` map
    for the reference kernel.  With ``store_spec`` the shard is
    segment-backed: the worker opens the segment store itself and
    memory-maps just this shard's rows — no snapshot was forked or
    shipped, so the parent's address space never holds the trace.

    ``collect_obs`` (set when the parent has observability enabled)
    makes the worker record its own metrics/spans for the duration of
    the shard and return the delta as the fourth tuple element; the
    parent merges it, so worker-side counters (``repro_storage_*``,
    kernel histograms) no longer die with the pool.  A shard that
    *raises* ships nothing — its partial increments are lost with the
    attempt, and the retry's delta stands alone.
    """
    t0 = time.perf_counter()
    obs_state = _worker_obs_begin() if collect_obs else None
    _inject_faults(index)
    if store_spec is not None:
        view = _view_from_spec(store_spec)
        if kernel == "vectorized":
            result = view.shard_columns(hosts, grace_period)
        else:
            result = _extract_shard_reference(
                hosts, view.flows_from, grace_period
            )
    elif payload is not None:
        if kernel == "vectorized":
            result = _shard_columns_from_flows(hosts, payload.__getitem__, grace_period)
        else:
            result = _extract_shard_reference(hosts, payload.__getitem__, grace_period)
    else:
        store = _PARENT_STORES.get(token)
        if store is None:
            raise RuntimeError("worker has no inherited store and no shard payload")
        if kernel == "vectorized":
            result = _shard_columns_from_snapshot(store.columnar(), hosts, grace_period)
        else:
            result = _extract_shard_reference(hosts, store.flows_from, grace_period)
    obs_delta = (
        _worker_obs_delta(*obs_state) if obs_state is not None else None
    )
    return index, result, time.perf_counter() - t0, obs_delta


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ParallelExtractor:
    """Reusable sharded extraction engine bound to one :class:`FlowStore`.

    Keeps a warm worker pool (and the store's columnar snapshot) across
    :meth:`extract` calls, so repeated extraction — tumbling windows,
    threshold sweeps, benchmark repeats — pays process start-up once.
    The pool is keyed to the store's mutation version and transparently
    recreated when the store changes.  Use as a context manager, or
    call :meth:`close` explicitly; the one-shot wrapper
    :func:`extract_features_parallel` does both for you.
    """

    def __init__(
        self,
        store: FlowStore,
        n_workers: Optional[int] = None,
        *,
        kernel: str = "vectorized",
        max_retries: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        on_degrade: Optional[OnDegrade] = None,
    ) -> None:
        if kernel not in PARALLEL_KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {PARALLEL_KERNELS}"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        workers = int(n_workers or 1)
        if workers < 1:
            raise ValueError("n_workers must be >= 0")
        self.store = store
        self.n_workers = workers
        self.kernel = kernel
        # ``retry_policy`` wins when given; ``max_retries`` remains the
        # simple knob (N extra attempts, short capped backoff).
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=max_retries + 1,
            base_delay=0.05,
            max_delay=2.0,
        )
        self.max_retries = self.retry_policy.max_attempts - 1
        self.on_degrade = on_degrade
        self._token = next(_TOKENS)
        self._context = _fork_context()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_version: Optional[int] = None
        # A store exposing ``parallel_spec`` (a segment-store view) is
        # segment-backed: workers re-open it from the spec and mmap
        # independently, so it is never published for fork inheritance
        # and no snapshot is built or shipped.
        self._store_spec: Optional[Tuple] = getattr(
            store, "parallel_spec", None
        )
        if (
            self._store_spec is None
            and self._context is not None
            and workers > 1
        ):
            _PARENT_STORES[self._token] = store

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and unpublish the store."""
        self._teardown_pool()
        _PARENT_STORES.pop(self._token, None)

    def __enter__(self) -> "ParallelExtractor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_version = None

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """A pool whose forked workers snapshot the *current* store."""
        if self._pool is not None and self._pool_version != self.store.version:
            # The store mutated since the workers forked; their snapshot
            # is stale and silently wrong — recreate.
            self._teardown_pool()
        if self._pool is None:
            if (
                self.kernel == "vectorized"
                and self._context is not None
                and self._store_spec is None
            ):
                # Build the columnar snapshot in the parent before the
                # fork so every worker inherits it already built.  A
                # segment-backed store skips this: materialising the
                # full trace in the parent is exactly what it avoids.
                self.store.columnar()
            self._pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=self._context
            )
            self._pool_version = self.store.version
        return self._pool

    # -- extraction -----------------------------------------------------
    def extract(
        self,
        hosts: Optional[Iterable[str]] = None,
        *,
        grace_period: float = NEW_IP_GRACE_PERIOD,
        checkpoint_dir: Optional[Union[str, os.PathLike]] = None,
        resume: bool = False,
        n_shards: Optional[int] = None,
    ) -> Dict[str, HostFeatures]:
        """Extract features for ``hosts`` (default: every initiator).

        Hosts without any initiated flow are omitted from the result,
        matching :func:`~repro.flows.metrics.extract_all_features`,
        whose output this reproduces bit-for-bit.
        """
        counts_all = self.store.flow_counts()
        if hosts is None:
            wanted = counts_all
        else:
            wanted = {h: counts_all[h] for h in hosts if h in counts_all}
        if not wanted:
            return {}

        if n_shards is None:
            n_shards = self.n_workers * SHARDS_PER_WORKER
        n_shards = max(1, min(n_shards, len(wanted)))
        workers = min(self.n_workers, n_shards)

        directory = Path(checkpoint_dir) if checkpoint_dir is not None else None
        planned = plan_shards(wanted, n_shards)
        shards = [
            Shard(
                index=index,
                hosts=shard_hosts,
                flow_count=sum(wanted[h] for h in shard_hosts),
                key=(
                    shard_checkpoint_key(shard_hosts, wanted, grace_period)
                    if directory is not None
                    else ""
                ),
            )
            for index, shard_hosts in enumerate(planned)
        ]

        with span(
            "extract_parallel",
            hosts=len(wanted),
            shards=len(shards),
            workers=workers,
            kernel=self.kernel,
        ) as root:
            if obs_metrics.is_enabled():
                _WORKERS_GAUGE.set(workers)
                _HOSTS_GAUGE.set(len(wanted))

            results: Dict[int, Dict[str, HostFeatures]] = {}
            pending: List[Shard] = []
            checkpoint_hits = 0
            ckpt: Optional[_Checkpointing] = None
            if directory is not None:
                ckpt = _Checkpointing(directory, self.on_degrade)
                ckpt.prepare(shards, grace_period, self.kernel)
            for shard in shards:
                restored = None
                if ckpt is not None and resume:
                    restored = ckpt.load(shard)
                    _CHECKPOINT.inc(result="hit" if restored is not None else "miss")
                if restored is not None:
                    results[shard.index] = restored
                    checkpoint_hits += 1
                else:
                    pending.append(shard)
            if checkpoint_hits:
                logger.info(
                    "resume: %d/%d shards restored from %s",
                    checkpoint_hits,
                    len(shards),
                    directory,
                )

            def complete(shard: Shard, result, elapsed: float) -> None:
                features = result if isinstance(result, dict) else _assemble(result)
                results[shard.index] = features
                _SHARDS.inc(result="ok")
                _SHARD_SECONDS.observe(elapsed)
                if ckpt is not None:
                    ckpt.write(shard, features)

            if workers <= 1:
                self._run_inprocess(pending, grace_period, complete)
            else:
                self._run_pooled(pending, grace_period, workers, complete)
            root.set(computed_shards=len(pending), checkpoint_hits=checkpoint_hits)

        merged: Dict[str, HostFeatures] = {}
        for shard in shards:
            merged.update(results[shard.index])
        return merged

    def _run_inprocess(
        self,
        pending: Sequence[Shard],
        grace_period: float,
        complete: Callable[[Shard, object, float], None],
    ) -> None:
        """Sequential execution with the same retry/checkpoint semantics.

        Per-shard retry runs under :attr:`retry_policy` (jittered
        exponential backoff between attempts); exhaustion surfaces as a
        :class:`ShardExtractionError` carrying the policy's error
        history.
        """
        store_backed = self._store_spec is not None
        snapshot = (
            self.store.columnar()
            if self.kernel == "vectorized" and not store_backed
            else None
        )

        def run_shard(shard: Shard) -> Tuple[object, float]:
            t0 = time.perf_counter()
            _inject_faults(shard.index)
            if store_backed and self.kernel == "vectorized":
                # Per-shard gathers: only one shard's rows are ever
                # materialised at a time, which is what bounds peak
                # memory on traces larger than RAM.
                result = self.store.shard_columns(shard.hosts, grace_period)
            elif snapshot is not None:
                result = _shard_columns_from_snapshot(
                    snapshot, shard.hosts, grace_period
                )
            else:
                result = _extract_shard_reference(
                    shard.hosts, self.store.flows_from, grace_period
                )
            return result, time.perf_counter() - t0

        def note_retry(exc: BaseException, attempt: int) -> None:
            _RETRIES.inc()
            _SHARDS.inc(result="retried")

        policy = dataclass_replace(self.retry_policy, on_retry=note_retry)
        for shard in pending:
            try:
                result, elapsed = policy.call(
                    run_shard, shard, name=f"extract_shard[{shard.index}]"
                )
            except RetryError as err:
                _SHARDS.inc(result="failed")
                raise ShardExtractionError(
                    [
                        ShardFailure(
                            index=shard.index,
                            host_count=len(shard.hosts),
                            attempts=err.attempts,
                            errors=err.errors,
                        )
                    ]
                ) from err
            complete(shard, result, elapsed)

    def _run_pooled(
        self,
        pending: Sequence[Shard],
        grace_period: float,
        workers: int,
        complete: Callable[[Shard, object, float], None],
    ) -> None:
        """Chunked pool execution in retry waves.

        Shards are submitted as independent tasks; any that fail (worker
        exception or a broken pool) are collected and resubmitted to a
        fresh pool, up to the retry policy's extra attempts.  A broken
        pool poisons every still-pending future in its wave, so wave
        granularity — rather than per-future retry against a
        possibly-dead executor — is what makes worker crashes
        recoverable.  The policy's backoff runs between waves, and a
        pool warm-restart is reported through ``on_degrade`` so the run
        summary shows it.
        """
        remaining = list(pending)
        attempts: Dict[int, int] = {shard.index: 0 for shard in pending}
        errors: Dict[int, List[str]] = {shard.index: [] for shard in pending}
        wave = 0
        while remaining:
            if wave:
                delay = self.retry_policy.delay(wave)
                if delay > 0:
                    self.retry_policy.sleep(delay)
            wave += 1
            pool = self._ensure_pool(workers)
            failed_wave: List[Shard] = []
            pool_broken = False
            collect_obs = obs_metrics.is_enabled()
            futures = {}
            for shard in remaining:
                payload = None
                if self._context is None and self._store_spec is None:
                    payload = {h: self.store.flows_from(h) for h in shard.hosts}
                futures[
                    pool.submit(
                        _run_shard,
                        self._token,
                        shard.index,
                        shard.hosts,
                        grace_period,
                        self.kernel,
                        payload,
                        self._store_spec,
                        collect_obs,
                    )
                ] = shard
            for future, shard in futures.items():
                try:
                    _, result, elapsed, obs_delta = future.result()
                except Exception as exc:  # noqa: BLE001 - retried below
                    attempts[shard.index] += 1
                    errors[shard.index].append(f"{type(exc).__name__}: {exc}")
                    failed_wave.append(shard)
                    if isinstance(exc, BaseException) and (
                        "BrokenProcessPool" in type(exc).__name__
                    ):
                        pool_broken = True
                else:
                    if obs_delta is not None:
                        # Fold the worker's shard-scoped telemetry into
                        # the parent registry and replay its spans to
                        # our sinks — the cross-process half of the
                        # "merged parallel ≡ sequential" contract.
                        obs_metrics.get_registry().merge_delta(
                            obs_delta["metrics"]
                        )
                        obs_tracing.replay_span_records(obs_delta["spans"])
                    # Same attempt series RetryPolicy.call emits on the
                    # sequential path — pooled and in-process runs must
                    # report identical counter totals.
                    record_attempt(f"extract_shard[{shard.index}]", "ok")
                    complete(shard, result, elapsed)
            if pool_broken:
                self._teardown_pool()
                logger.warning(
                    "worker pool broke mid-wave; warm-restarting for the "
                    "retry wave"
                )
                if self.on_degrade is not None:
                    self.on_degrade(
                        "extract_pool",
                        "pool",
                        "pool-restart",
                        "BrokenProcessPool: worker died mid-wave",
                    )
            fatal = [
                shard
                for shard in failed_wave
                if attempts[shard.index] > self.max_retries
            ]
            if fatal:
                for shard in fatal:
                    _SHARDS.inc(result="failed")
                    record_attempt(f"extract_shard[{shard.index}]", "giveup")
                raise ShardExtractionError(
                    [
                        ShardFailure(
                            index=shard.index,
                            host_count=len(shard.hosts),
                            attempts=attempts[shard.index],
                            errors=tuple(errors[shard.index]),
                        )
                        for shard in sorted(fatal, key=lambda s: s.index)
                    ]
                )
            for shard in failed_wave:
                _RETRIES.inc()
                _SHARDS.inc(result="retried")
                record_attempt(f"extract_shard[{shard.index}]", "retried")
                logger.warning(
                    "shard %d failed (attempt %d/%d): %s — retrying",
                    shard.index,
                    attempts[shard.index],
                    self.max_retries + 1,
                    errors[shard.index][-1],
                )
            remaining = failed_wave


def extract_features_parallel(
    store: FlowStore,
    hosts: Optional[Iterable[str]] = None,
    *,
    n_workers: Optional[int] = None,
    grace_period: float = NEW_IP_GRACE_PERIOD,
    checkpoint_dir: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    max_retries: int = 2,
    n_shards: Optional[int] = None,
    kernel: str = "vectorized",
    retry_policy: Optional[RetryPolicy] = None,
    on_degrade: Optional[OnDegrade] = None,
) -> Dict[str, HostFeatures]:
    """One-shot sharded (optionally multi-process) feature extraction.

    Convenience wrapper: builds a :class:`ParallelExtractor`, runs one
    :meth:`~ParallelExtractor.extract`, and tears the engine down.
    Callers that extract repeatedly from the same store should hold a
    :class:`ParallelExtractor` instead and reuse its warm pool.
    """
    with ParallelExtractor(
        store,
        n_workers,
        kernel=kernel,
        max_retries=max_retries,
        retry_policy=retry_policy,
        on_degrade=on_degrade,
    ) as engine:
        return engine.extract(
            hosts,
            grace_period=grace_period,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            n_shards=n_shards,
        )
