"""Flow sampling at the collection point.

Real border monitors under load keep only a subset of flows (systematic
1-in-N or hash-based sampling).  The paper assumes full flow capture
(~5000 flows/s at CMU); the sampling module lets the reproduction ask
the operationally crucial question the paper leaves open: *how much
sampling can the detector tolerate?*  (Answered empirically by the
sensitivity experiment / benchmark.)

Two strategies are provided:

* :func:`sample_uniform` — keep each flow independently with
  probability 1/N (what a probabilistic sampler does);
* :func:`sample_per_host` — hash-based *host-consistent* sampling: all
  flows of a sampled initiator are kept.  This preserves per-host
  features exactly for the retained hosts and models samplers keyed on
  source address.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from .record import FlowRecord
from .store import FlowStore

__all__ = ["sample_uniform", "sample_per_host"]


def sample_uniform(
    store: FlowStore, rate: float, rng: random.Random
) -> FlowStore:
    """Keep each flow independently with probability ``rate``.

    ``rate`` is the retention probability (1.0 = keep everything);
    1-in-N sampling is ``rate = 1/N``.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("sampling rate must lie in (0, 1]")
    if rate == 1.0:
        return FlowStore(list(store))
    return FlowStore(f for f in store if rng.random() < rate)


def sample_per_host(
    store: FlowStore, rate: float, salt: int = 0
) -> FlowStore:
    """Keep all flows of a deterministic ``rate``-fraction of initiators.

    The choice is a salted hash of the source address, so the same host
    is retained (or not) consistently across days — the property an
    operator needs for longitudinal analysis.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("sampling rate must lie in (0, 1]")
    if rate == 1.0:
        return FlowStore(list(store))
    threshold = int(rate * (1 << 32))

    def keep(src: str) -> bool:
        return zlib.crc32(f"{salt}:{src}".encode()) < threshold

    return FlowStore(f for f in store if keep(f.src))
