"""An indexed, in-memory collection of flow records.

The detection tests (§IV) all consume "a collection of traffic Λ involving
a group S of internal hosts over a time window D".  :class:`FlowStore` is
that Λ: it holds flow records sorted by start time and maintains a
per-initiator index so per-host feature extraction is cheap.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from .record import FlowRecord, FlowState

__all__ = ["ColumnarFlows", "FlowStore"]


@dataclass(frozen=True)
class ColumnarFlows:
    """Immutable columnar snapshot of a store's per-initiator flows.

    Flows are grouped by initiator (hosts in sorted order) and kept in
    start-time order within each group — host ``hosts[i]``'s flows live
    at ``starts[host_offsets[i]:host_offsets[i + 1]]`` and friends.
    Destinations are factorized into dense integer codes so group-by
    kernels (:mod:`repro.flows.parallel`) never touch flow *objects*:
    one attribute-access pass at build time buys array-speed extraction
    for every engine run until the store mutates.
    """

    hosts: Tuple[str, ...]
    index_of: Dict[str, int]
    host_offsets: np.ndarray
    starts: np.ndarray
    src_bytes: np.ndarray
    success: np.ndarray
    dst_codes: np.ndarray
    n_destinations: int

    @property
    def n_flows(self) -> int:
        """Total flows in the snapshot."""
        return int(self.host_offsets[-1])


def _build_columnar(by_src: Dict[str, List[FlowRecord]]) -> ColumnarFlows:
    hosts = tuple(sorted(by_src))
    counts = np.array([len(by_src[host]) for host in hosts], dtype=np.int64)
    host_offsets = np.zeros(len(hosts) + 1, dtype=np.int64)
    np.cumsum(counts, out=host_offsets[1:])
    total = int(host_offsets[-1])
    all_flows: List[FlowRecord] = []
    for host in hosts:
        all_flows.extend(by_src[host])
    established = FlowState.ESTABLISHED
    codes: Dict[str, int] = {}
    return ColumnarFlows(
        hosts=hosts,
        index_of={host: i for i, host in enumerate(hosts)},
        host_offsets=host_offsets,
        starts=np.array([f.start for f in all_flows], dtype=np.float64),
        src_bytes=np.array([f.src_bytes for f in all_flows], dtype=np.int64),
        success=np.array(
            [f.state is established for f in all_flows], dtype=np.int64
        ),
        dst_codes=np.fromiter(
            (codes.setdefault(f.dst, len(codes)) for f in all_flows),
            dtype=np.int64,
            count=total,
        ),
        n_destinations=len(codes),
    )


class FlowStore:
    """A queryable collection of :class:`~repro.flows.record.FlowRecord`.

    The store is append-oriented: records may be added in any order and
    are kept sorted by flow start time.  Hosts are indexed by the
    *initiator* address because every per-host feature in the paper is
    computed over the flows a host initiates (uploads, contacted
    destinations, connection attempts).

    **Sort-once invariant:** the per-initiator index is maintained in
    start-time order at insertion, so :meth:`flows_from` never re-sorts.
    Feature extraction (:mod:`repro.flows.metrics`,
    :mod:`repro.flows.parallel`) relies on this invariant and passes
    ``presorted=True`` to the per-metric helpers.
    """

    def __init__(self, flows: Optional[Iterable[FlowRecord]] = None) -> None:
        self._flows: List[FlowRecord] = []
        self._starts: List[float] = []
        self._by_src: Dict[str, List[FlowRecord]] = {}
        self._version = 0
        self._columnar: Optional[ColumnarFlows] = None
        self._columnar_version = -1
        if flows is not None:
            self.extend(flows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, flow: FlowRecord) -> None:
        """Insert one flow, keeping start-time order."""
        self._version += 1
        idx = bisect.bisect_right(self._starts, flow.start)
        self._flows.insert(idx, flow)
        self._starts.insert(idx, flow.start)
        per_src = self._by_src.setdefault(flow.src, [])
        per_src.append(flow)
        # Keep the per-initiator index start-ordered at insertion time
        # (the sort-once invariant flows_from() relies on).  Appends in
        # time order — the common case — never trigger the sort.
        if len(per_src) > 1 and per_src[-2].start > flow.start:
            per_src.sort(key=lambda f: f.start)

    def extend(self, flows: Iterable[FlowRecord]) -> None:
        """Insert many flows (more efficient than repeated :meth:`add`)."""
        incoming = list(flows)
        if not incoming:
            return
        self._version += 1
        self._flows.extend(incoming)
        self._flows.sort(key=lambda f: f.start)
        self._starts = [f.start for f in self._flows]
        self._by_src = {}
        for flow in self._flows:
            self._by_src.setdefault(flow.src, []).append(flow)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._flows)

    def __bool__(self) -> bool:
        return bool(self._flows)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def initiators(self) -> Set[str]:
        """All source addresses that initiated at least one flow."""
        return set(self._by_src)

    @property
    def span(self) -> float:
        """Time between the earliest flow start and the latest flow end."""
        if not self._flows:
            return 0.0
        return max(f.end for f in self._flows) - self._starts[0]

    def flows_from(self, host: str) -> List[FlowRecord]:
        """Flows initiated by ``host``, in start-time order.

        The per-initiator index is kept start-ordered at insertion, so
        this is a plain copy — no per-call sort.
        """
        return list(self._by_src.get(host, []))

    def flow_counts(self) -> Dict[str, int]:
        """Number of initiated flows per initiator (no list copies).

        The shard planner (:func:`repro.flows.parallel.plan_shards`)
        balances shards by this map.
        """
        return {host: len(flows) for host, flows in self._by_src.items()}

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every :meth:`add` / :meth:`extend`.

        Engines that snapshot the store (worker pools, the columnar
        view) key their caches on this to detect staleness.
        """
        return self._version

    def columnar(self) -> ColumnarFlows:
        """The cached columnar snapshot, rebuilt after mutations.

        Building it costs one pass over the flow objects; every
        subsequent vectorized-extraction run on the unchanged store
        reuses the arrays for free.
        """
        if self._columnar is None or self._columnar_version != self._version:
            self._columnar = _build_columnar(self._by_src)
            self._columnar_version = self._version
        return self._columnar

    def flows_involving(self, host: str) -> List[FlowRecord]:
        """Flows where ``host`` is either endpoint, in start-time order."""
        return [f for f in self._flows if f.involves(host)]

    def between(self, t0: float, t1: float) -> "FlowStore":
        """Flows whose start time lies in ``[t0, t1)``, as a new store."""
        lo = bisect.bisect_left(self._starts, t0)
        hi = bisect.bisect_left(self._starts, t1)
        return FlowStore(self._flows[lo:hi])

    def filter(self, predicate: Callable[[FlowRecord], bool]) -> "FlowStore":
        """A new store with only the flows satisfying ``predicate``."""
        return FlowStore([f for f in self._flows if predicate(f)])

    def restricted_to_sources(self, hosts: Iterable[str]) -> "FlowStore":
        """A new store with only flows initiated by the given hosts."""
        wanted = set(hosts)
        kept: List[FlowRecord] = []
        for host in wanted:
            kept.extend(self._by_src.get(host, []))
        return FlowStore(kept)

    def merged_with(self, other: "FlowStore") -> "FlowStore":
        """A new store holding the union of both stores' flows."""
        merged = FlowStore(self._flows)
        merged.extend(list(other))
        return merged

    def destinations_of(self, host: str) -> Set[str]:
        """Distinct destination addresses contacted by ``host``."""
        return {f.dst for f in self._by_src.get(host, [])}
