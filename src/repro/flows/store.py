"""An indexed, in-memory collection of flow records.

The detection tests (§IV) all consume "a collection of traffic Λ involving
a group S of internal hosts over a time window D".  :class:`FlowStore` is
that Λ: it holds flow records sorted by start time and maintains a
per-initiator index so per-host feature extraction is cheap.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from .record import FlowRecord

__all__ = ["FlowStore"]


class FlowStore:
    """A queryable collection of :class:`~repro.flows.record.FlowRecord`.

    The store is append-oriented: records may be added in any order and
    are kept sorted by flow start time.  Hosts are indexed by the
    *initiator* address because every per-host feature in the paper is
    computed over the flows a host initiates (uploads, contacted
    destinations, connection attempts).
    """

    def __init__(self, flows: Optional[Iterable[FlowRecord]] = None) -> None:
        self._flows: List[FlowRecord] = []
        self._starts: List[float] = []
        self._by_src: Dict[str, List[FlowRecord]] = {}
        if flows is not None:
            self.extend(flows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, flow: FlowRecord) -> None:
        """Insert one flow, keeping start-time order."""
        idx = bisect.bisect_right(self._starts, flow.start)
        self._flows.insert(idx, flow)
        self._starts.insert(idx, flow.start)
        self._by_src.setdefault(flow.src, []).append(flow)

    def extend(self, flows: Iterable[FlowRecord]) -> None:
        """Insert many flows (more efficient than repeated :meth:`add`)."""
        incoming = list(flows)
        if not incoming:
            return
        self._flows.extend(incoming)
        self._flows.sort(key=lambda f: f.start)
        self._starts = [f.start for f in self._flows]
        self._by_src = {}
        for flow in self._flows:
            self._by_src.setdefault(flow.src, []).append(flow)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._flows)

    def __bool__(self) -> bool:
        return bool(self._flows)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def initiators(self) -> Set[str]:
        """All source addresses that initiated at least one flow."""
        return set(self._by_src)

    @property
    def span(self) -> float:
        """Time between the earliest flow start and the latest flow end."""
        if not self._flows:
            return 0.0
        return max(f.end for f in self._flows) - self._starts[0]

    def flows_from(self, host: str) -> List[FlowRecord]:
        """Flows initiated by ``host``, in start-time order."""
        return sorted(self._by_src.get(host, []), key=lambda f: f.start)

    def flows_involving(self, host: str) -> List[FlowRecord]:
        """Flows where ``host`` is either endpoint, in start-time order."""
        return [f for f in self._flows if f.involves(host)]

    def between(self, t0: float, t1: float) -> "FlowStore":
        """Flows whose start time lies in ``[t0, t1)``, as a new store."""
        lo = bisect.bisect_left(self._starts, t0)
        hi = bisect.bisect_left(self._starts, t1)
        return FlowStore(self._flows[lo:hi])

    def filter(self, predicate: Callable[[FlowRecord], bool]) -> "FlowStore":
        """A new store with only the flows satisfying ``predicate``."""
        return FlowStore([f for f in self._flows if predicate(f)])

    def restricted_to_sources(self, hosts: Iterable[str]) -> "FlowStore":
        """A new store with only flows initiated by the given hosts."""
        wanted = set(hosts)
        kept: List[FlowRecord] = []
        for host in wanted:
            kept.extend(self._by_src.get(host, []))
        return FlowStore(kept)

    def merged_with(self, other: "FlowStore") -> "FlowStore":
        """A new store holding the union of both stores' flows."""
        merged = FlowStore(self._flows)
        merged.extend(list(other))
        return merged

    def destinations_of(self, host: str) -> Set[str]:
        """Distinct destination addresses contacted by ``host``."""
        return {f.dst for f in self._by_src.get(host, [])}
