"""Bi-directional flow records in the style of Argus / the RTFM flow model.

The paper (§III) consumes traffic organised by Argus into bi-directional
flow records: packets sharing the 5-tuple (source IP, destination IP,
source port, destination port, protocol) are grouped into one record that
summarises both directions of the conversation.  The source address of the
record is the host that *initiated* the connection.

Each record carries the fields the paper relies on:

* addressing and protocol (the 5-tuple),
* start and end times of the flow,
* packet and byte counts, split by direction (bytes uploaded by the
  initiator are what the volume test measures),
* a TCP/UDP "state" from which connection success or failure is judged,
* the first 64 bytes of payload, used *only* for ground-truth labeling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = [
    "Protocol",
    "FlowState",
    "FlowRecord",
    "PAYLOAD_SNIPPET_LEN",
]

#: Number of leading payload bytes retained per flow, as in the paper (§III).
PAYLOAD_SNIPPET_LEN = 64


class Protocol(enum.Enum):
    """Transport protocol of a flow.  The paper restricts to TCP and UDP."""

    TCP = "tcp"
    UDP = "udp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class FlowState(enum.Enum):
    """Outcome of a connection attempt, summarised at flow granularity.

    Argus reports per-flow TCP state; for the purposes of the paper only
    the distinction between *successful* and *failed* connections matters
    (failed-connection rate drives the initial data-reduction step, §V-A).

    * ``ESTABLISHED`` — the handshake completed / the UDP request was
      answered.
    * ``REJECTED`` — the remote end actively refused (TCP RST).
    * ``TIMEOUT`` — no answer at all (SYN timeout, unanswered UDP).
    """

    ESTABLISHED = "est"
    REJECTED = "rej"
    TIMEOUT = "timeout"

    @property
    def failed(self) -> bool:
        """Whether this state counts as a failed connection attempt."""
        return self is not FlowState.ESTABLISHED

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FlowRecord:
    """One bi-directional flow record.

    Attributes
    ----------
    src:
        IP address (dotted quad) of the connection initiator.
    dst:
        IP address of the responder.
    sport, dport:
        Transport ports on the initiator / responder side.
    proto:
        Transport protocol (TCP or UDP).
    start, end:
        Flow start and end times, in seconds since the epoch of the
        containing trace.  ``end >= start``.
    src_bytes, dst_bytes:
        Application bytes sent by the initiator / by the responder.
    src_pkts, dst_pkts:
        Packets sent by the initiator / by the responder.
    state:
        Connection outcome; failed flows carry no responder payload.
    payload:
        First bytes (at most :data:`PAYLOAD_SNIPPET_LEN`) of the
        initiator's payload.  Used exclusively for ground truth.
    """

    src: str
    dst: str
    sport: int
    dport: int
    proto: Protocol
    start: float
    end: float
    src_bytes: int = 0
    dst_bytes: int = 0
    src_pkts: int = 0
    dst_pkts: int = 0
    state: FlowState = FlowState.ESTABLISHED
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"flow end {self.end!r} precedes start {self.start!r}"
            )
        if min(self.src_bytes, self.dst_bytes, self.src_pkts, self.dst_pkts) < 0:
            raise ValueError("packet/byte counts must be non-negative")
        if not (0 <= self.sport <= 65535 and 0 <= self.dport <= 65535):
            raise ValueError(
                f"ports must be in [0, 65535]: {self.sport}, {self.dport}"
            )
        if len(self.payload) > PAYLOAD_SNIPPET_LEN:
            object.__setattr__(self, "payload", self.payload[:PAYLOAD_SNIPPET_LEN])

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Flow duration in seconds."""
        return self.end - self.start

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.src_bytes + self.dst_bytes

    @property
    def total_pkts(self) -> int:
        """Packets in both directions."""
        return self.src_pkts + self.dst_pkts

    @property
    def failed(self) -> bool:
        """Whether the connection attempt failed (see :class:`FlowState`)."""
        return self.state.failed

    @property
    def five_tuple(self) -> Tuple[str, str, int, int, Protocol]:
        """The (src, dst, sport, dport, proto) key identifying the flow."""
        return (self.src, self.dst, self.sport, self.dport, self.proto)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def shifted(self, delta: float) -> "FlowRecord":
        """Return a copy of this flow translated in time by ``delta``."""
        return replace(self, start=self.start + delta, end=self.end + delta)

    def reassigned(self, new_src: str) -> "FlowRecord":
        """Return a copy originating from ``new_src``.

        Used when overlaying honeynet Plotter traces onto internal campus
        hosts (§V): the bot's flows are re-attributed to the chosen host.
        """
        return replace(self, src=new_src)

    def scaled_volume(self, factor: float) -> "FlowRecord":
        """Return a copy with initiator bytes scaled by ``factor``.

        Supports the volume-inflation evasion experiments (§VI).
        """
        if factor < 0:
            raise ValueError("volume scale factor must be non-negative")
        return replace(self, src_bytes=int(round(self.src_bytes * factor)))

    def involves(self, host: str) -> bool:
        """Whether ``host`` is an endpoint of this flow."""
        return host == self.src or host == self.dst

    def peer_of(self, host: str) -> Optional[str]:
        """The other endpoint when ``host`` is one endpoint, else ``None``."""
        if host == self.src:
            return self.dst
        if host == self.dst:
            return self.src
        return None
