"""The paper's contribution: tests separating Plotters from Traders."""

from .testbase import TestResult
from .reduction import failed_rates, initial_data_reduction
from .volume import theta_vol, volume_metric
from .churn import churn_metric, theta_churn
from .humanmachine import HmClustering, host_histograms, theta_hm
from .pipeline import PipelineConfig, PipelineResult, find_plotters
from .portsplit import (
    PortSplitConfig,
    PortSplitResult,
    find_plotters_port_split,
)
from .incremental import OnlineDetector, OnlineVerdict
from .tracking import DayVerdict, SuspectTracker
from .explain import (
    HostExplanation,
    StageEvidence,
    explain_host,
    format_explanation,
)
from .report import (
    DetectionReport,
    StageCounts,
    average_reports,
    evaluate_pipeline,
)

__all__ = [
    "TestResult",
    "failed_rates",
    "initial_data_reduction",
    "theta_vol",
    "volume_metric",
    "churn_metric",
    "theta_churn",
    "HmClustering",
    "host_histograms",
    "theta_hm",
    "PipelineConfig",
    "PipelineResult",
    "find_plotters",
    "PortSplitConfig",
    "PortSplitResult",
    "find_plotters_port_split",
    "OnlineDetector",
    "OnlineVerdict",
    "DayVerdict",
    "SuspectTracker",
    "HostExplanation",
    "StageEvidence",
    "explain_host",
    "format_explanation",
    "DetectionReport",
    "StageCounts",
    "average_reports",
    "evaluate_pipeline",
]
