"""Per-host evidence reports: *why* was this host flagged (or not)?

A detector an operator will actually act on must show its work.  Given
a finished :class:`~repro.detection.pipeline.PipelineResult`,
:func:`explain_host` assembles the complete evidence trail for one
host — every metric against the threshold it was compared to, which
stages passed, and (for flagged hosts) which other hosts share its
timing cluster.  Co-members matter operationally: if three flagged
hosts sit in one tight cluster, they are likely the *same botnet*, and
the cluster is the incident, not the individual host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..flows.store import FlowStore
from .humanmachine import HmClustering, cluster_hosts, host_histograms
from .pipeline import PipelineConfig, PipelineResult

__all__ = ["StageEvidence", "HostExplanation", "explain_host", "format_explanation"]


@dataclass(frozen=True)
class StageEvidence:
    """One stage's verdict on the host."""

    stage: str
    metric_name: str
    value: Optional[float]
    threshold: Optional[float]
    keep_below: bool
    passed: bool

    @property
    def comparison(self) -> str:
        """Human-readable relation, e.g. ``"0.12 < 0.35"``."""
        if self.value is None or self.threshold is None:
            return "not evaluated"
        op = "<" if self.keep_below else ">"
        return f"{self.value:.4g} {op} {self.threshold:.4g}"


@dataclass(frozen=True)
class HostExplanation:
    """The full evidence trail for one host."""

    host: str
    flagged: bool
    stages: Tuple[StageEvidence, ...]
    cluster_members: Tuple[str, ...]
    cluster_diameter: Optional[float]

    @property
    def failed_stage(self) -> Optional[str]:
        """The first stage that cleared the host, if any."""
        for stage in self.stages:
            if not stage.passed:
                return stage.stage
        return None


def _stage(
    stage: str,
    metric_name: str,
    metric: Dict[str, float],
    threshold: float,
    host: str,
    keep_below: bool,
) -> StageEvidence:
    value = metric.get(host)
    if value is None:
        return StageEvidence(
            stage=stage,
            metric_name=metric_name,
            value=None,
            threshold=threshold,
            keep_below=keep_below,
            passed=False,
        )
    passed = value < threshold if keep_below else value > threshold
    return StageEvidence(
        stage=stage,
        metric_name=metric_name,
        value=value,
        threshold=threshold,
        keep_below=keep_below,
        passed=passed,
    )


def explain_host(
    result: PipelineResult,
    store: FlowStore,
    host: str,
    config: PipelineConfig = PipelineConfig(),
) -> HostExplanation:
    """Assemble the evidence trail for ``host`` from a pipeline run.

    Cluster membership is read off the clustering the pipeline already
    computed (``result.hm.detail``) whenever the result carries it;
    only results from older runs that lack it fall back to re-reading
    ``store`` — which must then be the same traffic the pipeline
    analysed — and re-clustering.
    """
    stages: List[StageEvidence] = []
    if result.reduction is not None:
        stages.append(
            _stage(
                "reduction",
                "failed-connection rate",
                result.reduction.metric,
                result.reduction.threshold,
                host,
                keep_below=False,
            )
        )
    stages.append(
        _stage(
            "volume",
            "avg bytes/flow",
            result.volume.metric,
            result.volume.threshold,
            host,
            keep_below=True,
        )
    )
    stages.append(
        _stage(
            "churn",
            "new-IP fraction",
            result.churn.metric,
            result.churn.threshold,
            host,
            keep_below=True,
        )
    )

    cluster_members: Tuple[str, ...] = ()
    cluster_diameter: Optional[float] = None
    if host in result.union_vol_churn:
        clustering = result.hm.detail
        if not isinstance(clustering, HmClustering):
            histograms = host_histograms(store, sorted(result.union_vol_churn))
            clustering = cluster_hosts(
                histograms, config.hm_percentile, config.hm_cut_fraction
            )
        for cluster, diameter in zip(clustering.clusters, clustering.diameters):
            if host in cluster:
                cluster_members = tuple(h for h in cluster if h != host)
                cluster_diameter = diameter
                break
        stages.append(
            StageEvidence(
                stage="human-machine",
                metric_name="timing-cluster diameter",
                value=cluster_diameter,
                threshold=result.hm.threshold,
                keep_below=True,
                passed=host in result.hm.selected,
            )
        )

    return HostExplanation(
        host=host,
        flagged=host in result.suspects,
        stages=tuple(stages),
        cluster_members=cluster_members,
        cluster_diameter=cluster_diameter,
    )


def format_explanation(explanation: HostExplanation) -> str:
    """Render an explanation as an operator-readable block."""
    verdict = "FLAGGED as likely Plotter" if explanation.flagged else "not flagged"
    lines = [f"host {explanation.host}: {verdict}"]
    for stage in explanation.stages:
        mark = "PASS" if stage.passed else "stop"
        lines.append(
            f"  [{mark}] {stage.stage:<14} {stage.metric_name}: "
            f"{stage.comparison}"
        )
    if explanation.cluster_members:
        shown = ", ".join(explanation.cluster_members[:6])
        extra = len(explanation.cluster_members) - 6
        if extra > 0:
            shown += f", … (+{extra})"
        lines.append(
            f"  timing cluster (diameter "
            f"{explanation.cluster_diameter:.3f}): shares timers with "
            f"{shown}"
        )
    elif explanation.flagged:
        lines.append("  timing cluster: (no co-members)")
    return "\n".join(lines)
