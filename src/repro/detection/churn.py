"""θ_churn — the peer-churn / persistence test (§IV-B).

A Trader's peer set is dictated by file availability and churns
constantly; a Plotter keeps talking to the peers on its stored list to
preserve botnet connectivity.  The metric is the fraction of destination
IPs a host first contacts *after its first hour of activity* in the
window, relative to all IPs it contacts — high values mean high churn.
Hosts below the dynamic threshold τ_churn (low churn) are retained as
Plotter-like.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from ..flows.metrics import (
    NEW_IP_GRACE_PERIOD,
    HostFeatures,
    new_ip_fraction,
)
from ..flows.store import FlowStore
from ..stats.thresholds import percentile_threshold, select_below
from .testbase import TestResult

__all__ = ["churn_metric", "theta_churn"]


def churn_metric(
    store: FlowStore,
    hosts: Iterable[str],
    grace_period: float = NEW_IP_GRACE_PERIOD,
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> Dict[str, float]:
    """Fraction of newly contacted IPs per host.

    With ``features`` the metric is read off pre-extracted bundles —
    the caller vouches the bundles were built with this
    ``grace_period`` — instead of re-scanning the store.
    """
    metric: Dict[str, float] = {}
    if features is not None:
        for host in hosts:
            bundle = features.get(host)
            if bundle is not None:
                metric[host] = bundle.new_ip_fraction
        return metric
    for host in hosts:
        flows = store.flows_from(host)
        if flows:
            metric[host] = new_ip_fraction(flows, grace_period)
    return metric


def theta_churn(
    store: FlowStore,
    hosts: Set[str],
    percentile: float = 50.0,
    grace_period: float = NEW_IP_GRACE_PERIOD,
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> TestResult:
    """Select hosts whose new-IP fraction is below τ_churn."""
    metric = churn_metric(store, hosts, grace_period, features)
    if not metric:
        return TestResult(name="churn", selected=frozenset(), threshold=0.0)
    threshold = percentile_threshold(list(metric.values()), percentile)
    selected = select_below(metric, threshold)
    return TestResult(
        name="churn",
        selected=frozenset(selected),
        threshold=threshold,
        metric=metric,
    )
