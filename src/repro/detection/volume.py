"""θ_vol — the traffic-volume test (§IV-A).

Traders move large multimedia files; Plotters exchange small control
messages.  The metric is the *average number of bytes uploaded per
flow*, which (unlike a cumulative byte count) a chatty-but-lightweight
Plotter cannot inflate just by sending many flows.  Hosts below the
dynamically chosen threshold τ_vol are retained as Plotter-like.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from ..flows.metrics import HostFeatures, average_flow_size
from ..flows.store import FlowStore
from ..stats.thresholds import percentile_threshold, select_below
from .testbase import TestResult

__all__ = ["volume_metric", "theta_vol"]


def volume_metric(
    store: FlowStore,
    hosts: Iterable[str],
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> Dict[str, float]:
    """Average uploaded bytes per flow, per host.

    With ``features`` (pre-extracted bundles, e.g. from the parallel
    engine) the metric is read off the bundles instead of re-scanning
    the store; hosts absent from the map are hosts without flows, which
    the store scan would skip too.
    """
    metric: Dict[str, float] = {}
    if features is not None:
        for host in hosts:
            bundle = features.get(host)
            if bundle is not None:
                metric[host] = bundle.avg_flow_size
        return metric
    for host in hosts:
        flows = store.flows_from(host)
        if flows:
            metric[host] = average_flow_size(flows)
    return metric


def theta_vol(
    store: FlowStore,
    hosts: Set[str],
    percentile: float = 50.0,
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> TestResult:
    """Select hosts whose average flow size is below τ_vol.

    τ_vol is the ``percentile``-th percentile of the metric over the
    input hosts — the paper's dynamic-threshold construction, which a
    Plotter cannot observe from inside one host (§VI).
    """
    metric = volume_metric(store, hosts, features)
    if not metric:
        return TestResult(name="volume", selected=frozenset(), threshold=0.0)
    threshold = percentile_threshold(list(metric.values()), percentile)
    selected = select_below(metric, threshold)
    return TestResult(
        name="volume",
        selected=frozenset(selected),
        threshold=threshold,
        metric=metric,
    )
