"""θ_hm — the human-driven vs. machine-driven test (§IV-C).

Machine-driven traffic runs on timers; human traffic does not.  For each
host the test pools the interstitial times between consecutive flows to
the same destination (across *all* destinations, since the monitor does
not know which are P2P peers), approximates the distribution with a
Freedman–Diaconis histogram, and compares hosts with the Earth Mover's
Distance.  Average-linkage agglomerative clustering with the top-5% link
cut groups hosts with similar timing; because bots of one botnet share
binary timers, they form *tight* clusters — so clusters whose diameter
exceeds the dynamic threshold τ_hm are discarded, and the union of the
surviving clusters is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..flows.metrics import HostFeatures, interstitial_times
from ..flows.store import FlowStore
from ..obs.tracing import span
from ..stats.clustering import (
    DEFAULT_CUT_FRACTION,
    average_linkage,
    cluster_diameters,
    cut_top_links,
)
from ..stats.emd import pairwise_emd, resolve_backend
from ..stats.histogram import Histogram, build_histogram
from ..stats.thresholds import percentile_threshold
from .testbase import TestResult

__all__ = ["HmClustering", "theta_hm", "host_histograms"]

#: Hosts need at least this many interstitial samples for a meaningful
#: histogram; below it the density estimate is pure sampling noise and
#: the host cannot meaningfully exhibit (or be cleared of) machine-like
#: periodicity.
MIN_SAMPLES = 20

#: Floor for interstitial samples before the log transform (seconds);
#: gaps below a millisecond are indistinguishable at flow granularity.
_LOG_FLOOR = 1e-3


@dataclass(frozen=True)
class HmClustering:
    """Diagnostic view of one θ_hm run.

    Carries the clusters, their diameters, and the applied threshold so
    the evaluation (and the evasion study) can see how hosts grouped.
    ``backend`` is the *resolved* pairwise-EMD engine that actually ran
    (never ``"auto"``), so callers and tests can observe which rung of
    the escalation ladder a given population landed on.
    """

    hosts: Tuple[str, ...]
    clusters: Tuple[Tuple[str, ...], ...]
    diameters: Tuple[float, ...]
    threshold: float
    kept: Tuple[Tuple[str, ...], ...]
    backend: str = "loop"


def host_histograms(
    store: FlowStore,
    hosts: Sequence[str],
    min_samples: int = MIN_SAMPLES,
    log_scale: bool = True,
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> Dict[str, Histogram]:
    """Interstitial-time histograms for hosts with enough samples.

    Hosts with fewer than ``min_samples`` per-destination gaps are
    dropped: they never revisit destinations often enough to exhibit a
    timing signature (and so cannot be machine-periodic in the sense the
    test measures).

    With ``log_scale`` (the default) samples are binned in log10-seconds.
    This is a deliberate refinement over the paper's raw-seconds
    histograms: EMD over raw times is dominated by the largest gaps
    (hours-scale session boundaries), drowning the sub-minute timer
    structure Figure 3 keys on; log space compares timing *patterns*
    across scales.  ``log_scale=False`` recovers the paper's literal
    construction (see the binning ablation benchmark).

    With ``features`` the interstitial samples are read off
    pre-extracted bundles (same samples, same order — the parallel
    engine is pinned bit-identical to :func:`interstitial_times`)
    instead of re-scanning the store.
    """
    histograms: Dict[str, Histogram] = {}
    for host in hosts:
        if features is not None:
            bundle = features.get(host)
            samples: List[float] = (
                list(bundle.interstitials) if bundle is not None else []
            )
        else:
            samples = interstitial_times(store.flows_from(host))
        if len(samples) < min_samples:
            continue
        if log_scale:
            samples = [np.log10(max(s, _LOG_FLOOR)) for s in samples]
        histograms[host] = build_histogram(samples)
    return histograms


def cluster_hosts(
    histograms: Dict[str, Histogram],
    percentile: float,
    cut_fraction: float = DEFAULT_CUT_FRACTION,
    min_cluster_size: int = 2,
    backend: str = "auto",
    exact: bool = False,
) -> HmClustering:
    """Cluster hosts by EMD and keep tight clusters.

    ``percentile`` sets τ_hm as a percentile of the cluster diameters —
    the paper's dynamic threshold over "the diameters across all
    clusters".  Clusters smaller than ``min_cluster_size`` are never
    kept: the test's evidence is *similarity between hosts* (bots of one
    botnet share binary timers), and a singleton exhibits none.

    ``backend`` selects the :func:`repro.stats.emd.pairwise_emd` engine;
    every backend produces the same clusters, diameters, τ_hm and kept
    set (pinned to atol=1e-12 by the equivalence suite), so results do
    not depend on the choice.  The ``"pruned"`` backend skips provably
    irrelevant host pairs via :mod:`repro.stats.emdindex`; ``exact=True``
    is the escape hatch that forbids it (``"auto"`` then stops
    escalating at ``"parallel"``).  The engine that actually ran is
    reported on the result's ``backend`` field and the span.
    """
    hosts = tuple(sorted(histograms))
    if not hosts:
        return HmClustering(
            hosts=(), clusters=(), diameters=(), threshold=0.0, kept=()
        )
    if len(hosts) == 1:
        only = (hosts[0],)
        kept_single = (only,) if min_cluster_size <= 1 else ()
        return HmClustering(
            hosts=hosts,
            clusters=(only,),
            diameters=(0.0,),
            threshold=0.0,
            kept=kept_single,
        )
    n = len(hosts)
    resolved = resolve_backend(backend, n, exact=exact)
    with span(
        "cluster_hosts",
        hosts=n,
        pairs=n * (n - 1) // 2,
        backend=backend,
        resolved_backend=resolved,
    ) as s:
        if resolved == "pruned":
            from ..stats.emdindex import pruned_partition

            with span("emd_pruned_partition", hosts=n) as ps:
                member_lists, diameters, report = pruned_partition(
                    [histograms[h] for h in hosts], cut_fraction
                )
                ps.set(
                    certified=report.certified,
                    groups=report.groups,
                    pairs_pruned=report.pairs_pruned,
                    fallback_reason=report.fallback_reason,
                )
        else:
            with span("emd_matrix", hosts=n, backend=resolved):
                distance = pairwise_emd(
                    [histograms[h] for h in hosts], backend=resolved
                )
            with span("linkage", hosts=n):
                dendrogram = average_linkage(distance)
                member_lists = cut_top_links(dendrogram, cut_fraction)
            diameters = cluster_diameters(distance, member_lists)
        clusters = tuple(
            tuple(hosts[i] for i in members) for members in member_lists
        )
        threshold = percentile_threshold(list(diameters), percentile)
        # The tolerance absorbs float dust when many diameters tie (e.g.
        # several exactly-zero bot clusters and an interpolated percentile).
        kept = tuple(
            cluster
            for cluster, diameter in zip(clusters, diameters)
            if diameter <= threshold + 1e-9 and len(cluster) >= min_cluster_size
        )
        s.set(clusters=len(clusters), kept=len(kept), threshold=threshold)
    return HmClustering(
        hosts=hosts,
        clusters=clusters,
        diameters=tuple(diameters),
        threshold=threshold,
        kept=kept,
        backend=resolved,
    )


def theta_hm(
    store: FlowStore,
    hosts: Set[str],
    percentile: float = 70.0,
    cut_fraction: float = DEFAULT_CUT_FRACTION,
    min_samples: int = MIN_SAMPLES,
    log_scale: bool = True,
    min_cluster_size: int = 2,
    backend: str = "auto",
    exact: bool = False,
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> TestResult:
    """Select hosts in timing clusters whose diameter is ≤ τ_hm.

    The returned :class:`~repro.detection.testbase.TestResult` metric
    maps each clustered host to the diameter of its cluster.
    ``backend`` and ``exact`` are forwarded to the pairwise-EMD engine;
    ``features`` (pre-extracted bundles) to :func:`host_histograms`.
    """
    histograms = host_histograms(
        store, sorted(hosts), min_samples, log_scale, features
    )
    clustering = cluster_hosts(
        histograms,
        percentile,
        cut_fraction,
        min_cluster_size,
        backend=backend,
        exact=exact,
    )
    selected = {host for cluster in clustering.kept for host in cluster}
    metric: Dict[str, float] = {}
    for cluster, diameter in zip(clustering.clusters, clustering.diameters):
        for host in cluster:
            metric[host] = diameter
    return TestResult(
        name="human-machine",
        selected=frozenset(selected),
        threshold=clustering.threshold,
        metric=metric,
        detail=clustering,
    )
