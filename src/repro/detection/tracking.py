"""Multi-day suspect tracking.

The paper evaluates one day at a time; an operator runs the detector
every day and reasons across days: a host flagged on five of eight days
is a different proposition from one flagged once.  The tracker
aggregates per-window verdicts, scores hosts by flag persistence, and
answers the triage questions — who is newly flagged today, who keeps
being flagged, whose cluster co-membership is stable.

Cluster stability matters: two hosts that repeatedly land in the *same*
timing cluster across days are almost certainly running the same
binary, even when neither clears the threshold every single day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = ["DayVerdict", "SuspectTracker"]


@dataclass(frozen=True)
class DayVerdict:
    """One detection window's outcome, as fed to the tracker."""

    day: int
    suspects: FrozenSet[str]
    clusters: Tuple[FrozenSet[str], ...] = ()


class SuspectTracker:
    """Aggregates daily FindPlotters verdicts into operator state."""

    def __init__(self) -> None:
        self._verdicts: List[DayVerdict] = []
        self._flag_days: Dict[str, Set[int]] = {}
        self._pair_days: Dict[Tuple[str, str], Set[int]] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_day(
        self,
        day: int,
        suspects: Set[str],
        clusters: Optional[Sequence[Set[str]]] = None,
    ) -> None:
        """Record one day's verdict.

        ``clusters`` are the kept θ_hm clusters (e.g. from
        :class:`~repro.detection.humanmachine.HmClustering`'s ``kept``);
        they drive the co-membership statistics.  Days may arrive in
        any order but each day index at most once.
        """
        if any(v.day == day for v in self._verdicts):
            raise ValueError(f"day {day} already recorded")
        cluster_tuple: Tuple[FrozenSet[str], ...] = tuple(
            frozenset(c) for c in (clusters or ())
        )
        self._verdicts.append(
            DayVerdict(
                day=day, suspects=frozenset(suspects), clusters=cluster_tuple
            )
        )
        for host in suspects:
            self._flag_days.setdefault(host, set()).add(day)
        for cluster in cluster_tuple:
            members = sorted(cluster)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    self._pair_days.setdefault((a, b), set()).add(day)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_days(self) -> int:
        """Number of recorded days."""
        return len(self._verdicts)

    def flag_count(self, host: str) -> int:
        """On how many recorded days ``host`` was flagged."""
        return len(self._flag_days.get(host, ()))

    def flag_rate(self, host: str) -> float:
        """Fraction of recorded days on which ``host`` was flagged."""
        if not self._verdicts:
            return 0.0
        return self.flag_count(host) / self.n_days

    def persistent_suspects(self, min_days: int = 2) -> List[str]:
        """Hosts flagged on at least ``min_days`` days, most-flagged first."""
        ranked = [
            (len(days), host)
            for host, days in self._flag_days.items()
            if len(days) >= min_days
        ]
        ranked.sort(key=lambda pair: (-pair[0], pair[1]))
        return [host for _count, host in ranked]

    def newly_flagged(self, day: int) -> Set[str]:
        """Hosts flagged on ``day`` but on no earlier recorded day."""
        today = next(
            (v for v in self._verdicts if v.day == day), None
        )
        if today is None:
            raise KeyError(f"day {day} not recorded")
        earlier: Set[str] = set()
        for verdict in self._verdicts:
            if verdict.day < day:
                earlier |= verdict.suspects
        return set(today.suspects) - earlier

    def stable_pairs(self, min_days: int = 2) -> List[Tuple[str, str, int]]:
        """Host pairs sharing a kept cluster on ≥ ``min_days`` days.

        Returned as ``(host_a, host_b, day_count)``, strongest first —
        the operator's "same binary" signal.
        """
        ranked = [
            (pair[0], pair[1], len(days))
            for pair, days in self._pair_days.items()
            if len(days) >= min_days
        ]
        ranked.sort(key=lambda row: (-row[2], row[0], row[1]))
        return ranked

    def summary_rows(self, min_days: int = 1) -> List[List[str]]:
        """Table rows: host, days flagged, rate — for reporting."""
        rows = []
        for host in self.persistent_suspects(min_days=min_days):
            rows.append(
                [host, str(self.flag_count(host)), f"{self.flag_rate(host):.2f}"]
            )
        return rows
