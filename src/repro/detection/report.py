"""Evaluation reports: per-stage funnels and detection rates.

These helpers turn a :class:`~repro.detection.pipeline.PipelineResult`
plus ground truth into the quantities the paper reports — true/false
positive rates per botnet (Figure 9's endpoint), per-stage survival of
each host class (Figure 9's funnel), and multi-day averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .pipeline import PipelineResult

__all__ = ["StageCounts", "DetectionReport", "evaluate_pipeline", "average_reports"]


@dataclass(frozen=True)
class StageCounts:
    """How many hosts of each class survive one pipeline stage."""

    stage: str
    total: int
    per_class: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class DetectionReport:
    """Detection quality of one FindPlotters run against ground truth."""

    stages: Tuple[StageCounts, ...]
    tpr_per_class: Dict[str, float]
    false_positive_rate: float
    trader_survival: float
    suspects: frozenset

    def tpr(self, cls: str) -> float:
        """True-positive rate for one Plotter class (e.g. ``"storm"``)."""
        return self.tpr_per_class.get(cls, 0.0)


def _stage_counts(
    stage: str, hosts: Set[str], classes: Dict[str, Set[str]]
) -> StageCounts:
    return StageCounts(
        stage=stage,
        total=len(hosts),
        per_class={name: len(hosts & members) for name, members in classes.items()},
    )


def evaluate_pipeline(
    result: PipelineResult,
    plotters_by_class: Dict[str, Set[str]],
    traders: Set[str],
) -> DetectionReport:
    """Score one pipeline run.

    Parameters
    ----------
    result:
        The pipeline output (with intermediate sets).
    plotters_by_class:
        Ground-truth Plotter hosts keyed by botnet name.
    traders:
        Ground-truth Trader hosts.

    Notes
    -----
    The false-positive rate is computed over the *input* host set minus
    all Plotters, matching the paper's accounting (0.81% of non-Plotter
    hosts flagged); Trader survival (5.40% in the paper) is reported
    separately.
    """
    all_plotters: Set[str] = set()
    for members in plotters_by_class.values():
        all_plotters |= members
    classes: Dict[str, Set[str]] = dict(plotters_by_class)
    classes["trader"] = traders

    input_hosts = set(result.input_hosts)
    stages = [
        _stage_counts("input", input_hosts, classes),
        _stage_counts("reduction", result.reduced_hosts, classes),
        _stage_counts("volume", result.volume.selected_set, classes),
        _stage_counts("churn", result.churn.selected_set, classes),
        _stage_counts("vol-or-churn", result.union_vol_churn, classes),
        _stage_counts("hm", result.suspects, classes),
    ]

    suspects = result.suspects
    tpr_per_class = {
        name: (len(suspects & members) / len(members) if members else 0.0)
        for name, members in plotters_by_class.items()
    }
    negatives = input_hosts - all_plotters
    false_positives = suspects & negatives
    fpr = len(false_positives) / len(negatives) if negatives else 0.0
    trader_survival = (
        len(suspects & traders) / len(traders) if traders else 0.0
    )
    return DetectionReport(
        stages=tuple(stages),
        tpr_per_class=tpr_per_class,
        false_positive_rate=fpr,
        trader_survival=trader_survival,
        suspects=frozenset(suspects),
    )


def average_reports(reports: Sequence[DetectionReport]) -> Dict[str, float]:
    """Multi-day averages of the headline numbers (as in §V-B).

    Returns a dictionary with ``tpr_<class>`` per Plotter class plus
    ``fpr`` and ``trader_survival``.
    """
    if not reports:
        raise ValueError("cannot average zero reports")
    summary: Dict[str, float] = {}
    class_names = set()
    for report in reports:
        class_names.update(report.tpr_per_class)
    for name in sorted(class_names):
        summary[f"tpr_{name}"] = sum(r.tpr(name) for r in reports) / len(reports)
    summary["fpr"] = sum(r.false_positive_rate for r in reports) / len(reports)
    summary["trader_survival"] = sum(
        r.trader_survival for r in reports
    ) / len(reports)
    return summary
