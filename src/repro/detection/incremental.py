"""Online detection over a sliding window.

The batch pipeline (:func:`repro.detection.pipeline.find_plotters`)
analyses a completed window of traffic.  An operator at a live border
wants the same verdicts *while the window fills*: ingest flows as they
arrive, re-evaluate periodically, keep memory bounded.

:class:`OnlineDetector` composes the streaming feature extractor with
the detection tests.  Flows are ingested one at a time; at any moment
:meth:`evaluate` runs the FindPlotters logic over the features
accumulated in the current window.  Windows tumble: when a flow arrives
past the window end, the window is finalised (its result retained in
``history``) and a new one starts.

Fidelity note: θ_vol, θ_churn and the reduction step are computed from
the streaming features *exactly* as in the batch pipeline; θ_hm uses
the per-host interstitial reservoir (an unbiased sample) instead of the
complete sample set, so its histograms converge to the batch ones as
the reservoir grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..flows.record import FlowRecord
from ..flows.streaming import StreamingFeatureExtractor
from ..obs import metrics as obs_metrics
from ..obs.tracing import span
from ..stats.histogram import Histogram, build_histogram
from ..stats.thresholds import percentile_threshold, select_above, select_below
from .humanmachine import MIN_SAMPLES, _LOG_FLOOR, cluster_hosts
from .pipeline import PipelineConfig

__all__ = ["OnlineVerdict", "OnlineDetector"]

# Online-detector telemetry.  The cache hit/miss counts are *also* kept
# as plain attributes on the detector (``cache_hits``/``cache_misses``)
# because they are part of its public API and must keep counting while
# observability is disabled; the registry counters below are the
# exported view of the same events.
_TUMBLES = obs_metrics.counter(
    "repro_online_window_tumbles_total",
    "Windows finalised by the online detector",
)
_EVALUATIONS = obs_metrics.counter(
    "repro_online_evaluations_total", "OnlineDetector.evaluate() calls"
)
_HIST_CACHE = obs_metrics.counter(
    "repro_online_hist_cache_total",
    "Histogram-cache lookups by outcome",
    labels=("result",),
)
_RESERVOIR_SAMPLES = obs_metrics.gauge(
    "repro_online_reservoir_samples",
    "Interstitial samples held across all evaluated hosts (last evaluate)",
)
_TRACKED_HOSTS = obs_metrics.gauge(
    "repro_online_tracked_hosts",
    "Internal hosts with state in the current window (last evaluate)",
)


@dataclass(frozen=True)
class OnlineVerdict:
    """One evaluation of the current window."""

    window_index: int
    evaluated_at: float
    hosts_seen: int
    reduced: frozenset
    suspects: frozenset


class OnlineDetector:
    """Streaming FindPlotters over tumbling windows.

    Parameters
    ----------
    internal_hosts:
        The candidate (internal) host population; flows from other
        sources are ingested but never scored.
    window:
        Window length in seconds (the paper's D; default six hours).
    config:
        Detection thresholds, shared with the batch pipeline.
    """

    def __init__(
        self,
        internal_hosts: Set[str],
        window: float = 6 * 3600.0,
        config: PipelineConfig = PipelineConfig(),
        reservoir_size: int = 4096,
        cache_histograms: bool = True,
    ) -> None:
        if window <= 0:
            raise ValueError("window length must be positive")
        self.internal_hosts = set(internal_hosts)
        self.window = window
        self.config = config
        self.reservoir_size = reservoir_size
        self.cache_histograms = cache_histograms
        self.history: List[OnlineVerdict] = []
        self._window_index = 0
        self._window_start: Optional[float] = None
        self._extractor = self._fresh_extractor()
        # host -> (reservoir version, histogram built at that version).
        # Valid only within the current window; cleared on tumble.
        self._hist_cache: Dict[str, Tuple[int, Histogram]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _fresh_extractor(self) -> StreamingFeatureExtractor:
        return StreamingFeatureExtractor(
            reservoir_size=self.reservoir_size,
            seed=self._window_index,
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, flow: FlowRecord) -> None:
        """Feed one flow; rolls the window when the flow starts past it."""
        if self._window_start is None:
            self._window_start = flow.start
        elif flow.start >= self._window_start + self.window:
            self._finalize(self._window_start + self.window)
            # Advance by whole windows so a long gap skips empty ones.
            while flow.start >= self._window_start + self.window:
                self._window_start += self.window
        self._extractor.update(flow)

    def ingest_many(self, flows) -> None:
        """Feed an iterable of flows (must be roughly time-ordered)."""
        for flow in flows:
            self.ingest(flow)

    def _finalize(self, at: float) -> None:
        self.history.append(self.evaluate(at))
        self._window_index += 1
        self._extractor = self._fresh_extractor()
        # The new window starts with empty reservoirs whose version
        # counters restart from zero — stale entries must not collide.
        self._hist_cache.clear()
        _TUMBLES.inc()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _host_histogram(self, host, samples) -> Optional[Histogram]:
        """The host's interstitial histogram, cached per reservoir version.

        Returns ``None`` for hosts without enough samples.  The cache key
        is the extractor's reservoir version counter, which changes iff
        the sample set changed — so between evaluations of a busy window,
        only hosts with new samples pay the histogram rebuild.
        """
        if len(samples) < MIN_SAMPLES:
            return None
        version = self._extractor.reservoir_version(host)
        if self.cache_histograms:
            cached = self._hist_cache.get(host)
            if cached is not None and cached[0] == version:
                self.cache_hits += 1
                _HIST_CACHE.inc(result="hit")
                return cached[1]
        self.cache_misses += 1
        _HIST_CACHE.inc(result="miss")
        if self.config.hm_log_scale:
            samples = [float(np.log10(max(s, _LOG_FLOOR))) for s in samples]
        hist = build_histogram(list(samples))
        if self.cache_histograms:
            self._hist_cache[host] = (version, hist)
        return hist

    def evaluate(self, now: Optional[float] = None) -> OnlineVerdict:
        """Run the FindPlotters logic over the current window's state."""
        with span("online_evaluate", window_index=self._window_index) as sp:
            verdict = self._evaluate(now)
            sp.set(
                hosts_seen=verdict.hosts_seen,
                reduced=len(verdict.reduced),
                suspects=len(verdict.suspects),
            )
        return verdict

    def _evaluate(self, now: Optional[float] = None) -> OnlineVerdict:
        features = {
            host: feats
            for host, feats in self._extractor.all_features().items()
            if host in self.internal_hosts
        }
        evaluated_at = (
            now
            if now is not None
            else (self._window_start or 0.0)
        )
        _EVALUATIONS.inc()
        if obs_metrics.is_enabled():
            _TRACKED_HOSTS.set(len(features))
            _RESERVOIR_SAMPLES.set(
                sum(len(f.interstitials) for f in features.values())
            )

        # Initial data reduction on failed-connection rates.
        rates = {
            h: f.failed_conn_rate
            for h, f in features.items()
            if f.successful_flow_count > 0
        }
        if not rates:
            return OnlineVerdict(
                window_index=self._window_index,
                evaluated_at=evaluated_at,
                hosts_seen=len(features),
                reduced=frozenset(),
                suspects=frozenset(),
            )
        reduction_threshold = percentile_threshold(
            list(rates.values()), self.config.reduction_percentile
        )
        reduced = select_above(rates, reduction_threshold)

        # θ_vol and θ_churn from the streamed features.
        vol_metric = {h: features[h].avg_flow_size for h in reduced}
        churn_metric = {h: features[h].new_ip_fraction for h in reduced}
        suspects: Set[str] = set()
        if vol_metric:
            vol_threshold = percentile_threshold(
                list(vol_metric.values()), self.config.vol_percentile
            )
            churn_threshold = percentile_threshold(
                list(churn_metric.values()), self.config.churn_percentile
            )
            union = select_below(vol_metric, vol_threshold) | select_below(
                churn_metric, churn_threshold
            )
            # θ_hm over reservoir-sampled interstitials.
            histograms: Dict[str, Histogram] = {}
            for host in sorted(union):
                hist = self._host_histogram(host, features[host].interstitials)
                if hist is not None:
                    histograms[host] = hist
            clustering = cluster_hosts(
                histograms,
                self.config.hm_percentile,
                self.config.hm_cut_fraction,
                backend=self.config.hm_backend,
            )
            suspects = {h for cluster in clustering.kept for h in cluster}

        return OnlineVerdict(
            window_index=self._window_index,
            evaluated_at=evaluated_at,
            hosts_seen=len(features),
            reduced=frozenset(reduced),
            suspects=frozenset(suspects),
        )
