"""Online detection over a sliding window.

The batch pipeline (:func:`repro.detection.pipeline.find_plotters`)
analyses a completed window of traffic.  An operator at a live border
wants the same verdicts *while the window fills*: ingest flows as they
arrive, re-evaluate periodically, keep memory bounded.

:class:`OnlineDetector` composes the streaming feature extractor with
the detection tests.  Flows are ingested one at a time; at any moment
:meth:`evaluate` runs the FindPlotters logic over the features
accumulated in the current window.  Windows tumble: when a flow arrives
past the window end, the window is finalised (its result retained in
``history``) and a new one starts.

Fidelity note: θ_vol, θ_churn and the reduction step are computed from
the streaming features *exactly* as in the batch pipeline; θ_hm uses
the per-host interstitial reservoir (an unbiased sample) instead of the
complete sample set, so its histograms converge to the batch ones as
the reservoir grows.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..flows.record import FlowRecord
from ..flows.store import FlowStore
from ..flows.streaming import StreamingFeatureExtractor
from ..obs import metrics as obs_metrics
from ..obs.tracing import span
from ..resilience import (
    Degradation,
    StageGuard,
    atomic_write_text,
    hm_backend_ladder,
)
from ..resilience.faults import io_point
from ..stats.histogram import Histogram, build_histogram
from ..stats.thresholds import percentile_threshold, select_above, select_below
from .humanmachine import MIN_SAMPLES, _LOG_FLOOR, cluster_hosts
from .pipeline import (
    PipelineConfig,
    PipelineResult,
    _record_stage,
    find_plotters,
)

__all__ = ["OnlineVerdict", "OnlineDetector"]

# Online-detector telemetry.  The cache hit/miss counts are *also* kept
# as plain attributes on the detector (``cache_hits``/``cache_misses``)
# because they are part of its public API and must keep counting while
# observability is disabled; the registry counters below are the
# exported view of the same events.
_TUMBLES = obs_metrics.counter(
    "repro_online_window_tumbles_total",
    "Windows finalised by the online detector",
)
_EVALUATIONS = obs_metrics.counter(
    "repro_online_evaluations_total", "OnlineDetector.evaluate() calls"
)
_HIST_CACHE = obs_metrics.counter(
    "repro_online_hist_cache_total",
    "Histogram-cache lookups by outcome",
    labels=("result",),
)
_RESERVOIR_SAMPLES = obs_metrics.gauge(
    "repro_online_reservoir_samples",
    "Interstitial samples held across all evaluated hosts (last evaluate)",
)
_TRACKED_HOSTS = obs_metrics.gauge(
    "repro_online_tracked_hosts",
    "Internal hosts with state in the current window (last evaluate)",
)
_VERDICT_CKPT = obs_metrics.counter(
    "repro_online_verdict_checkpoint_total",
    "Finalised-window verdicts persisted / restored",
    labels=("result",),
)


@dataclass(frozen=True)
class OnlineVerdict:
    """One evaluation of the current window."""

    window_index: int
    evaluated_at: float
    hosts_seen: int
    reduced: frozenset
    suspects: frozenset

    def to_json(self) -> str:
        """One-line JSON form, the verdict-log record format."""
        return json.dumps(
            {
                "window_index": self.window_index,
                "evaluated_at": self.evaluated_at,
                "hosts_seen": self.hosts_seen,
                "reduced": sorted(self.reduced),
                "suspects": sorted(self.suspects),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "OnlineVerdict":
        payload = json.loads(line)
        return cls(
            window_index=int(payload["window_index"]),
            evaluated_at=float(payload["evaluated_at"]),
            hosts_seen=int(payload["hosts_seen"]),
            reduced=frozenset(payload["reduced"]),
            suspects=frozenset(payload["suspects"]),
        )


class OnlineDetector:
    """Streaming FindPlotters over tumbling windows.

    Parameters
    ----------
    internal_hosts:
        The candidate (internal) host population; flows from other
        sources are ingested but never scored.
    window:
        Window length in seconds (the paper's D; default six hours).
    config:
        Detection thresholds, shared with the batch pipeline.
    checkpoint_dir:
        Directory for the verdict log (``verdicts.jsonl``): every
        finalised window's verdict is appended as one JSON line.  With
        ``resume`` a restarted detector reloads the log, restoring
        ``history`` and continuing from the next window index —
        in-window streaming state is *not* checkpointed (its reservoirs
        are cheap to refill), only completed-window conclusions.
    prom_port:
        Serve live ``/metrics``, ``/healthz`` and ``/summary``
        (:class:`repro.obs.MetricsServer`) on this port for the
        detector's lifetime (``0`` = ephemeral; read
        ``detector.metrics_server.port``).  Setting it enables metric
        recording, so a tumbling run can be scraped while a window
        fills — each evaluation refreshes the ``repro_stage_*`` funnel
        gauges.  Stop the server with :meth:`close` (the detector is
        also a context manager).
    spool_dir:
        Segment-store directory to spool ingested flows into
        (:mod:`repro.storage`).  Each tumbled window is cut as its own
        segment(s), so the raw rows of any finalised window can be
        re-scored exactly with the batch pipeline
        (:meth:`rescore_window_from_spool`) — the unbounded
        alternative to keeping reservoir samples only.  ``segment_rows``
        caps the rows buffered between cuts.  Spool write failures
        degrade to unspooled operation under the guard (the online
        verdicts never depended on the spool).
    window_origin:
        Anchor of the window grid: boundaries snap to
        ``origin + k·window`` instead of the first ingested flow's
        start, so a detector restarted mid-stream tumbles at the same
        instants as its predecessor (see :meth:`finalize_window`).

    Graceful degradation (honouring ``config.degrade``): a verdict-log
    write failure disables the log for the rest of the run instead of
    killing a detector that has days of in-memory state, and a θ_hm
    backend failure during evaluation steps down the backend ladder to
    ``loop``.  Every such step is recorded on :attr:`guard` (and hence
    in :attr:`degradations`), logged, counted and span-emitted — the
    detector never falls back silently.
    """

    def __init__(
        self,
        internal_hosts: Set[str],
        window: float = 6 * 3600.0,
        config: PipelineConfig = PipelineConfig(),
        reservoir_size: int = 4096,
        cache_histograms: bool = True,
        checkpoint_dir: Optional[Union[str, os.PathLike]] = None,
        resume: bool = False,
        spool_dir: Optional[Union[str, os.PathLike]] = None,
        segment_rows: Optional[int] = None,
        prom_port: Optional[int] = None,
        window_origin: Optional[float] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window length must be positive")
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        if segment_rows is not None and segment_rows < 1:
            raise ValueError("segment_rows must be >= 1")
        self.internal_hosts = set(internal_hosts)
        self.window = window
        #: When set, window boundaries snap to the grid
        #: ``origin + k·window`` instead of starting at the first
        #: ingested flow — so a detector restarted mid-stream (the
        #: serve plane's worker recovery) tumbles at exactly the same
        #: instants as the one it replaced, whatever flow it happens to
        #: see first.
        self.window_origin = window_origin
        self.config = config
        self.reservoir_size = reservoir_size
        self.cache_histograms = cache_histograms
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.history: List[OnlineVerdict] = []
        self.guard = StageGuard(enabled=config.degrade, name="online_detector")
        self._verdict_log_disabled = False
        self._window_index = 0
        self._window_start: Optional[float] = None
        if self.checkpoint_dir is not None:
            try:
                self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
                if resume:
                    self._restore_verdicts()
            except OSError as exc:
                if not config.degrade:
                    raise
                self._verdict_log_disabled = True
                self.guard.note(
                    "verdict_log",
                    "checkpointed",
                    "no-checkpoint",
                    f"{type(exc).__name__}: {exc}",
                )
        self._spool_writer = None
        self._spool_disabled = False
        #: Window index -> (start, end) of every window finalised in
        #: this detector's lifetime — the time ranges
        #: :meth:`rescore_window_from_spool` replays via zone maps.
        self._window_bounds: Dict[int, Tuple[float, float]] = {}
        if spool_dir is not None:
            try:
                from ..storage import SegmentStore, fresh_store
                from ..storage.writer import DEFAULT_SEGMENT_ROWS

                if resume:
                    spool_store = SegmentStore.create(spool_dir, exist_ok=True)
                else:
                    spool_store = fresh_store(spool_dir)
                self._spool_writer = spool_store.writer(
                    segment_rows=segment_rows or DEFAULT_SEGMENT_ROWS
                )
            except (OSError, RuntimeError) as exc:
                if not config.degrade:
                    raise
                self._spool_disabled = True
                self.guard.note(
                    "window_spool",
                    "spooled",
                    "no-spool",
                    f"{type(exc).__name__}: {exc}",
                )
        self._extractor = self._fresh_extractor()
        # host -> (reservoir version, histogram built at that version).
        # Valid only within the current window; cleared on tumble.
        self._hist_cache: Dict[str, Tuple[int, Histogram]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: The live telemetry endpoint, when ``prom_port`` was given.
        self.metrics_server = None
        if prom_port is not None:
            from ..obs.http import MetricsServer

            obs_metrics.enable()
            self.metrics_server = MetricsServer(
                port=prom_port, extra_summary=self._summary_state
            )

    def _summary_state(self) -> Dict[str, object]:
        """Detector state merged into the ``/summary`` endpoint."""
        return {
            "window_index": self._window_index,
            "window_start": self._window_start,
            "window_seconds": self.window,
            "finalised_windows": len(self.history),
            "tracked_hosts": len(self.internal_hosts),
            "degradations": len(self.guard.degradations),
        }

    def close(self) -> None:
        """Release the live metrics endpoint, if any (idempotent)."""
        if self.metrics_server is not None:
            self.metrics_server.close()
            self.metrics_server = None

    def __enter__(self) -> "OnlineDetector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def degradations(self) -> "Tuple[Degradation, ...]":
        """Every degradation of this detector's lifetime, in order."""
        return self.guard.degradations

    @property
    def _verdict_log(self) -> Optional[Path]:
        if self.checkpoint_dir is None or self._verdict_log_disabled:
            return None
        return self.checkpoint_dir / "verdicts.jsonl"

    def _restore_verdicts(self) -> None:
        """Reload finalised-window verdicts from the verdict log."""
        log = self._verdict_log
        if log is None or not log.exists():
            return
        lines = log.read_text().splitlines()
        intact: List[str] = []
        torn = False
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                verdict = OnlineVerdict.from_json(stripped)
            except (ValueError, KeyError):
                # A torn final line from a killed writer: everything
                # before it is intact, so keep what parsed.
                torn = True
                break
            intact.append(stripped)
            self.history.append(verdict)
            _VERDICT_CKPT.inc(result="restore")
        if torn:
            # Truncate the tear away so later appends start on a fresh
            # line — otherwise the fragment and the next verdict would
            # merge into one unparseable line, losing both.
            atomic_write_text(
                log, "".join(line + "\n" for line in intact)
            )
            _VERDICT_CKPT.inc(result="truncated")
        if self.history:
            self._window_index = self.history[-1].window_index + 1

    def _fresh_extractor(self) -> StreamingFeatureExtractor:
        return StreamingFeatureExtractor(
            reservoir_size=self.reservoir_size,
            seed=self._window_index,
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _aligned_start(self, t: float) -> float:
        """The window-grid start for time ``t`` (see ``window_origin``)."""
        if self.window_origin is None:
            return t
        k = math.floor((t - self.window_origin) / self.window)
        return self.window_origin + k * self.window

    def ingest(self, flow: FlowRecord) -> None:
        """Feed one flow; rolls the window when the flow starts past it."""
        if self._window_start is None:
            self._window_start = self._aligned_start(flow.start)
        elif flow.start >= self._window_start + self.window:
            self._finalize(self._window_start + self.window)
            # Advance by whole windows so a long gap skips empty ones.
            while flow.start >= self._window_start + self.window:
                self._window_start += self.window
        if self._spool_writer is not None:
            try:
                self._spool_writer.add(flow)
            except OSError as exc:
                if not self.config.degrade:
                    raise
                self._disable_spool(exc)
        self._extractor.update(flow)

    def ingest_many(self, flows) -> None:
        """Feed an iterable of flows (must be roughly time-ordered)."""
        for flow in flows:
            self.ingest(flow)

    def _disable_spool(self, exc: BaseException) -> None:
        """Degrade to unspooled operation after a storage write failure.

        Mirrors the verdict-log ladder: the online verdicts never
        depended on the spool, so losing it costs only the ability to
        batch-rescore later windows — degrade loudly, keep tumbling.
        """
        self._spool_writer = None
        self._spool_disabled = True
        self.guard.note(
            "window_spool",
            "spooled",
            "no-spool",
            f"{type(exc).__name__}: {exc}",
        )

    def _finalize(self, at: float) -> None:
        verdict = self.evaluate(at)
        self.history.append(verdict)
        log = self._verdict_log
        if log is not None:
            try:
                io_point("verdict-log")
                with open(log, "a") as fh:
                    fh.write(verdict.to_json() + "\n")
            except OSError as exc:
                # Never kill a detector holding days of window state
                # over a full disk: degrade to unlogged operation
                # (loudly) and keep tumbling.
                if not self.config.degrade:
                    raise
                self._verdict_log_disabled = True
                self.guard.note(
                    "verdict_log",
                    "checkpointed",
                    "no-checkpoint",
                    f"{type(exc).__name__}: {exc}",
                )
            else:
                _VERDICT_CKPT.inc(result="write")
        if self._spool_writer is not None:
            # Cut at the tumble so segment time ranges align with
            # windows — rescoring a window then prunes to exactly its
            # segments via the zone maps.
            try:
                self._spool_writer.cut()
            except OSError as exc:
                if not self.config.degrade:
                    raise
                self._disable_spool(exc)
            else:
                start = self._window_start if self._window_start is not None else at
                self._window_bounds[self._window_index] = (start, at)
        self._window_index += 1
        self._extractor = self._fresh_extractor()
        # The new window starts with empty reservoirs whose version
        # counters restart from zero — stale entries must not collide.
        self._hist_cache.clear()
        _TUMBLES.inc()

    def finalize_window(self, at: Optional[float] = None) -> Optional[OnlineVerdict]:
        """Finalise the current window early, without waiting for a flow.

        The tumble normally happens when a flow arrives past the window
        end; a draining service (or a rebalancing coordinator) cannot
        wait for one.  This evaluates and retires the current window as
        if a flow at its end had arrived — verdict appended to
        ``history`` and the verdict log, spool segment cut — and resets
        the window clock, so the next ingested flow opens a fresh
        window (grid-aligned when ``window_origin`` is set).  Returns
        the finalised verdict, or ``None`` when no flow has been
        ingested since the last tumble (nothing to finalise).
        """
        if self._window_start is None:
            return None
        end = self._window_start + self.window if at is None else at
        self._finalize(end)
        self._window_start = None
        return self.history[-1]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _host_histogram(self, host, samples) -> Optional[Histogram]:
        """The host's interstitial histogram, cached per reservoir version.

        Returns ``None`` for hosts without enough samples.  The cache key
        is the extractor's reservoir version counter, which changes iff
        the sample set changed — so between evaluations of a busy window,
        only hosts with new samples pay the histogram rebuild.
        """
        if len(samples) < MIN_SAMPLES:
            return None
        version = self._extractor.reservoir_version(host)
        if self.cache_histograms:
            cached = self._hist_cache.get(host)
            if cached is not None and cached[0] == version:
                self.cache_hits += 1
                _HIST_CACHE.inc(result="hit")
                return cached[1]
        self.cache_misses += 1
        _HIST_CACHE.inc(result="miss")
        if self.config.hm_log_scale:
            samples = [float(np.log10(max(s, _LOG_FLOOR))) for s in samples]
        hist = build_histogram(list(samples))
        if self.cache_histograms:
            self._hist_cache[host] = (version, hist)
        return hist

    def evaluate(self, now: Optional[float] = None) -> OnlineVerdict:
        """Run the FindPlotters logic over the current window's state."""
        with span("online_evaluate", window_index=self._window_index) as sp:
            verdict = self._evaluate(now)
            sp.set(
                hosts_seen=verdict.hosts_seen,
                reduced=len(verdict.reduced),
                suspects=len(verdict.suspects),
            )
        return verdict

    def _evaluate(self, now: Optional[float] = None) -> OnlineVerdict:
        features = {
            host: feats
            for host, feats in self._extractor.all_features().items()
            if host in self.internal_hosts
        }
        evaluated_at = (
            now
            if now is not None
            else (self._window_start or 0.0)
        )
        _EVALUATIONS.inc()
        if obs_metrics.is_enabled():
            _TRACKED_HOSTS.set(len(features))
            _RESERVOIR_SAMPLES.set(
                sum(len(f.interstitials) for f in features.values())
            )

        # Initial data reduction on failed-connection rates.
        rates = {
            h: f.failed_conn_rate
            for h, f in features.items()
            if f.successful_flow_count > 0
        }
        if not rates:
            return OnlineVerdict(
                window_index=self._window_index,
                evaluated_at=evaluated_at,
                hosts_seen=len(features),
                reduced=frozenset(),
                suspects=frozenset(),
            )
        reduction_threshold = percentile_threshold(
            list(rates.values()), self.config.reduction_percentile
        )
        reduced = select_above(rates, reduction_threshold)
        # Refresh the shared stage-funnel gauges so a live /metrics
        # scrape mid-window shows the same repro_stage_* series as a
        # batch run (the values describe this evaluation).
        _record_stage(
            "reduction", len(rates), len(reduced), reduction_threshold
        )

        # θ_vol and θ_churn from the streamed features.
        vol_metric = {h: features[h].avg_flow_size for h in reduced}
        churn_metric = {h: features[h].new_ip_fraction for h in reduced}
        suspects: Set[str] = set()
        if vol_metric:
            vol_threshold = percentile_threshold(
                list(vol_metric.values()), self.config.vol_percentile
            )
            churn_threshold = percentile_threshold(
                list(churn_metric.values()), self.config.churn_percentile
            )
            vol_selected = select_below(vol_metric, vol_threshold)
            churn_selected = select_below(churn_metric, churn_threshold)
            _record_stage(
                "theta_vol", len(reduced), len(vol_selected), vol_threshold
            )
            _record_stage(
                "theta_churn", len(reduced), len(churn_selected),
                churn_threshold,
            )
            union = vol_selected | churn_selected
            # θ_hm over reservoir-sampled interstitials.
            histograms: Dict[str, Histogram] = {}
            for host in sorted(union):
                hist = self._host_histogram(host, features[host].interstitials)
                if hist is not None:
                    histograms[host] = hist
            # Backend ladder as in the batch pipeline: every backend
            # yields the same clustering result, so stepping down
            # changes speed, never verdicts.
            def cluster_with(backend):
                def run():
                    return cluster_hosts(
                        histograms,
                        self.config.hm_percentile,
                        self.config.hm_cut_fraction,
                        backend=backend,
                        exact=self.config.hm_exact,
                    )

                return run

            clustering = self.guard.run(
                "theta_hm",
                [
                    (b, cluster_with(b))
                    for b in hm_backend_ladder(self.config.hm_backend)
                ],
            )
            suspects = {h for cluster in clustering.kept for h in cluster}
            _record_stage(
                "theta_hm", len(union), len(suspects), clustering.threshold
            )

        return OnlineVerdict(
            window_index=self._window_index,
            evaluated_at=evaluated_at,
            hosts_seen=len(features),
            reduced=frozenset(reduced),
            suspects=frozenset(suspects),
        )

    # ------------------------------------------------------------------
    # Batch rescoring
    # ------------------------------------------------------------------
    def rescore_window(self, store: FlowStore) -> PipelineResult:
        """Re-run the exact batch pipeline over a retained window.

        The online verdicts trade exactness for bounded memory (θ_hm
        runs on reservoir samples).  When a window's raw flows are still
        available — e.g. the collector retains the last day on disk —
        this re-scores it with :func:`find_plotters` under this
        detector's configuration, including its ``n_workers`` parallel
        extraction, producing the exact batch result for comparison or
        escalation.
        """
        candidates = self.internal_hosts & store.initiators
        return find_plotters(store, candidates, self.config)

    @property
    def spooled_windows(self) -> Tuple[int, ...]:
        """Indices of finalised windows whose rows are in the spool."""
        return tuple(sorted(self._window_bounds))

    def rescore_window_from_spool(
        self, window_index: Optional[int] = None
    ) -> PipelineResult:
        """Batch-rescore a finalised window straight from the spool.

        Like :meth:`rescore_window`, but the raw flows come from the
        detector's own segment spool (``spool_dir``) instead of an
        externally retained :class:`FlowStore`: a time-restricted
        :class:`~repro.storage.view.StoreView` over the window's bounds
        is handed to :func:`find_plotters`, so only that window's
        segments are read (zone-map pruned) and the result is exactly
        the batch pipeline's.  Defaults to the most recently finalised
        window.
        """
        if self._spool_writer is None:
            raise RuntimeError(
                "no active spool (spool_dir not set, or spooling degraded)"
            )
        if not self._window_bounds:
            raise ValueError("no window has been finalised into the spool yet")
        if window_index is None:
            window_index = max(self._window_bounds)
        try:
            t0, t1 = self._window_bounds[window_index]
        except KeyError:
            raise ValueError(
                f"window {window_index} is not in the spool "
                f"(have {sorted(self._window_bounds)})"
            ) from None
        view = self._spool_writer.store.view(t0=t0, t1=t1)
        candidates = self.internal_hosts & view.initiators
        return find_plotters(view, candidates, self.config)
