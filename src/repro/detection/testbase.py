"""Shared types for the detection tests.

Each test in §IV consumes a collection of traffic Λ (a
:class:`~repro.flows.store.FlowStore`), a host set S, and a threshold,
and returns the subset of S exhibiting the characteristic it evaluates.
:class:`TestResult` carries that subset along with the per-host metric
and the dynamically computed threshold, so callers (and the evasion
experiments) can inspect *why* hosts were kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

__all__ = ["TestResult"]


@dataclass(frozen=True)
class TestResult:
    """Outcome of one detection test.

    Attributes
    ----------
    name:
        Which test produced this result (``"volume"``, ``"churn"``, …).
    selected:
        The hosts that passed (i.e. remain suspicious).
    threshold:
        The dynamically computed threshold value that was applied.
    metric:
        The per-host metric the threshold was applied to.  Hosts present
        in the input set S always appear here, selected or not.
    detail:
        Optional test-specific evidence beyond the scalar metric — θ_hm
        attaches its :class:`~repro.detection.humanmachine.HmClustering`
        here so explain/query consumers can reuse cluster assignments
        instead of re-clustering.  Excluded from equality/repr: two
        results with the same verdict compare equal regardless of how
        much evidence they carry.
    """

    name: str
    selected: frozenset
    threshold: float
    metric: Dict[str, float] = field(default_factory=dict)
    detail: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def selected_set(self) -> Set[str]:
        """The selected hosts as a plain mutable set."""
        return set(self.selected)

    def survival_rate(self, hosts: Set[str]) -> float:
        """Fraction of ``hosts`` that passed the test.

        Useful for the Figure 9 funnel view (e.g. what share of Traders
        survives each stage).  Returns 0.0 for an empty ``hosts``.
        """
        if not hosts:
            return 0.0
        return len(self.selected & hosts) / len(hosts)
