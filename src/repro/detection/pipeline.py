"""FindPlotters — the composed detection pipeline (Figure 4).

    FindPlotters(Λ, S):
      S_vol   ← θ_vol(Λ, S, τ_vol)        # low traffic volume
      S_churn ← θ_churn(Λ, S, τ_churn)    # low peer churn
      S_hm    ← θ_hm(Λ, S_vol ∪ S_churn, τ_hm)
      return S_hm

The evaluation applies the initial data-reduction step of §V-A first to
form S; :func:`find_plotters` performs both, recording every
intermediate set so the Figure 9 funnel can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..flows.store import FlowStore
from .churn import theta_churn
from .humanmachine import theta_hm
from .reduction import initial_data_reduction
from .testbase import TestResult
from .volume import theta_vol

__all__ = ["PipelineConfig", "PipelineResult", "find_plotters"]


@dataclass(frozen=True)
class PipelineConfig:
    """Threshold percentiles of the full pipeline.

    Defaults are the operating point the paper settles on in §V-B: the
    50th percentile for τ_vol and τ_churn, a high percentile of cluster
    diameters for τ_hm (the paper uses the 70th; we default to the 85th,
    which at our smaller campus population sits at the same point of
    the TP/FP trade — see the Figure 8 sweep), the 5% dendrogram link
    cut, and the median for the data-reduction cutoff.
    """

    reduction_percentile: float = 50.0
    vol_percentile: float = 50.0
    churn_percentile: float = 50.0
    hm_percentile: float = 85.0
    hm_cut_fraction: float = 0.05
    hm_log_scale: bool = True
    #: Pairwise-EMD engine for θ_hm ("auto", "loop", "vectorized",
    #: "parallel") — all backends yield the same distance matrix.
    hm_backend: str = "auto"
    apply_reduction: bool = True


@dataclass(frozen=True)
class PipelineResult:
    """All intermediate and final host sets of one FindPlotters run."""

    input_hosts: frozenset
    reduction: Optional[TestResult]
    volume: TestResult
    churn: TestResult
    hm: TestResult

    @property
    def reduced_hosts(self) -> Set[str]:
        """S — the hosts surviving initial data reduction."""
        if self.reduction is None:
            return set(self.input_hosts)
        return self.reduction.selected_set

    @property
    def union_vol_churn(self) -> Set[str]:
        """S_vol ∪ S_churn — the input to θ_hm."""
        return self.volume.selected_set | self.churn.selected_set

    @property
    def suspects(self) -> Set[str]:
        """S_hm — the hosts FindPlotters reports as likely Plotters."""
        return self.hm.selected_set


def find_plotters(
    store: FlowStore,
    hosts: Optional[Set[str]] = None,
    config: PipelineConfig = PipelineConfig(),
) -> PipelineResult:
    """Run the full detection pipeline over one window of traffic.

    Parameters
    ----------
    store:
        The traffic Λ.
    hosts:
        The internal hosts to consider (default: all initiators in Λ —
        in practice pass the internal-host set so external addresses are
        never candidates).
    config:
        Threshold percentiles; see :class:`PipelineConfig`.
    """
    if hosts is None:
        hosts = store.initiators
    hosts = set(hosts)

    reduction: Optional[TestResult] = None
    working = hosts
    if config.apply_reduction:
        reduction = initial_data_reduction(
            store, hosts, config.reduction_percentile
        )
        working = reduction.selected_set

    volume = theta_vol(store, working, config.vol_percentile)
    churn = theta_churn(store, working, config.churn_percentile)
    hm = theta_hm(
        store,
        volume.selected_set | churn.selected_set,
        percentile=config.hm_percentile,
        cut_fraction=config.hm_cut_fraction,
        log_scale=config.hm_log_scale,
        backend=config.hm_backend,
    )
    return PipelineResult(
        input_hosts=frozenset(hosts),
        reduction=reduction,
        volume=volume,
        churn=churn,
        hm=hm,
    )
