"""FindPlotters — the composed detection pipeline (Figure 4).

    FindPlotters(Λ, S):
      S_vol   ← θ_vol(Λ, S, τ_vol)        # low traffic volume
      S_churn ← θ_churn(Λ, S, τ_churn)    # low peer churn
      S_hm    ← θ_hm(Λ, S_vol ∪ S_churn, τ_hm)
      return S_hm

The evaluation applies the initial data-reduction step of §V-A first to
form S; :func:`find_plotters` performs both, recording every
intermediate set so the Figure 9 funnel can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from ..flows.metrics import extract_all_features
from ..flows.parallel import extract_features_parallel
from ..flows.store import FlowStore
from ..obs import metrics as obs_metrics
from ..obs.tracing import span
from ..resilience import Degradation, StageGuard, hm_backend_ladder
from ..stats.emd import PAIRWISE_BACKENDS
from .churn import theta_churn
from .humanmachine import theta_hm
from .reduction import initial_data_reduction
from .testbase import TestResult
from .volume import theta_vol

__all__ = ["PipelineConfig", "PipelineResult", "find_plotters"]

# The Figure 9 funnel as a metric stream: per stage, how many hosts
# entered, how many survived, and the dynamic threshold applied.
_RUNS = obs_metrics.counter(
    "repro_pipeline_runs_total", "FindPlotters invocations"
)
_STAGE_INPUT = obs_metrics.gauge(
    "repro_stage_input_hosts",
    "Hosts entering a pipeline stage (last run)",
    labels=("stage",),
)
_STAGE_SURVIVING = obs_metrics.gauge(
    "repro_stage_surviving_hosts",
    "Hosts surviving a pipeline stage (last run)",
    labels=("stage",),
)
_STAGE_THRESHOLD = obs_metrics.gauge(
    "repro_stage_threshold",
    "Dynamic threshold a pipeline stage applied (last run)",
    labels=("stage",),
)


def _record_stage(stage: str, n_in: int, n_out: int, threshold: float) -> None:
    _STAGE_INPUT.set(n_in, stage=stage)
    _STAGE_SURVIVING.set(n_out, stage=stage)
    _STAGE_THRESHOLD.set(threshold, stage=stage)


@dataclass(frozen=True)
class PipelineConfig:
    """Threshold percentiles of the full pipeline.

    Defaults are the operating point the paper settles on in §V-B: the
    50th percentile for τ_vol and τ_churn, a high percentile of cluster
    diameters for τ_hm (the paper uses the 70th; we default to the 85th,
    which at our smaller campus population sits at the same point of
    the TP/FP trade — see the Figure 8 sweep), the 5% dendrogram link
    cut, and the median for the data-reduction cutoff.
    """

    reduction_percentile: float = 50.0
    vol_percentile: float = 50.0
    churn_percentile: float = 50.0
    hm_percentile: float = 85.0
    hm_cut_fraction: float = 0.05
    hm_log_scale: bool = True
    #: Pairwise-EMD engine for θ_hm ("auto", "loop", "vectorized",
    #: "parallel", "pruned") — all backends yield the same clustering
    #: result; "pruned" skips provably irrelevant host pairs (see
    #: :mod:`repro.stats.emdindex`) and "auto" escalates to it on large
    #: populations unless ``hm_exact`` forbids that.
    hm_backend: str = "auto"
    #: Escape hatch: force the exact (non-pruned) engines for θ_hm.
    #: With ``hm_backend="auto"`` escalation then stops at "parallel";
    #: an explicit ``hm_backend="pruned"`` is resolved as "auto".
    hm_exact: bool = False
    apply_reduction: bool = True
    #: Worker processes for feature extraction (0/1 = in-process
    #: vectorized; >1 = multi-process via
    #: :mod:`repro.flows.parallel`).  Every setting yields identical
    #: features and hence identical suspects.
    n_workers: int = 0
    #: Directory for per-shard extraction checkpoints (None = no
    #: checkpointing); with ``resume`` a restarted run skips shards
    #: whose checkpoint is intact.
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    #: Segment-store directory for out-of-core extraction (None = stay
    #: in memory).  When set and the pipeline is handed an in-memory
    #: store, its rows are spooled into segments there once and
    #: extraction runs store-backed — per-shard memory-mapped gathers
    #: instead of a whole-trace snapshot.  A pipeline handed a
    #: :class:`repro.storage.StoreView` is store-backed regardless.
    #: Either way the features, thresholds, and suspects are
    #: bit-identical to the in-memory run; storage failures degrade
    #: back to the in-memory ladder under the stage guard.
    store_dir: Optional[str] = None
    #: Segment cut threshold (rows) used when spooling to ``store_dir``.
    segment_rows: int = 262_144
    #: Graceful degradation: when True (the default) a
    #: :class:`~repro.resilience.StageGuard` steps failed stages down
    #: their declared fallback ladder (parallel extraction → sequential,
    #: vectorized θ_hm backends → ``loop``, checkpointing → none)
    #: instead of aborting the run; every step is recorded in
    #: :attr:`PipelineResult.degradations`.  ``False`` (the CLI's
    #: ``--no-degrade``) makes the first stage failure fatal.
    degrade: bool = True

    def __post_init__(self) -> None:
        # Fail at construction, not deep inside pairwise_emd: a typo'd
        # backend would otherwise surface only after the cheap stages
        # already ran.
        if self.hm_backend not in PAIRWISE_BACKENDS:
            raise ValueError(
                f"unknown hm_backend {self.hm_backend!r}; expected one of "
                f"{PAIRWISE_BACKENDS}"
            )
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        if self.segment_rows < 1:
            raise ValueError("segment_rows must be >= 1")


@dataclass(frozen=True)
class PipelineResult:
    """All intermediate and final host sets of one FindPlotters run."""

    input_hosts: frozenset
    reduction: Optional[TestResult]
    volume: TestResult
    churn: TestResult
    hm: TestResult
    #: Every graceful-degradation event of the run (empty on a clean
    #: run) — the resilience part of the run summary.  Silent fallback
    #: is impossible: anything here was also logged at WARNING, counted
    #: in ``repro_stage_degradations_total`` and emitted as a
    #: ``degradation`` span event.
    degradations: Tuple[Degradation, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether any stage ran in a fallback mode."""
        return bool(self.degradations)

    @property
    def reduced_hosts(self) -> Set[str]:
        """S — the hosts surviving initial data reduction."""
        if self.reduction is None:
            return set(self.input_hosts)
        return self.reduction.selected_set

    @property
    def union_vol_churn(self) -> Set[str]:
        """S_vol ∪ S_churn — the input to θ_hm."""
        return self.volume.selected_set | self.churn.selected_set

    @property
    def suspects(self) -> Set[str]:
        """S_hm — the hosts FindPlotters reports as likely Plotters."""
        return self.hm.selected_set

    def funnel(self):
        """The per-stage attrition of this run as a list of dicts.

        Same shape as :func:`repro.obs.export.funnel_snapshot`
        (``stage`` / ``input_hosts`` / ``surviving_hosts`` /
        ``threshold``) but read off the result itself, so it is exact
        per-run even when several runs share one metrics registry —
        this is what the run ledger records.
        """
        stages = []
        if self.reduction is not None:
            stages.append(("reduction", len(self.input_hosts), self.reduction))
        n_reduced = len(self.reduced_hosts)
        stages.append(("theta_vol", n_reduced, self.volume))
        stages.append(("theta_churn", n_reduced, self.churn))
        stages.append(("theta_hm", len(self.union_vol_churn), self.hm))
        return [
            {
                "stage": stage,
                "input_hosts": n_in,
                "surviving_hosts": len(result.selected_set),
                "threshold": result.threshold,
            }
            for stage, n_in, result in stages
        ]


def _extract_attempts(store, hosts, config, guard):
    """The extraction fallback ladder, as (mode, thunk) pairs.

    The primary mode is whatever the config asked for (the parallel
    engine already warm-restarts a broken pool between its retry waves
    and steps down to no-checkpoint on checkpoint-dir I/O errors,
    reporting both through the guard).  If the engine still fails —
    workers dying faster than the retry policy tolerates — the ladder
    falls back to in-process sharded extraction, and finally to the
    pure-Python reference extractor, which shares no numpy kernel or
    pool machinery with the primary path.  All rungs produce
    bit-identical features, so degrading changes wall time, never
    suspects.

    **Storage rungs.**  A store exposing ``parallel_spec`` (a
    :class:`repro.storage.StoreView`) runs the same ladder against the
    segment plane — store-backed workers, then store-backed in-process,
    then the reference extractor over synthetic records.  An in-memory
    store with ``config.store_dir`` set gets a leading *spool* rung
    (spill to segments, extract store-backed); any storage failure
    there — unwritable directory, torn segment, gather over the memory
    budget — steps down to the ordinary in-memory ladder, since the
    trace demonstrably fits in RAM.
    """
    primary_mode = (
        f"parallel[{config.n_workers}]" if config.n_workers > 1 else "in-process"
    )
    store_backed = getattr(store, "parallel_spec", None) is not None

    def engine_on(target):
        def run():
            return extract_features_parallel(
                target,
                hosts,
                n_workers=config.n_workers,
                checkpoint_dir=config.checkpoint_dir,
                resume=config.resume,
                on_degrade=guard.note,
            )

        return run

    def sequential_on(target):
        def run():
            return extract_features_parallel(
                target, hosts, n_workers=0, on_degrade=guard.note
            )

        return run

    def reference():
        all_features = extract_all_features(store)
        return {h: f for h, f in all_features.items() if h in hosts}

    if store_backed:
        attempts = [(f"store-{primary_mode}", engine_on(store))]
        if config.n_workers > 1 or config.checkpoint_dir is not None:
            attempts.append(("store-sequential", sequential_on(store)))
        attempts.append(("store-reference", reference))
        return attempts

    attempts = []
    if config.store_dir is not None:

        def spooled():
            from ..storage import spool_flow_store

            view = spool_flow_store(
                store, config.store_dir, segment_rows=config.segment_rows
            )
            return engine_on(view)()

        attempts.append((f"store-{primary_mode}", spooled))
    attempts.append((primary_mode, engine_on(store)))
    if config.n_workers > 1 or config.checkpoint_dir is not None:
        attempts.append(("sequential", sequential_on(store)))
    attempts.append(("reference", reference))
    return attempts


def find_plotters(
    store: FlowStore,
    hosts: Optional[Set[str]] = None,
    config: PipelineConfig = PipelineConfig(),
    guard: Optional[StageGuard] = None,
) -> PipelineResult:
    """Run the full detection pipeline over one window of traffic.

    Parameters
    ----------
    store:
        The traffic Λ.
    hosts:
        The internal hosts to consider (default: all initiators in Λ —
        in practice pass the internal-host set so external addresses are
        never candidates).
    config:
        Threshold percentiles; see :class:`PipelineConfig`.
    guard:
        Stage supervisor to record degradations on (default: a fresh
        :class:`~repro.resilience.StageGuard`, enabled per
        ``config.degrade``).  Pass a shared guard to accumulate one
        resilience summary across several runs.
    """
    if hosts is None:
        hosts = store.initiators
    hosts = set(hosts)
    if guard is None:
        guard = StageGuard(enabled=config.degrade, name="find_plotters")
    degradations_before = len(guard.degradations)

    with span("find_plotters", input_hosts=len(hosts)) as root:
        _RUNS.inc()

        # Extract every per-host feature bundle once up front — sharded
        # and optionally multi-process/checkpointed — then let each
        # stage read its metric off the bundles instead of re-scanning
        # the store four times.  The engine is pinned bit-identical to
        # the sequential extractor, so thresholds and suspects are
        # unchanged for every n_workers setting.  Stage failures walk
        # the fallback ladder under the guard.
        with span(
            "extract_features", hosts=len(hosts), workers=config.n_workers
        ):
            features = guard.run(
                "extract_features",
                _extract_attempts(store, hosts, config, guard),
            )

        reduction: Optional[TestResult] = None
        working = hosts
        if config.apply_reduction:
            with span("reduction", input_hosts=len(hosts)) as s:
                reduction = initial_data_reduction(
                    store, hosts, config.reduction_percentile, features
                )
                working = reduction.selected_set
                s.set(
                    surviving_hosts=len(working),
                    threshold=reduction.threshold,
                )
            _record_stage(
                "reduction", len(hosts), len(working), reduction.threshold
            )

        with span("theta_vol", input_hosts=len(working)) as s:
            volume = theta_vol(
                store, working, config.vol_percentile, features
            )
            s.set(
                surviving_hosts=len(volume.selected_set),
                threshold=volume.threshold,
            )
        _record_stage(
            "theta_vol", len(working), len(volume.selected_set),
            volume.threshold,
        )

        with span("theta_churn", input_hosts=len(working)) as s:
            churn = theta_churn(
                store, working, config.churn_percentile, features=features
            )
            s.set(
                surviving_hosts=len(churn.selected_set),
                threshold=churn.threshold,
            )
        _record_stage(
            "theta_churn", len(working), len(churn.selected_set),
            churn.threshold,
        )

        union = volume.selected_set | churn.selected_set
        with span(
            "theta_hm", input_hosts=len(union), backend=config.hm_backend
        ) as s:
            # Backend ladder: every backend yields the same clustering
            # result, so stepping down (pruned → parallel → vectorized
            # → loop) under the guard changes speed, never suspects.
            def hm_with(backend):
                def run():
                    return theta_hm(
                        store,
                        union,
                        percentile=config.hm_percentile,
                        cut_fraction=config.hm_cut_fraction,
                        log_scale=config.hm_log_scale,
                        backend=backend,
                        exact=config.hm_exact,
                        features=features,
                    )

                return run

            hm = guard.run(
                "theta_hm",
                [(b, hm_with(b)) for b in hm_backend_ladder(config.hm_backend)],
            )
            s.set(
                surviving_hosts=len(hm.selected_set),
                threshold=hm.threshold,
            )
        _record_stage(
            "theta_hm", len(union), len(hm.selected_set), hm.threshold
        )
        degradations = guard.degradations[degradations_before:]
        root.set(suspects=len(hm.selected_set), degradations=len(degradations))
    return PipelineResult(
        input_hosts=frozenset(hosts),
        reduction=reduction,
        volume=volume,
        churn=churn,
        hm=hm,
        degradations=degradations,
    )
