"""Port-split detection: finding Plotters that hide behind Traders.

§VI of the paper identifies its main limitation: a Plotter sharing a
host with a heavy Trader can be obscured by the Trader's traffic, and
sketches the fix — "separate traffic by application, such as determined
using port numbers. Traffic from each port, or a group of associated
ports, can then be applied individually to the tests."  This module
implements that extension.

Each internal host's flows are partitioned into *port groups* (exact
destination port for ports the host uses heavily, a shared bucket for
the rest), each (host, group) pair becomes a virtual host, and the
FindPlotters pipeline runs over the virtual population.  A real host is
flagged if any of its virtual hosts is flagged; the responsible port
group is reported, which is operationally useful by itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..flows.record import FlowRecord
from ..flows.store import FlowStore
from .pipeline import PipelineConfig, PipelineResult, find_plotters

__all__ = ["PortSplitConfig", "PortSplitResult", "find_plotters_port_split"]

#: Separator in virtual-host identifiers.  IPv4 addresses never contain
#: it, so splitting back is unambiguous.
_SEP = "|"


@dataclass(frozen=True)
class PortSplitConfig:
    """How a host's traffic is partitioned into port groups.

    A destination port gets its own group when the host sent at least
    ``min_flows_per_group`` flows to it; all remaining flows share the
    ``"rest"`` group.  Virtual hosts with fewer than
    ``min_flows_per_group`` total flows are dropped — they cannot carry
    a meaningful signal through the tests.
    """

    min_flows_per_group: int = 20
    pipeline: PipelineConfig = PipelineConfig()


@dataclass(frozen=True)
class PortSplitResult:
    """Port-split detection output.

    ``suspects`` are real hosts; ``suspect_groups`` maps each suspect to
    the port groups whose virtual host was flagged.
    """

    pipeline: PipelineResult
    suspects: frozenset
    suspect_groups: Dict[str, Tuple[str, ...]]
    virtual_hosts: int


def _port_groups(
    flows: List[FlowRecord], min_flows: int
) -> Dict[str, List[FlowRecord]]:
    """Partition one host's flows into port groups."""
    per_port: Dict[int, List[FlowRecord]] = {}
    for flow in flows:
        per_port.setdefault(flow.dport, []).append(flow)
    groups: Dict[str, List[FlowRecord]] = {}
    rest: List[FlowRecord] = []
    for port, port_flows in per_port.items():
        if len(port_flows) >= min_flows:
            groups[str(port)] = port_flows
        else:
            rest.extend(port_flows)
    if rest:
        groups["rest"] = rest
    return groups


def split_virtual_hosts(
    store: FlowStore,
    hosts: Iterable[str],
    min_flows_per_group: int = 20,
) -> Tuple[FlowStore, Dict[str, str]]:
    """Rewrite flows so each (host, port group) is its own source.

    Returns the rewritten store and the virtual→real host mapping.
    Flows initiated by addresses outside ``hosts`` pass through
    unchanged (they are nobody's virtual host).
    """
    host_set = set(hosts)
    rewritten: List[FlowRecord] = []
    mapping: Dict[str, str] = {}
    for host in sorted(host_set):
        flows = store.flows_from(host)
        for group, group_flows in _port_groups(flows, min_flows_per_group).items():
            if len(group_flows) < min_flows_per_group:
                continue
            virtual = f"{host}{_SEP}{group}"
            mapping[virtual] = host
            rewritten.extend(f.reassigned(virtual) for f in group_flows)
    for flow in store:
        if flow.src not in host_set:
            rewritten.append(flow)
    return FlowStore(rewritten), mapping


def find_plotters_port_split(
    store: FlowStore,
    hosts: Set[str],
    config: PortSplitConfig = PortSplitConfig(),
) -> PortSplitResult:
    """Run FindPlotters over per-port virtual hosts (§VI extension)."""
    virtual_store, mapping = split_virtual_hosts(
        store, hosts, config.min_flows_per_group
    )
    result = find_plotters(
        virtual_store, hosts=set(mapping), config=config.pipeline
    )
    suspect_groups: Dict[str, List[str]] = {}
    for virtual in result.suspects:
        host = mapping[virtual]
        group = virtual.split(_SEP, 1)[1]
        suspect_groups.setdefault(host, []).append(group)
    return PortSplitResult(
        pipeline=result,
        suspects=frozenset(suspect_groups),
        suspect_groups={
            host: tuple(sorted(groups))
            for host, groups in suspect_groups.items()
        },
        virtual_hosts=len(mapping),
    )
