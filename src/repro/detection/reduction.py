"""Initial data reduction: filtering hosts unlikely to be P2P at all.

§V-A: P2P hosts — Traders *and* Plotters — exhibit much higher
failed-connection rates than ordinary hosts, because peer churn leaves
every peer's contact lists full of stale entries.  The paper therefore
keeps only hosts whose failed-connection rate exceeds the *median*
across all hosts that initiated successful flows in the window,
removing roughly half the population while retaining essentially all
P2P hosts.  The threshold is recomputed for every day of traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from ..flows.metrics import HostFeatures, failed_connection_rate
from ..flows.store import FlowStore
from ..stats.thresholds import percentile_threshold, select_above
from .testbase import TestResult

__all__ = ["failed_rates", "initial_data_reduction"]


def failed_rates(
    store: FlowStore,
    hosts: Iterable[str],
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> Dict[str, float]:
    """Failed-connection rate per host, for hosts with ≥1 successful flow.

    Hosts that never initiated a successful connection are excluded, as
    in the paper ("Only hosts that initiated successful connections
    within that day were included").  With ``features`` the rates are
    read off pre-extracted bundles instead of re-scanning the store;
    ``initiated_successful`` encodes the same exclusion.
    """
    rates: Dict[str, float] = {}
    if features is not None:
        for host in hosts:
            bundle = features.get(host)
            if bundle is not None and bundle.initiated_successful:
                rates[host] = bundle.failed_conn_rate
        return rates
    for host in hosts:
        flows = store.flows_from(host)
        if not flows:
            continue
        if all(f.failed for f in flows):
            continue
        rates[host] = failed_connection_rate(flows)
    return rates


def initial_data_reduction(
    store: FlowStore,
    hosts: Optional[Set[str]] = None,
    percentile: float = 50.0,
    features: Optional[Mapping[str, HostFeatures]] = None,
) -> TestResult:
    """Keep hosts whose failed-connection rate exceeds the percentile.

    Parameters
    ----------
    store:
        The traffic Λ for the detection window.
    hosts:
        Candidate hosts (default: every initiator in the store).
    percentile:
        Percentile of the per-host failed-connection rate used as the
        cutoff; the paper uses the median (50).
    """
    if hosts is None:
        hosts = store.initiators
    rates = failed_rates(store, hosts, features)
    if not rates:
        return TestResult(
            name="reduction", selected=frozenset(), threshold=0.0, metric={}
        )
    threshold = percentile_threshold(list(rates.values()), percentile)
    selected = select_above(rates, threshold)
    return TestResult(
        name="reduction",
        selected=frozenset(selected),
        threshold=threshold,
        metric=rates,
    )
