"""Host entities in the simulated network.

A :class:`Host` ties an address to a role label.  Roles record *what the
generator made the host do* — they are the evaluation's ground truth, and
are never visible to the detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet

__all__ = ["HostRole", "Host"]


class HostRole(enum.Enum):
    """Ground-truth role of a simulated host."""

    BACKGROUND = "background"
    TRADER_BITTORRENT = "trader-bittorrent"
    TRADER_GNUTELLA = "trader-gnutella"
    TRADER_EMULE = "trader-emule"
    PLOTTER_STORM = "plotter-storm"
    PLOTTER_NUGACHE = "plotter-nugache"

    @property
    def is_trader(self) -> bool:
        """Whether the role is a P2P file-sharing host."""
        return self in (
            HostRole.TRADER_BITTORRENT,
            HostRole.TRADER_GNUTELLA,
            HostRole.TRADER_EMULE,
        )

    @property
    def is_plotter(self) -> bool:
        """Whether the role is a P2P bot."""
        return self in (HostRole.PLOTTER_STORM, HostRole.PLOTTER_NUGACHE)

    @property
    def is_p2p(self) -> bool:
        """Whether the role involves any P2P substrate."""
        return self.is_trader or self.is_plotter


@dataclass(frozen=True)
class Host:
    """One simulated endpoint.

    A physical host may accumulate several roles — e.g. a Trader that a
    Plotter trace was overlaid onto, which is exactly the hard case the
    paper evaluates (§V).
    """

    address: str
    roles: FrozenSet[HostRole] = field(default_factory=frozenset)

    def with_role(self, role: HostRole) -> "Host":
        """A copy of this host with ``role`` added."""
        return Host(address=self.address, roles=self.roles | {role})

    @property
    def is_trader(self) -> bool:
        return any(r.is_trader for r in self.roles)

    @property
    def is_plotter(self) -> bool:
        return any(r.is_plotter for r in self.roles)
