"""IPv4 address pools for the simulated campus and the outside world.

The paper's vantage point sees two /16 internal subnets plus the entire
external Internet.  :class:`AddressSpace` allocates internal host
addresses deterministically and synthesises plausible external addresses
on demand, guaranteeing the two populations never collide.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

__all__ = ["AddressSpace", "DEFAULT_INTERNAL_PREFIXES"]

#: Two /16-style internal prefixes, mirroring the CMU vantage point (§III).
DEFAULT_INTERNAL_PREFIXES: Tuple[str, ...] = ("10.1.", "10.2.")


class AddressSpace:
    """Allocator for internal and external IPv4 addresses.

    Internal addresses are drawn sequentially from the configured /16
    prefixes; external addresses are random dotted quads outside any
    internal prefix (and outside reserved 0/255 octet endpoints), drawn
    from a caller-supplied RNG so allocation is reproducible.
    """

    def __init__(
        self,
        internal_prefixes: Sequence[str] = DEFAULT_INTERNAL_PREFIXES,
    ) -> None:
        if not internal_prefixes:
            raise ValueError("at least one internal prefix is required")
        for prefix in internal_prefixes:
            parts = prefix.strip(".").split(".")
            if len(parts) != 2 or not all(p.isdigit() for p in parts):
                raise ValueError(
                    f"internal prefixes must be two-octet ('a.b.'): {prefix!r}"
                )
        self._prefixes: Tuple[str, ...] = tuple(
            p if p.endswith(".") else p + "." for p in internal_prefixes
        )
        self._next_internal = 0
        self._issued_external: Set[str] = set()

    @property
    def internal_prefixes(self) -> Tuple[str, ...]:
        """The internal network prefixes ('a.b.' strings)."""
        return self._prefixes

    def is_internal(self, address: str) -> bool:
        """Whether ``address`` lies inside the campus."""
        return any(address.startswith(p) for p in self._prefixes)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_internal(self, count: int) -> List[str]:
        """Allocate ``count`` fresh internal host addresses.

        Hosts are spread round-robin over the configured prefixes; each
        prefix provides a /16 (65,024 usable host slots after excluding
        .0 and .255 final octets).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        addresses: List[str] = []
        while len(addresses) < count:
            index = self._next_internal
            self._next_internal += 1
            prefix = self._prefixes[index % len(self._prefixes)]
            slot = index // len(self._prefixes)
            third = slot // 254
            fourth = slot % 254 + 1
            if third > 255:
                raise RuntimeError("internal address space exhausted")
            addresses.append(f"{prefix}{third}.{fourth}")
        return addresses

    def random_external(self, rng: random.Random) -> str:
        """A fresh random external address (never internal, never reused)."""
        for _ in range(10_000):
            octets = (
                rng.randint(1, 223),
                rng.randint(0, 255),
                rng.randint(0, 255),
                rng.randint(1, 254),
            )
            address = ".".join(str(o) for o in octets)
            if self.is_internal(address) or address in self._issued_external:
                continue
            if octets[0] == 10 or octets[0] == 127:
                continue
            self._issued_external.add(address)
            return address
        raise RuntimeError(  # pragma: no cover - astronomically unlikely
            "failed to find a fresh external address"
        )

    def random_externals(self, rng: random.Random, count: int) -> List[str]:
        """Allocate ``count`` distinct external addresses."""
        return [self.random_external(rng) for _ in range(count)]
