"""The flow-emission simulation engine.

:class:`NetworkSimulation` is the substrate traffic agents plug into: it
owns the clock and the event queue, collects the flow records agents
emit, and runs the event loop up to a horizon.  All behavioural realism
(protocol timing, churn, failure modes) lives in the agents and the P2P
overlay simulators; the engine only sequences them and gathers output.
"""

from __future__ import annotations

import zlib
from typing import Callable, List, Optional, Protocol, runtime_checkable

from ..flows.record import FlowRecord, FlowState
from ..flows.record import Protocol as FlowProto
from ..flows.store import FlowStore
from .addressing import AddressSpace
from .clock import SimulationClock
from .events import EventQueue
from .rng import substream

__all__ = ["TrafficSource", "NetworkSimulation"]


@runtime_checkable
class TrafficSource(Protocol):
    """Anything that can inject traffic into a simulation.

    Implementations receive the simulation once at :meth:`start` and from
    then on drive themselves via scheduled events.
    """

    def start(self, sim: "NetworkSimulation") -> None:
        """Register initial events with the simulation."""


class NetworkSimulation:
    """Discrete-event simulation producing Argus-style flow records."""

    def __init__(
        self,
        seed: int,
        address_space: Optional[AddressSpace] = None,
        horizon: float = float("inf"),
    ) -> None:
        self.seed = seed
        self.addresses = address_space if address_space is not None else AddressSpace()
        self.horizon = float(horizon)
        self.clock = SimulationClock()
        self.events = EventQueue()
        self._flows: List[FlowRecord] = []
        self._sources: List[TrafficSource] = []

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def add_source(self, source: TrafficSource) -> None:
        """Attach a traffic source; it is started when :meth:`run` begins."""
        self._sources.append(source)

    def rng(self, *keys) -> "random.Random":  # noqa: F821 - doc only
        """A deterministic RNG substream namespaced under this simulation."""
        return substream(self.seed, *keys)

    # ------------------------------------------------------------------
    # Agent-facing API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Schedule ``callback(now)`` at absolute time ``when``.

        Events beyond the horizon are silently dropped — agents may keep
        rescheduling themselves without checking the horizon.
        """
        if when <= self.horizon:
            self.events.schedule(when, callback)

    def schedule_in(self, delay: float, callback: Callable[[float], None]) -> None:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.clock.now + delay, callback)

    def emit(self, flow: FlowRecord) -> None:
        """Record one flow produced by an agent.

        Flows starting after the horizon are dropped: collection stops
        at the window's end, even when an in-window event schedules
        trailing activity (e.g. a batch of staggered connections).
        """
        if flow.start <= self.horizon:
            self._flows.append(flow)

    def emit_connection(
        self,
        src: str,
        dst: str,
        dport: int,
        proto: FlowProto,
        state: FlowState,
        duration: float,
        src_bytes: int,
        dst_bytes: int,
        payload: bytes = b"",
        sport: Optional[int] = None,
        start: Optional[float] = None,
        src_pkts: Optional[int] = None,
        dst_pkts: Optional[int] = None,
    ) -> FlowRecord:
        """Build, emit and return one flow record starting "now".

        Failed connections (state != ESTABLISHED) carry no responder
        bytes regardless of what the caller passed, and the initiator's
        bytes collapse to the handshake attempt.  Packet counts, when not
        given, are estimated from byte counts at a nominal 800-byte mean
        packet payload (at least one packet per non-empty direction).
        """
        begin = self.clock.now if start is None else start
        if state.failed:
            dst_bytes = 0
            src_bytes = min(src_bytes, 180)
            payload = b""
            duration = min(duration, 3.0)
        if sport is None:
            key = f"{src}|{dst}|{dport}|{round(begin * 1e6)}".encode()
            sport = 1024 + (zlib.crc32(key) % 60000)
        if src_pkts is None:
            src_pkts = max(1, int(round(src_bytes / 800.0)))
        if dst_pkts is None:
            dst_pkts = max(1 if dst_bytes > 0 else 0, int(round(dst_bytes / 800.0)))
        flow = FlowRecord(
            src=src,
            dst=dst,
            sport=sport,
            dport=dport,
            proto=proto,
            start=begin,
            end=begin + max(duration, 0.0),
            src_bytes=src_bytes,
            dst_bytes=dst_bytes,
            src_pkts=src_pkts,
            dst_pkts=dst_pkts,
            state=state,
            payload=payload,
        )
        self.emit(flow)
        return flow

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> FlowStore:
        """Run the event loop up to ``until`` (default: the horizon).

        Returns all flows collected so far as a :class:`FlowStore`.
        """
        stop = self.horizon if until is None else min(float(until), self.horizon)
        for source in self._sources:
            source.start(self)
        self._sources = []
        while self.events:
            next_time = self.events.peek_time()
            if next_time is None or next_time > stop:
                break
            when, callback = self.events.pop()
            self.clock.advance_to(when)
            callback(when)
        if stop != float("inf") and stop > self.clock.now:
            self.clock.advance_to(stop)
        return FlowStore(self._flows)

    @property
    def flow_count(self) -> int:
        """Number of flows emitted so far."""
        return len(self._flows)
