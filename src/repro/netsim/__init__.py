"""Network simulation substrate: clock, events, RNG, addressing, engine."""

from .clock import COLLECTION_WINDOW, SimulationClock, day_window
from .events import EventQueue
from .rng import derive_seed, numpy_substream, substream
from .addressing import DEFAULT_INTERNAL_PREFIXES, AddressSpace
from .entities import Host, HostRole
from .network import NetworkSimulation, TrafficSource

__all__ = [
    "COLLECTION_WINDOW",
    "SimulationClock",
    "day_window",
    "EventQueue",
    "derive_seed",
    "numpy_substream",
    "substream",
    "DEFAULT_INTERNAL_PREFIXES",
    "AddressSpace",
    "Host",
    "HostRole",
    "NetworkSimulation",
    "TrafficSource",
]
