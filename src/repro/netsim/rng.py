"""Deterministic, named random-number streams.

Every stochastic component of the simulator (agent behaviour, churn,
address allocation, overlay assignment) draws from its own named stream
derived from a single experiment seed.  This keeps experiments exactly
reproducible while preventing one component's draw count from perturbing
another's sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Tuple, Union

import numpy as np

__all__ = ["derive_seed", "substream", "numpy_substream"]

Key = Union[str, int]


def derive_seed(root_seed: int, *keys: Key) -> int:
    """Derive a child seed from ``root_seed`` and a path of keys.

    The derivation is a SHA-256 hash of the root seed and the key path,
    so child streams are statistically independent and stable across
    runs and platforms.
    """
    hasher = hashlib.sha256()
    hasher.update(str(root_seed).encode())
    for key in keys:
        hasher.update(b"/")
        hasher.update(str(key).encode())
    return int.from_bytes(hasher.digest()[:8], "big")


def substream(root_seed: int, *keys: Key) -> random.Random:
    """A stdlib ``random.Random`` seeded from the derived child seed."""
    return random.Random(derive_seed(root_seed, *keys))


def numpy_substream(root_seed: int, *keys: Key) -> np.random.Generator:
    """A numpy ``Generator`` seeded from the derived child seed."""
    return np.random.default_rng(derive_seed(root_seed, *keys))
