"""A discrete-event queue.

Agents schedule callbacks at future simulation times; the network engine
pops them in time order.  Ties are broken by insertion order so runs are
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventQueue"]

Callback = Callable[[float], None]


class EventQueue:
    """A heap-ordered queue of timed callbacks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, when: float, callback: Callback) -> None:
        """Enqueue ``callback`` to fire at simulation time ``when``."""
        if when < 0:
            raise ValueError("events cannot be scheduled at negative times")
        heapq.heappush(self._heap, (float(when), next(self._counter), callback))

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Tuple[float, Callback]:
        """Remove and return the next ``(time, callback)`` pair."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        when, _seq, callback = heapq.heappop(self._heap)
        return when, callback
