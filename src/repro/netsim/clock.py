"""Simulation time.

Simulation time is measured in seconds from an arbitrary trace epoch.
The paper's collection window is 9 a.m. to 3 p.m. — six hours — per day;
helpers here express that convention.
"""

from __future__ import annotations

__all__ = ["SimulationClock", "COLLECTION_WINDOW", "day_window"]

#: Length of one daily collection window in seconds (9 a.m.–3 p.m., §III).
COLLECTION_WINDOW = 6 * 3600.0


class SimulationClock:
    """A monotonically advancing simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises
        ------
        ValueError
            If ``t`` precedes the current time — simulated time never
            runs backwards.
        """
        if t < self._now:
            raise ValueError(f"clock cannot run backwards: {t} < {self._now}")
        self._now = float(t)


def day_window(day: int, window: float = COLLECTION_WINDOW) -> tuple:
    """(start, end) of collection day ``day`` (0-based).

    Days are laid out back to back on the simulation time axis; each
    carries one collection window.
    """
    if day < 0:
        raise ValueError("day index must be non-negative")
    start = day * window
    return (start, start + window)
