"""File-lease leadership election with fencing, for HA pairs.

A :class:`FileLease` is the smallest coordination primitive that can
make a warm-standby pair safe on one shared directory: an atomically
written ``lease.json`` naming the current holder, a wall-clock TTL
after which any contender may take the lease over, and a **fencing
counter** (``fence``) that increments on every change of ownership.
The fence is the holder's *incarnation*: a process that acquired fence
``f`` and later observes the lease held at any other fence has been
fenced out and must stop acting as leader — even if it never saw its
own renewal fail (the classic stalled-heartbeat split brain).

Mutations (acquire, renew, release) are serialised by an ``os.mkdir``
lock directory — atomic on every platform Python runs on, with no
``fcntl`` dependency — so two contenders racing an expired lease
cannot both install themselves.  A lock directory older than the lease
TTL is presumed abandoned by a crashed mutator and broken.

Every change of ownership is appended to ``lease-history.jsonl`` next
to the lease file: the audit trail the HA soak uploads as a CI
artifact, and the quickest way to reconstruct "who led when" after an
incident.

:class:`LeaseKeeper` is the holder-side heartbeat: a daemon thread
renewing at ``ttl / 3`` that calls ``on_lost`` exactly once if the
lease is ever observed under another fence.  The
``REPRO_FAULT_SERVE_LEASE_STALL`` knob (:func:`repro.resilience.faults
.serve_lease_stall`) strikes here: the keeper that claims the sentinel
stops renewing long enough for the standby to take over, then must
notice the moved fence and step down — the failure drill for the one
partition a single-box pair can actually suffer.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from . import faults
from .io import atomic_write_text

__all__ = ["LeaseState", "FileLease", "LeaseKeeper", "LEASE_NAME", "HISTORY_NAME"]

LEASE_NAME = "lease.json"
HISTORY_NAME = "lease-history.jsonl"
_LOCK_NAME = "lease.lock"

logger = get_logger("resilience.lease")

_ACQUISITIONS = obs_metrics.counter(
    "repro_lease_acquisitions_total",
    "Lease acquisition attempts, by outcome",
    labels=("outcome",),
)
_RENEWALS = obs_metrics.counter(
    "repro_lease_renewals_total",
    "Lease heartbeat renewals, by outcome",
    labels=("outcome",),
)


@dataclass(frozen=True)
class LeaseState:
    """One decoded ``lease.json``: who leads, under which fence."""

    holder: str
    pid: int
    fence: int
    ttl: float
    renewed_at: float

    @property
    def expires_at(self) -> float:
        return self.renewed_at + self.ttl

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.time() if now is None else now) >= self.expires_at

    def to_json(self) -> dict:
        return {
            "holder": self.holder,
            "pid": self.pid,
            "fence": self.fence,
            "ttl": self.ttl,
            "renewed_at": self.renewed_at,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "LeaseState":
        return cls(
            holder=str(doc["holder"]),
            pid=int(doc["pid"]),
            fence=int(doc["fence"]),
            ttl=float(doc["ttl"]),
            renewed_at=float(doc["renewed_at"]),
        )


def default_holder_id() -> str:
    """``host:pid`` — unique enough for processes sharing a spool dir."""
    return f"{socket.gethostname()}:{os.getpid()}"


class FileLease:
    """A TTL lease on one directory, with a fencing counter.

    Parameters
    ----------
    directory:
        Where ``lease.json`` / ``lease-history.jsonl`` / the mutation
        lock live (created if missing).  The HA runner uses
        ``<spool-dir>/ha``.
    holder_id:
        This contender's identity (default ``host:pid``).
    ttl:
        Seconds a renewal stays valid.  Failover time after a primary
        SIGKILL is at most ``ttl`` plus the standby's poll interval.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        holder_id: Optional[str] = None,
        ttl: float = 5.0,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.holder_id = holder_id or default_holder_id()
        self.ttl = float(ttl)
        self.path = self.directory / LEASE_NAME
        self.history_path = self.directory / HISTORY_NAME
        self._lock_dir = self.directory / _LOCK_NAME

    # ------------------------------------------------------------------
    # Mutation serialisation (mkdir lock, stale-broken)
    # ------------------------------------------------------------------
    def _mutate(self, fn: Callable[[Optional[LeaseState]], Optional[LeaseState]]):
        """Run ``fn(current)`` under the mkdir lock; persist its result.

        ``fn`` returns the new state to install, or ``None`` to leave
        the lease untouched.  Returns whatever ``fn`` returned.
        """
        deadline = time.time() + max(2.0, 2 * self.ttl)
        while True:
            try:
                os.mkdir(self._lock_dir)
                break
            except FileExistsError:
                try:
                    age = time.time() - self._lock_dir.stat().st_mtime
                except OSError:
                    continue  # lock released between mkdir and stat
                if age > max(self.ttl, 2.0):
                    # A mutator died inside the critical section; the
                    # section only writes atomically, so breaking the
                    # lock cannot expose a torn lease file.
                    logger.warning(
                        "breaking stale lease lock %s (age %.1fs)",
                        self._lock_dir,
                        age,
                    )
                    try:
                        os.rmdir(self._lock_dir)
                    except OSError:
                        pass
                    continue
                if time.time() >= deadline:
                    raise TimeoutError(
                        f"could not take lease mutation lock {self._lock_dir}"
                    )
                time.sleep(0.01)
        try:
            new_state = fn(self.read())
            if new_state is not None:
                atomic_write_text(
                    self.path,
                    json.dumps(new_state.to_json(), sort_keys=True) + "\n",
                )
            return new_state
        finally:
            try:
                os.rmdir(self._lock_dir)
            except OSError:  # pragma: no cover - lock dir vanished
                pass

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def read(self) -> Optional[LeaseState]:
        """The current lease state, or ``None`` when never written."""
        try:
            with open(self.path, encoding="utf-8") as fh:
                return LeaseState.from_json(json.load(fh))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError):
            # lease.json is written atomically, so this is a foreign or
            # corrupted file — treat as no lease (it will be rewritten).
            return None

    def try_acquire(self) -> Optional[int]:
        """Take the lease if free, expired, or already ours.

        Returns the fencing counter to lead under, or ``None`` while
        another holder's lease is still live.  Taking over from a
        *different* holder (including re-taking after our own lease
        expired and someone may have observed it) bumps the fence.
        """

        def decide(current: Optional[LeaseState]) -> Optional[LeaseState]:
            now = time.time()
            if current is not None and not current.expired(now):
                if current.holder == self.holder_id:
                    return LeaseState(
                        self.holder_id, os.getpid(), current.fence, self.ttl, now
                    )
                return None
            fence = 1 if current is None else current.fence + 1
            state = LeaseState(self.holder_id, os.getpid(), fence, self.ttl, now)
            self._record(
                "acquired",
                state,
                previous=None if current is None else current.holder,
            )
            return state

        state = self._mutate(decide)
        if state is None:
            _ACQUISITIONS.inc(outcome="held")
            return None
        _ACQUISITIONS.inc(outcome="acquired")
        return state.fence

    def renew(self, fence: int) -> bool:
        """Refresh our lease under ``fence``; ``False`` means fenced out.

        A renewal is only valid while the lease file still names us at
        the same fence — an expired-but-untouched lease is renewable
        (nobody observed the expiry), a taken-over one never is.
        """

        def decide(current: Optional[LeaseState]) -> Optional[LeaseState]:
            if (
                current is None
                or current.holder != self.holder_id
                or current.fence != fence
            ):
                return None
            return LeaseState(
                self.holder_id, os.getpid(), fence, self.ttl, time.time()
            )

        state = self._mutate(decide)
        _RENEWALS.inc(outcome="ok" if state is not None else "fenced")
        return state is not None

    def release(self, fence: int) -> bool:
        """Give the lease up voluntarily (it becomes instantly takeable)."""

        def decide(current: Optional[LeaseState]) -> Optional[LeaseState]:
            if (
                current is None
                or current.holder != self.holder_id
                or current.fence != fence
            ):
                return None
            state = LeaseState(
                self.holder_id, os.getpid(), fence, 0.0, time.time() - 1.0
            )
            self._record("released", state, previous=self.holder_id)
            return state

        return self._mutate(decide) is not None

    def held_by_us(self, fence: int) -> bool:
        """Fence check: are we *still* the holder at this fence?

        Read-only (no lock): the lease file is written atomically, so a
        plain read sees either the old state or the new — both answer
        the question correctly.  The primary calls this on the ingest
        path before durable side effects, so a stalled-heartbeat
        primary stops accepting writes as soon as the standby takes
        over, not a renewal interval later.
        """
        current = self.read()
        return (
            current is not None
            and current.holder == self.holder_id
            and current.fence == fence
            and not current.expired()
        )

    def _record(self, event: str, state: LeaseState, previous: Optional[str]):
        line = json.dumps(
            {
                "event": event,
                "at": time.time(),
                "holder": state.holder,
                "pid": state.pid,
                "fence": state.fence,
                "previous_holder": previous,
            },
            sort_keys=True,
        )
        try:
            with open(self.history_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:  # pragma: no cover - history is best-effort
            logger.warning("could not append lease history at %s", self.history_path)


class LeaseKeeper(threading.Thread):
    """Heartbeat thread: renew at ``ttl / 3``; report fencing once.

    ``on_lost`` fires (at most once) when a renewal comes back fenced —
    the holder must stop leading.  The keeper also honours the
    ``REPRO_FAULT_SERVE_LEASE_STALL`` sentinel: when claimed it skips
    renewals for the stall duration (default ``3 * ttl``, enough to
    guarantee expiry), after which the next renewal attempt discovers
    the takeover and triggers ``on_lost``.
    """

    def __init__(
        self,
        lease: FileLease,
        fence: int,
        *,
        on_lost: Optional[Callable[[], None]] = None,
        interval: Optional[float] = None,
    ) -> None:
        super().__init__(name=f"repro-lease-keeper:{fence}", daemon=True)
        self.lease = lease
        self.fence = fence
        self.on_lost = on_lost
        self.interval = interval if interval is not None else lease.ttl / 3.0
        self.lost = threading.Event()
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            stall = faults.serve_lease_stall()
            if stall is not None:
                duration = stall if stall > 0 else 3.0 * self.lease.ttl
                logger.warning(
                    "injected lease stall: heartbeat silent for %.2fs", duration
                )
                if self._halt.wait(duration):
                    return
            if not self.lease.renew(self.fence):
                logger.warning(
                    "lease fenced: holder %s lost fence %d",
                    self.lease.holder_id,
                    self.fence,
                )
                self.lost.set()
                if self.on_lost is not None:
                    self.on_lost()
                return

    def stop(self) -> None:
        """Stop heartbeating (does not release the lease)."""
        self._halt.set()
