"""Crash-safe file writes: temp file in place, fsync, atomic rename.

A checkpoint or trace that a crashed writer leaves half-written is
worse than none at all — resume logic must then *detect* the tear
instead of trusting the file.  Every durable artifact in the pipeline
(traces, shard checkpoints, run manifests) goes through
:func:`atomic_write`, which guarantees a reader observes either the
complete old content or the complete new content, never a mixture:

1. the payload is written to a uniquely-named temp file **in the
   destination directory** (same filesystem, so the final rename
   cannot degrade to a copy);
2. the temp file is flushed and ``fsync``'d, so the *data* is durable
   before the name points at it;
3. ``os.replace`` atomically installs it;
4. the directory entry is fsync'd (best effort — not every platform
   allows opening a directory), making the rename itself durable.

On any failure the temp file is removed and the destination is
untouched.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Union

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Fsync a directory entry, best effort.

    Durability of a rename requires fsyncing the containing directory;
    platforms/filesystems that refuse to open directories (or to fsync
    them) simply skip the extra guarantee — the rename atomicity
    itself is unaffected.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(
    path: Union[str, Path],
    mode: str = "w",
    *,
    encoding: "str | None" = None,
    newline: "str | None" = None,
):
    """Yield a handle whose contents atomically replace ``path`` on exit.

    The handle writes to ``<name>.<pid>.tmp`` next to the destination;
    a successful exit fsyncs it and renames it into place, an
    exception removes it and leaves any existing destination intact.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    handle = open(tmp, mode, encoding=encoding, newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, target)
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_directory(target.parent)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically (and durably) replace ``path`` with ``data``."""
    with atomic_write(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically (and durably) replace ``path`` with ``text``."""
    with atomic_write(path, "w", encoding=encoding) as handle:
        handle.write(text)
