"""repro.resilience — fault tolerance for the long-running pipeline.

The paper's deployment story is continuous operation at a busy border
(~5000 flows/s over an eight-day trace, §I/§V); at that scale dirty
input and partial infrastructure failure are the steady state, not the
exception.  This package supplies the three mechanisms the rest of the
pipeline threads through:

* **Retry/backoff** (:mod:`repro.resilience.retry`) —
  :class:`RetryPolicy` with jittered exponential backoff in callable,
  decorator, and loop/context-manager forms, instrumented with
  retry/give-up counters.
* **Stage supervision** (:mod:`repro.resilience.guard`) —
  :class:`StageGuard` runs each stage down a declared fallback ladder
  (parallel extraction → warm pool restart → in-process sequential;
  vectorized θ_hm backends → ``loop``; checkpointing → none) and
  records every step as a :class:`Degradation` on the log, metrics,
  and span channels at once.
* **Crash-safe writes** (:mod:`repro.resilience.io`) —
  write-temp / fsync / atomic-rename helpers behind every durable
  artifact.
* **Fault injection** (:mod:`repro.resilience.faults`) — the single
  ``REPRO_FAULT_*`` namespace (plus programmatic
  :func:`~repro.resilience.faults.injected`) powering the chaos test
  suite and the CI chaos-smoke job.

See ``docs/resilience.md`` for the failure-mode inventory and the
degradation ladder.
"""

from . import faults
from .breaker import CircuitBreaker
from .guard import Degradation, StageGuard, hm_backend_ladder
from .io import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from .lease import FileLease, LeaseKeeper, LeaseState
from .retry import Attempt, RetryError, RetryPolicy

__all__ = [
    "faults",
    "CircuitBreaker",
    "Degradation",
    "StageGuard",
    "hm_backend_ladder",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "FileLease",
    "LeaseKeeper",
    "LeaseState",
    "Attempt",
    "RetryError",
    "RetryPolicy",
]
