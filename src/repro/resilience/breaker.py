"""Circuit breaker: stop retrying what keeps failing, loudly.

A fallback ladder (:class:`~repro.resilience.guard.StageGuard`) and a
respawn loop share a blind spot: both will happily retry *forever* when
the failure is deterministic — a poisoned shard whose replay kills
every worker incarnation crash-loops at the supervisor's poll rate,
burning a core and flooding the log, while the service looks "up".

:class:`CircuitBreaker` is the rung below the ladder's last resort:
count failures inside a sliding window, and when the count crosses the
threshold, **open** — the caller must stop retrying the protected
operation and degrade to a declared quarantine mode instead.  Opening
is reported exactly like any other degradation (through
``StageGuard.note`` when attached via :meth:`StageGuard` wiring, plus
its own counter), so a quarantined resource can never pass unnoticed.

The breaker is deliberately minimal — no half-open probing, no
auto-reset: for the serve plane's use (worker respawns over a durable
spool) the correct recovery is operator-driven (`POST /rebalance`
builds a fresh epoch), not a timer guessing the poison evaporated.
``reset()`` exists for exactly that path.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger

__all__ = ["CircuitBreaker"]

logger = get_logger("resilience.breaker")

_TRANSITIONS = obs_metrics.counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by breaker name and new state",
    labels=("name", "state"),
)


class CircuitBreaker:
    """Open after ``max_failures`` failures within ``window`` seconds.

    Parameters
    ----------
    name:
        Label for logs/metrics (e.g. ``worker-respawn:3``).
    max_failures:
        Failures inside the window that open the breaker (>= 1).
    window:
        Sliding-window length in seconds; ``None`` = count forever
        (every failure is recent).
    on_open:
        Optional callback fired exactly once at the closed→open
        transition — the hook :class:`StageGuard` integration uses to
        report the quarantine as a degradation.
    clock:
        Injectable time source (tests pin the window).
    """

    def __init__(
        self,
        name: str,
        *,
        max_failures: int,
        window: Optional[float] = None,
        on_open: Optional[Callable[["CircuitBreaker"], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if window is not None and window <= 0:
            raise ValueError("window must be positive (or None)")
        self.name = name
        self.max_failures = max_failures
        self.window = window
        self.on_open = on_open
        self.clock = clock
        self._lock = threading.Lock()
        self._failures: List[float] = []
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    def failures_in_window(self) -> int:
        """Failures currently counted against the threshold."""
        with self._lock:
            self._prune(self.clock())
            return len(self._failures)

    def _prune(self, now: float) -> None:
        if self.window is not None:
            cutoff = now - self.window
            self._failures = [at for at in self._failures if at >= cutoff]

    def record_failure(self, error: str = "") -> bool:
        """Count one failure; return ``True`` iff the breaker is open.

        The closed→open transition happens here, fires ``on_open``
        once, and latches: further failures keep returning ``True``
        without re-firing the callback.
        """
        fire = False
        with self._lock:
            now = self.clock()
            self._prune(now)
            self._failures.append(now)
            if not self._open and len(self._failures) >= self.max_failures:
                self._open = True
                fire = True
        if fire:
            logger.warning(
                "circuit breaker %s opened after %d failure(s)%s",
                self.name,
                self.max_failures,
                f": {error}" if error else "",
            )
            _TRANSITIONS.inc(name=self.name, state="open")
            if self.on_open is not None:
                self.on_open(self)
        return self._open

    def reset(self) -> None:
        """Close the breaker and forget its failures (operator action)."""
        with self._lock:
            was_open = self._open
            self._open = False
            self._failures = []
        if was_open:
            logger.info("circuit breaker %s reset", self.name)
            _TRANSITIONS.inc(name=self.name, state="closed")
