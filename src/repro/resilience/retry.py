"""Retry with jittered exponential backoff, as policy objects.

A :class:`RetryPolicy` owns every decision an ad-hoc retry loop would
otherwise hard-code: how many attempts, how long to wait between them
(exponential with full jitter, capped), which exceptions are worth
retrying, and an advisory per-attempt timeout for callees that accept
one (``future.result(timeout=attempt.timeout)``).  Three call forms
share the same accounting:

* :meth:`RetryPolicy.call` — run a callable, return its result;
* :meth:`RetryPolicy.retrying` — the decorator form;
* :meth:`RetryPolicy.attempts` — the loop/context-manager form, for
  bodies too entangled to lift into a callable::

      for attempt in policy.attempts("verdict-write"):
          with attempt:
              write_verdict(...)

Every attempt lands in the ``repro_retry_attempts_total`` counter
(labelled by call-site name and outcome ``ok``/``retried``/``giveup``)
and every exhausted policy in ``repro_retry_giveups_total`` — so a
dashboard shows which sites are *quietly* retrying long before one of
them finally gives up.  When attempts are exhausted the policy raises
:class:`RetryError`, which carries the attempt count and the message
of every failure (the last one as ``__cause__``); non-retryable
exceptions propagate unchanged on first occurrence.

``sleep`` is injectable so tests assert the exact backoff schedule
without waiting for it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger

__all__ = ["RetryError", "RetryPolicy", "Attempt", "record_attempt"]

T = TypeVar("T")

logger = get_logger("resilience.retry")

_ATTEMPTS = obs_metrics.counter(
    "repro_retry_attempts_total",
    "Retry-policy attempts by call-site name and outcome",
    labels=("name", "outcome"),
)
_GIVEUPS = obs_metrics.counter(
    "repro_retry_giveups_total",
    "Retry policies that exhausted every attempt",
    labels=("name",),
)


def record_attempt(name: str, outcome: str) -> None:
    """Count one attempt at a call site that runs its own retry loop.

    Engines that cannot route work through :meth:`RetryPolicy.call` —
    the pooled extraction waves retry whole batches against a fresh
    executor — use this to emit the exact ``repro_retry_attempts_total``
    (and, for ``outcome="giveup"``, ``repro_retry_giveups_total``)
    series the policy would, keeping attempt telemetry uniform across
    sequential and pooled execution.
    """
    _ATTEMPTS.inc(name=name, outcome=outcome)
    if outcome == "giveup":
        _GIVEUPS.inc(name=name)


def _default_retryable(exc: BaseException) -> bool:
    """Retry ordinary errors; never retry cancellation/exit signals."""
    return isinstance(exc, Exception)


class RetryError(RuntimeError):
    """Raised when a :class:`RetryPolicy` exhausts its attempts.

    Attributes
    ----------
    name:
        The call-site name the policy was invoked under.
    attempts:
        How many attempts ran (== the policy's ``max_attempts``).
    errors:
        One ``"Type: message"`` string per failed attempt, in order.
    """

    def __init__(self, name: str, attempts: int, errors: Sequence[str]) -> None:
        self.name = name
        self.attempts = attempts
        self.errors: Tuple[str, ...] = tuple(errors)
        last = self.errors[-1] if self.errors else "unknown error"
        super().__init__(
            f"{name}: gave up after {attempts} attempt(s); last error: {last}"
        )


@dataclass
class _RetryState:
    """Shared bookkeeping between a policy and its yielded attempts."""

    succeeded: bool = False
    errors: List[str] = field(default_factory=list)


class Attempt:
    """One try of the ``attempts()`` loop; use as a context manager.

    Exiting cleanly marks the loop finished.  Exiting with a retryable
    exception (with attempts remaining) swallows it, sleeps the
    policy's backoff, and lets the loop continue; otherwise the
    exception propagates — wrapped in :class:`RetryError` when the
    policy is exhausted.
    """

    __slots__ = ("policy", "number", "name", "_state")

    def __init__(
        self, policy: "RetryPolicy", number: int, name: str, state: _RetryState
    ) -> None:
        self.policy = policy
        self.number = number
        self.name = name
        self._state = state

    @property
    def timeout(self) -> Optional[float]:
        """Advisory per-attempt timeout, for callees that accept one."""
        return self.policy.attempt_timeout

    @property
    def is_last(self) -> bool:
        return self.number >= self.policy.max_attempts

    def __enter__(self) -> "Attempt":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is None:
            self._state.succeeded = True
            _ATTEMPTS.inc(name=self.name, outcome="ok")
            return False
        self._state.errors.append(f"{type(exc).__name__}: {exc}")
        if not self.policy.retryable(exc):
            _ATTEMPTS.inc(name=self.name, outcome="giveup")
            _GIVEUPS.inc(name=self.name)
            return False
        if self.is_last:
            _ATTEMPTS.inc(name=self.name, outcome="giveup")
            _GIVEUPS.inc(name=self.name)
            raise RetryError(
                self.name, self.number, self._state.errors
            ) from exc
        _ATTEMPTS.inc(name=self.name, outcome="retried")
        delay = self.policy.delay(self.number)
        logger.warning(
            "%s: attempt %d/%d failed (%s); retrying in %.2fs",
            self.name,
            self.number,
            self.policy.max_attempts,
            self._state.errors[-1],
            delay,
        )
        if self.policy.on_retry is not None:
            self.policy.on_retry(exc, self.number)
        if delay > 0:
            self.policy.sleep(delay)
        return True


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry/backoff configuration.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (must be >= 1).
    base_delay, multiplier, max_delay:
        Backoff after the Nth failure is
        ``min(base_delay * multiplier**(N-1), max_delay)`` seconds…
    jitter:
        …scaled by a uniform factor in ``[1 - jitter, 1]`` (full
        decorrelation at ``jitter=1.0``, deterministic at ``0.0``).
    attempt_timeout:
        Advisory per-attempt budget, surfaced as ``Attempt.timeout``
        for callees that accept a timeout (e.g. ``future.result``);
        timeouts they raise are retried like any other failure.
    retryable:
        Predicate deciding whether an exception is worth another try.
        Defaults to every ``Exception`` (never ``KeyboardInterrupt`` /
        ``SystemExit``).
    sleep:
        Injectable sleeper, for tests that assert the schedule.
    on_retry:
        Optional hook ``(exception, attempt_number)`` invoked before
        each backoff sleep — callers keep their own retry telemetry.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    attempt_timeout: Optional[float] = None
    retryable: Callable[[BaseException], bool] = _default_retryable
    sleep: Callable[[float], None] = time.sleep
    on_retry: Optional[Callable[[BaseException, int], None]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, failed_attempt: int) -> float:
        """Backoff in seconds after the Nth (1-based) failed attempt."""
        raw = min(
            self.base_delay * self.multiplier ** (failed_attempt - 1),
            self.max_delay,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = random.Random(self.seed) if self.seed is not None else random
        return raw * (1.0 - self.jitter * rng.random())

    def attempts(self, name: str = "call"):
        """Yield :class:`Attempt` context managers until one succeeds."""
        state = _RetryState()
        for number in range(1, self.max_attempts + 1):
            yield Attempt(self, number, name, state)
            if state.succeeded:
                return

    def call(self, fn: Callable[..., T], *args, name: Optional[str] = None, **kwargs) -> T:
        """Run ``fn`` under this policy and return its result."""
        label = name or getattr(fn, "__name__", "call")
        result: List[T] = []
        for attempt in self.attempts(label):
            with attempt:
                result.append(fn(*args, **kwargs))
        return result[-1]

    def retrying(self, name: Optional[str] = None):
        """Decorator form: ``@policy.retrying()``."""

        def decorate(fn: Callable[..., T]) -> Callable[..., T]:
            label = name or getattr(fn, "__name__", "call")

            def wrapper(*args, **kwargs) -> T:
                return self.call(fn, *args, name=label, **kwargs)

            wrapper.__name__ = getattr(fn, "__name__", "wrapper")
            wrapper.__doc__ = fn.__doc__
            wrapper.__wrapped__ = fn
            return wrapper

        return decorate
