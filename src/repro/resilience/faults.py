"""Unified fault injection for chaos testing the pipeline.

Every deliberate failure the test suite and the CI chaos-smoke job can
inject lives here, behind one environment-variable namespace
(``REPRO_FAULT_*``) and one programmatic entry point
(:func:`injected`).  Production code never *sets* these knobs; it only
calls the tiny check helpers (:func:`extract_fail`,
:func:`parse_corruptor`, :func:`stage_call`, :func:`io_point`) at the
points where real-world faults would strike, so chaos tests exercise
the exact degradation paths an operator would hit.

Environment knobs (all unset by default — zero injected faults):

``REPRO_FAULT_EXTRACT_FAIL_SHARDS``
    Comma-separated shard indices that raise inside the extraction
    worker on every attempt.  (Alias: ``REPRO_EXTRACT_FAIL_SHARDS``.)
``REPRO_FAULT_EXTRACT_SHARD_DELAY``
    Seconds each extraction shard sleeps before computing, so
    kill-and-resume tests can interrupt a run deterministically.
    (Alias: ``REPRO_EXTRACT_SHARD_DELAY``.)
``REPRO_FAULT_EXTRACT_KILL_ONCE``
    Path to a sentinel file.  The first extraction worker to claim the
    sentinel (atomically, by deleting it) hard-exits its process —
    simulating an OOM-kill that breaks the whole pool.  Exactly one
    kill per sentinel, so retried waves then succeed.
``REPRO_FAULT_PARSE_CORRUPT_RATE``
    Probability in [0, 1] that a CSV row read by
    :func:`repro.flows.argus.read_flows` is mangled before parsing.
``REPRO_FAULT_PARSE_SEED``
    RNG seed for the corruption choice (default 0, deterministic).
``REPRO_FAULT_STAGE_FAIL``
    ``stage:N[,stage:N…]`` — the Nth guarded call of that stage raises
    :class:`InjectedFault` (1-based, counted process-wide; see
    :func:`stage_call`).  Because the counter keeps advancing, a
    declared fallback retrying the stage succeeds — failures are
    one-shot per N.
``REPRO_FAULT_IO_ERRORS``
    Comma-separated I/O tags (``checkpoint``, ``manifest``,
    ``dead-letter``, ``verdict-log``, ``segment``, ``store-manifest``,
    ``store-read``) whose I/O raises ``OSError``.
``REPRO_FAULT_EMD_PRUNE_FAIL``
    Any truthy value makes every build of the θ_hm candidate-pruning
    index (:mod:`repro.stats.emdindex`) raise :class:`InjectedFault`,
    so chaos tests exercise the ``pruned`` → ``parallel`` rung of the
    θ_hm backend ladder.
``REPRO_FAULT_IO_DELAY``
    Seconds of added latency at every tagged I/O point.
``REPRO_FAULT_SERVE_WORKER_EXIT_ONCE``
    Path to a sentinel file.  The first :mod:`repro.serve` detection
    worker to claim the sentinel (atomically, by deleting it)
    hard-exits after its next processed batch — modelling an OOM-kill
    of a resident worker so recovery tests exercise the coordinator's
    restart-and-replay path.  Exactly one death per sentinel.
``REPRO_FAULT_SERVE_COORD_EXIT_ONCE``
    Path to a sentinel file.  The *coordinator* process claims it at
    the nastiest instant of the ingest path — after a chunk's rows are
    durably cut into the shard spools but before the chunk record
    reaches the coordinator log — and hard-exits, so failover tests
    exercise promotion's orphan-segment reconciliation and the client
    library's idempotent resend.  Exactly one death per sentinel.
    Never set this in an in-process test: the exit kills the host
    process (it is meant for subprocess soaks).
``REPRO_FAULT_SERVE_LEASE_STALL``
    Path to a sentinel file.  The coordinator lease keeper that claims
    it stops renewing its heartbeat for the number of seconds written
    in the file (empty file = long enough to guarantee expiry), so the
    warm standby takes the lease over while the old primary is still
    alive — the split-brain drill.  The stalled primary must detect
    the fencing epoch moved on and step down.  One stall per sentinel.

The old ``REPRO_EXTRACT_*`` names from the first parallel-extraction
release keep working as documented aliases; the ``REPRO_FAULT_*`` name
wins when both are set.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "InjectedFault",
    "extract_fail_shards",
    "extract_shard_delay",
    "extract_fail",
    "extract_kill_once",
    "serve_worker_exit_once",
    "serve_coord_exit_once",
    "serve_lease_stall",
    "parse_corrupt_rate",
    "parse_corruptor",
    "stage_call",
    "reset_stage_calls",
    "io_point",
    "prune_point",
    "injected",
]

#: (canonical name, legacy alias or None) for every knob.
_ALIASES: Mapping[str, Optional[str]] = {
    "REPRO_FAULT_EXTRACT_FAIL_SHARDS": "REPRO_EXTRACT_FAIL_SHARDS",
    "REPRO_FAULT_EXTRACT_SHARD_DELAY": "REPRO_EXTRACT_SHARD_DELAY",
    "REPRO_FAULT_EXTRACT_KILL_ONCE": None,
    "REPRO_FAULT_PARSE_CORRUPT_RATE": None,
    "REPRO_FAULT_PARSE_SEED": None,
    "REPRO_FAULT_STAGE_FAIL": None,
    "REPRO_FAULT_IO_ERRORS": None,
    "REPRO_FAULT_IO_DELAY": None,
    "REPRO_FAULT_EMD_PRUNE_FAIL": None,
    "REPRO_FAULT_SERVE_WORKER_EXIT_ONCE": None,
    "REPRO_FAULT_SERVE_COORD_EXIT_ONCE": None,
    "REPRO_FAULT_SERVE_LEASE_STALL": None,
}


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault-injection layer."""


def _get(name: str) -> Optional[str]:
    """The knob's value, honouring the legacy alias."""
    value = os.environ.get(name)
    if value:
        return value
    alias = _ALIASES.get(name)
    if alias:
        value = os.environ.get(alias)
        if value:
            return value
    return None


# ----------------------------------------------------------------------
# Extraction faults (read in the worker process)
# ----------------------------------------------------------------------
def extract_fail_shards() -> frozenset:
    """Shard indices configured to fail, as a frozen set of ints."""
    raw = _get("REPRO_FAULT_EXTRACT_FAIL_SHARDS")
    if not raw:
        return frozenset()
    return frozenset(int(part) for part in raw.split(",") if part.strip())


def extract_shard_delay() -> float:
    """Per-shard injected latency in seconds (0.0 = none)."""
    raw = _get("REPRO_FAULT_EXTRACT_SHARD_DELAY")
    return float(raw) if raw else 0.0


def extract_fail(index: int) -> None:
    """Raise :class:`InjectedFault` if shard ``index`` is marked to fail."""
    if index in extract_fail_shards():
        raise InjectedFault(f"injected fault in shard {index}")


def extract_kill_once() -> None:
    """Hard-exit this process if the kill-once sentinel can be claimed.

    The sentinel file is deleted *before* exiting, so among racing
    workers exactly one dies — the others find the sentinel gone.
    ``os._exit`` (not ``sys.exit``) models a SIGKILL/OOM death: no
    cleanup handlers run and the pool sees a broken worker.
    """
    sentinel = _get("REPRO_FAULT_EXTRACT_KILL_ONCE")
    if not sentinel:
        return
    try:
        os.remove(sentinel)
    except OSError:
        return  # already claimed (or never created): nobody else dies
    os._exit(1)


def serve_worker_exit_once() -> None:
    """Hard-exit this serve worker if the exit-once sentinel is claimable.

    Same claim protocol as :func:`extract_kill_once` (delete the
    sentinel, then ``os._exit``), but on a separate knob so a chaos run
    can kill a resident detection worker without also killing the
    extraction pool the coordinator may be driving at the same moment.
    """
    sentinel = _get("REPRO_FAULT_SERVE_WORKER_EXIT_ONCE")
    if not sentinel:
        return
    try:
        os.remove(sentinel)
    except OSError:
        return  # already claimed (or never created): nobody else dies
    os._exit(1)


def serve_coord_exit_once() -> None:
    """Hard-exit the serve *coordinator* if its sentinel is claimable.

    The coordinator calls this in the ingest path after a chunk's rows
    are durably cut into the shard spools but *before* the chunk record
    is journaled — the exact crash window promotion's orphan-segment
    reconciliation exists for.  ``os._exit`` models a SIGKILL: the
    unacked client sees a dead connection and must resend.  Only ever
    set this for a subprocess soak; in-process it kills the test
    runner.
    """
    sentinel = _get("REPRO_FAULT_SERVE_COORD_EXIT_ONCE")
    if not sentinel:
        return
    try:
        os.remove(sentinel)
    except OSError:
        return  # already claimed (or never created): nobody dies
    os._exit(1)


def serve_lease_stall() -> Optional[float]:
    """Claim the lease-stall sentinel; return the stall in seconds.

    Returns ``None`` when the knob is unset or the sentinel was already
    claimed.  The sentinel file's content, if parseable as a float, is
    the stall duration; an empty file returns ``0.0`` and the caller
    (the lease keeper) substitutes a stall long enough to guarantee
    lease expiry.  One stall per sentinel, claimed by deleting it —
    the same protocol as every ``*_ONCE`` knob.
    """
    sentinel = _get("REPRO_FAULT_SERVE_LEASE_STALL")
    if not sentinel:
        return None
    try:
        with open(sentinel, encoding="utf-8") as fh:
            raw = fh.read().strip()
        os.remove(sentinel)
    except OSError:
        return None  # already claimed (or never created): no stall
    try:
        return float(raw) if raw else 0.0
    except ValueError:
        return 0.0


# ----------------------------------------------------------------------
# Parse corruption
# ----------------------------------------------------------------------
def parse_corrupt_rate() -> float:
    """Configured row-corruption probability (0.0 = off)."""
    raw = _get("REPRO_FAULT_PARSE_CORRUPT_RATE")
    return float(raw) if raw else 0.0


def parse_corruptor() -> Optional[Callable[[List[str]], List[str]]]:
    """A row-mangling callable, or ``None`` when corruption is off.

    Call once per read session: the returned closure owns a seeded RNG
    so repeated reads corrupt the same rows the same way (deterministic
    chaos runs).  Mangling alternates between truncating the row and
    poisoning a numeric field — both must land in the quarantine path.
    """
    rate = parse_corrupt_rate()
    if rate <= 0.0:
        return None
    seed = int(_get("REPRO_FAULT_PARSE_SEED") or 0)
    rng = random.Random(seed)

    def corrupt(row: List[str]) -> List[str]:
        if rng.random() >= rate:
            return row
        if rng.random() < 0.5:
            return row[: max(1, len(row) // 2)]
        mangled = list(row)
        mangled[min(4, len(mangled) - 1)] = "\x00garbage"
        return mangled

    return corrupt


# ----------------------------------------------------------------------
# Stage failures
# ----------------------------------------------------------------------
_STAGE_LOCK = threading.Lock()
_STAGE_CALLS: Dict[str, int] = {}


def _stage_fail_plan() -> Dict[str, int]:
    raw = _get("REPRO_FAULT_STAGE_FAIL")
    if not raw:
        return {}
    plan: Dict[str, int] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        stage, _, nth = part.partition(":")
        plan[stage] = int(nth) if nth else 1
    return plan


def stage_call(stage: str) -> None:
    """Count one guarded call of ``stage``; raise if this is the Nth.

    The counter advances on every call, so after the injected failure
    the *next* attempt of the same stage (a declared fallback, a
    retry) passes — injected stage faults are transient by
    construction, which is exactly the failure mode graceful
    degradation is for.
    """
    plan = _stage_fail_plan()
    if not plan:
        return
    with _STAGE_LOCK:
        _STAGE_CALLS[stage] = _STAGE_CALLS.get(stage, 0) + 1
        count = _STAGE_CALLS[stage]
    if plan.get(stage) == count:
        raise InjectedFault(f"injected failure in stage {stage!r} (call {count})")


def reset_stage_calls() -> None:
    """Zero the per-stage call counters (test isolation)."""
    with _STAGE_LOCK:
        _STAGE_CALLS.clear()


# ----------------------------------------------------------------------
# I/O faults
# ----------------------------------------------------------------------
def io_point(tag: str) -> None:
    """Apply configured latency/errors at a tagged I/O site.

    Raises ``OSError`` (not :class:`InjectedFault`) when the tag is in
    ``REPRO_FAULT_IO_ERRORS``, so callers exercise the same handling
    path a real disk failure would take.
    """
    delay = _get("REPRO_FAULT_IO_DELAY")
    if delay:
        import time

        time.sleep(float(delay))
    raw = _get("REPRO_FAULT_IO_ERRORS")
    if raw and tag in {part.strip() for part in raw.split(",") if part.strip()}:
        raise OSError(f"injected I/O error at {tag!r}")


# ----------------------------------------------------------------------
# θ_hm pruning-index faults
# ----------------------------------------------------------------------
def prune_point() -> None:
    """Raise :class:`InjectedFault` if the pruning index is marked to fail.

    Called at the top of every candidate-pruning index build
    (:mod:`repro.stats.emdindex`), before any bound is computed — the
    place a real-world pathology (a degenerate embedding grid, an
    adversarial population) would surface.  The failure propagates out
    of the pruned θ_hm backend so the StageGuard ladder steps down to
    ``parallel``; it is *not* absorbed by the index's own
    certification fallback, which only handles declared conditions.
    """
    if _get("REPRO_FAULT_EMD_PRUNE_FAIL"):
        raise InjectedFault("injected fault in the EMD pruning index")


# ----------------------------------------------------------------------
# Programmatic installation
# ----------------------------------------------------------------------
_KNOB_FOR_KWARG: Mapping[str, str] = {
    "extract_fail_shards": "REPRO_FAULT_EXTRACT_FAIL_SHARDS",
    "extract_shard_delay": "REPRO_FAULT_EXTRACT_SHARD_DELAY",
    "extract_kill_once": "REPRO_FAULT_EXTRACT_KILL_ONCE",
    "parse_corrupt_rate": "REPRO_FAULT_PARSE_CORRUPT_RATE",
    "parse_seed": "REPRO_FAULT_PARSE_SEED",
    "stage_fail": "REPRO_FAULT_STAGE_FAIL",
    "io_errors": "REPRO_FAULT_IO_ERRORS",
    "io_delay": "REPRO_FAULT_IO_DELAY",
    "emd_prune_fail": "REPRO_FAULT_EMD_PRUNE_FAIL",
    "serve_worker_exit_once": "REPRO_FAULT_SERVE_WORKER_EXIT_ONCE",
    "serve_coord_exit_once": "REPRO_FAULT_SERVE_COORD_EXIT_ONCE",
    "serve_lease_stall": "REPRO_FAULT_SERVE_LEASE_STALL",
}


def _encode(value: object) -> str:
    if isinstance(value, Mapping):
        return ",".join(f"{k}:{v}" for k, v in sorted(value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return ",".join(str(v) for v in sorted(value))
    return str(value)


@contextmanager
def injected(**knobs: object):
    """Install faults for the duration of a ``with`` block.

    Keyword names mirror the env knobs (``extract_fail_shards=[1, 3]``,
    ``parse_corrupt_rate=0.01``, ``stage_fail={"theta_hm": 1}``,
    ``io_errors=["checkpoint"]``, …).  Values are written to the
    canonical ``REPRO_FAULT_*`` environment variables — the environment
    is the one channel that reaches forked *and* spawned worker
    processes alike — and restored on exit.  Stage-call counters are
    reset on entry and exit so every block starts from call zero.
    """
    unknown = set(knobs) - set(_KNOB_FOR_KWARG)
    if unknown:
        raise TypeError(f"unknown fault knobs: {sorted(unknown)}")
    saved: List[Tuple[str, Optional[str]]] = []
    reset_stage_calls()
    try:
        for kwarg, value in knobs.items():
            name = _KNOB_FOR_KWARG[kwarg]
            saved.append((name, os.environ.get(name)))
            os.environ[name] = _encode(value)
        yield
    finally:
        for name, previous in reversed(saved):
            if previous is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous
        reset_stage_calls()
