"""Stage supervision with declared, loudly-reported degradation.

A long detection run should survive the failure of an *optimisation* —
a crashed worker pool, a vectorized kernel hitting a pathological
input, a checkpoint directory going read-only — by stepping down to a
slower-but-equivalent mode, never by silently producing different
results and never by dying.  :class:`StageGuard` encodes that policy:
each guarded stage declares an ordered ladder of modes, the guard runs
them first-to-last, and every step down is recorded as a
:class:`Degradation` and emitted three ways at once (a WARNING log
line, the ``repro_stage_degradations_total`` counter, and a structured
``degradation`` span event for JSONL sinks) so a fallback can never
pass unnoticed.

With ``enabled=False`` (the ``--no-degrade`` CLI flag) the guard is a
transparent pass-through: the first failure propagates, which is what
you want under a debugger or in a correctness bisect.

The θ_hm backend ladder used by both the batch pipeline and the online
detector lives here too (:func:`hm_backend_ladder`): ``pruned`` steps
down through ``parallel`` and ``vectorized`` to ``loop``; ``auto`` and
``vectorized`` step straight to ``loop`` — the backend of last resort
with no pruning index, no pool and no numpy broadcasting to fail.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from ..obs.tracing import span
from . import faults

__all__ = ["Degradation", "StageGuard", "hm_backend_ladder"]

T = TypeVar("T")

logger = get_logger("resilience.guard")

_DEGRADATIONS = obs_metrics.counter(
    "repro_stage_degradations_total",
    "Stage fallbacks applied by StageGuard",
    labels=("stage", "to_mode"),
)

#: θ_hm pairwise-EMD backend step-downs (every backend yields the same
#: clustering result, so stepping down changes speed, never suspects).
_HM_STEP_DOWN: Dict[str, str] = {
    "pruned": "parallel",
    "parallel": "vectorized",
    "vectorized": "loop",
    "auto": "loop",
}


def hm_backend_ladder(backend: str) -> Tuple[str, ...]:
    """The configured backend followed by its fallbacks, best first."""
    ladder = [backend]
    while backend in _HM_STEP_DOWN:
        backend = _HM_STEP_DOWN[backend]
        ladder.append(backend)
    return tuple(ladder)


@dataclass(frozen=True)
class Degradation:
    """One recorded step down a stage's fallback ladder."""

    stage: str
    from_mode: str
    to_mode: str
    error: str

    def describe(self) -> str:
        return (
            f"{self.stage}: {self.from_mode} failed "
            f"({self.error}); degraded to {self.to_mode}"
        )


class StageGuard:
    """Run pipeline stages down a declared fallback ladder.

    One guard instance accompanies one run (a ``find_plotters`` call,
    an :class:`~repro.detection.incremental.OnlineDetector` lifetime);
    its :attr:`degradations` list *is* the run's resilience summary.
    """

    def __init__(self, *, enabled: bool = True, name: str = "pipeline") -> None:
        self.enabled = enabled
        self.name = name
        self._degradations: List[Degradation] = []

    @property
    def degradations(self) -> Tuple[Degradation, ...]:
        """Every degradation recorded so far, in order."""
        return tuple(self._degradations)

    @property
    def degraded(self) -> bool:
        return bool(self._degradations)

    def note(self, stage: str, from_mode: str, to_mode: str, error: str) -> None:
        """Record one degradation and report it on every channel.

        Also the callback hook for components that degrade internally
        (e.g. the parallel extractor disabling a failing checkpoint
        directory) — they report here so the run summary stays
        complete.
        """
        event = Degradation(
            stage=stage, from_mode=from_mode, to_mode=to_mode, error=error
        )
        self._degradations.append(event)
        logger.warning("DEGRADED %s", event.describe())
        _DEGRADATIONS.inc(stage=stage, to_mode=to_mode)
        # A zero-duration span is the structured-event form: it reaches
        # every registered JSONL sink with no extra export machinery.
        with span("degradation", **asdict(event)):
            pass

    def run(
        self,
        stage: str,
        attempts: Sequence[Tuple[str, Callable[[], T]]],
    ) -> T:
        """Run ``stage`` through its ladder of ``(mode, thunk)`` attempts.

        Returns the first thunk's result that succeeds.  A failure with
        a next rung available is recorded via :meth:`note` and the
        ladder continues; the last rung's failure (or any failure while
        the guard is disabled) propagates.  Each attempt passes through
        :func:`repro.resilience.faults.stage_call`, the chaos-test
        injection point for stage failures.
        """
        if not attempts:
            raise ValueError(f"stage {stage!r} declared no attempts")
        last = len(attempts) - 1
        for position, (mode, thunk) in enumerate(attempts):
            try:
                faults.stage_call(stage)
                return thunk()
            except Exception as exc:
                if not self.enabled or position == last:
                    raise
                next_mode = attempts[position + 1][0]
                self.note(
                    stage, mode, next_mode, f"{type(exc).__name__}: {exc}"
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def breaker(
        self,
        stage: str,
        *,
        max_failures: int,
        window: Optional[float] = None,
        from_mode: str = "retry",
        to_mode: str = "quarantined",
        name: Optional[str] = None,
    ):
        """A :class:`~repro.resilience.breaker.CircuitBreaker` rung.

        The breaker sits *below* the ladder's last resort: it counts
        failures of an operation the caller keeps retrying outside the
        guard (a supervisor's worker respawns), and when it opens, the
        caller must degrade to ``to_mode`` instead of retrying again.
        Opening is reported through :meth:`note`, so a quarantine shows
        up in the run summary, the degradation counter, the log and the
        span channel exactly like a ladder step-down.
        """
        from .breaker import CircuitBreaker

        def on_open(breaker: CircuitBreaker) -> None:
            self.note(
                stage,
                from_mode,
                to_mode,
                f"circuit breaker {breaker.name} opened after "
                f"{breaker.max_failures} failure(s)",
            )

        return CircuitBreaker(
            name or stage,
            max_failures=max_failures,
            window=window,
            on_open=on_open,
        )

    def summary(self) -> Dict[str, object]:
        """Plain-dict run summary, embeddable in reports and JSONL."""
        return {
            "name": self.name,
            "degraded": self.degraded,
            "degradations": [asdict(d) for d in self._degradations],
        }
