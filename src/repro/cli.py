"""``repro`` — the umbrella command.

The repo grew one CLI per plane (``repro-experiments``,
``repro-datasets``, ``repro-obs``); ``repro`` is the front door that
newer subsystems hang their subcommands on:

``repro serve``
    The resident detection service (:mod:`repro.serve.cli`).
``repro query``
    The indexed analyst query plane (:mod:`repro.query.cli`).

Arguments after the subcommand pass through untouched, so
``repro serve --help`` is the subcommand's own help.
"""

from __future__ import annotations

import sys
from typing import List, Optional

__all__ = ["main"]

_USAGE = """\
usage: repro <command> [options]

commands:
  serve    run the resident Trader/Plotter detection service
  query    ask the indexed query plane about hosts and verdicts

Run 'repro <command> --help' for command options.
"""


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "serve":
        from .serve.cli import main as serve_main

        return serve_main(rest)
    if command == "query":
        from .query.cli import main as query_main

        return query_main(rest)
    print(f"repro: unknown command {command!r}\n\n{_USAGE}", file=sys.stderr, end="")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
