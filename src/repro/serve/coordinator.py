"""The serve coordinator: ingest, supervision, drain, rebalance.

One :class:`ServeCoordinator` owns everything durable and everything
shared; workers are disposable.  The invariants it maintains:

**Spool-before-queue.**  ``ingest`` appends every accepted flow to its
shard's segment spool *before* putting it on the worker's inbox, under
the topology lock.  A worker can die at any instant without losing a
row: its replacement replays the spool from the last finalised window
boundary.  The writer's buffered tail lives in the coordinator
process, so not even an un-cut segment is exposed to worker death —
the spool is cut before every respawn.

**One verdict per window.**  Workers ship finalised-window verdicts;
the coordinator keys them by ``(epoch, shard, grid-index)`` on the
absolute window grid (``window_origin``) and accepts the first,
counting the rest as duplicates — restart replay can therefore never
double-report a window.

**Drain = batch.**  Per-shard online verdicts cannot equal a global
batch run (the pipeline's percentile thresholds are population-wide),
so the drained verdict is computed by re-scoring the *union* of every
epoch's shard spools with the exact batch pipeline
(:func:`~repro.detection.pipeline.find_plotters`) under the service's
own :class:`~repro.detection.pipeline.PipelineConfig`.  The storage
projection is lossless for features (pinned since PR 5), so this is
bit-identical to a batch run over the same flows.

**Rebalance is an epoch barrier.**  Changing the shard count finalises
every in-flight window (synchronised early tumble on the shared grid),
retires the workers, and starts a fresh epoch with new spools and a
new :class:`~repro.serve.sharding.ShardMap`; old epochs' spools stay
on disk, where the drain rescore — which is shard-agnostic — still
unions them in.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..detection.pipeline import PipelineResult, find_plotters
from ..flows.argus import loads_report
from ..flows.store import FlowStore
from ..obs import metrics as obs_metrics
from ..obs.http import MetricsServer
from ..obs.ledger import suspects_checksum
from ..obs.logconf import get_logger
from ..resilience import atomic_write_text
from ..storage import SegmentStore
from ..storage.format import StorageError
from .config import ServeConfig
from .sharding import ShardMap
from .worker import row_of, worker_main

__all__ = ["ServeCoordinator"]

logger = get_logger("serve.coordinator")

_INGEST_ROWS = obs_metrics.counter(
    "repro_serve_ingest_rows_total",
    "Flow rows accepted by the ingest endpoint",
)
_INGEST_REQUESTS = obs_metrics.counter(
    "repro_serve_ingest_requests_total",
    "POST /ingest requests handled",
)
_VERDICTS = obs_metrics.counter(
    "repro_serve_verdicts_total",
    "Finalised-window verdicts received from workers, by outcome",
    labels=("result",),
)
_RESTARTS = obs_metrics.counter(
    "repro_serve_worker_restarts_total",
    "Worker processes restarted after an unexpected death",
)
_WORKERS = obs_metrics.gauge(
    "repro_serve_workers", "Live detection worker processes"
)
_EPOCH = obs_metrics.gauge(
    "repro_serve_epoch", "Current shard-topology epoch"
)
_SPOOLED = obs_metrics.gauge(
    "repro_serve_spooled_rows", "Rows ingested into the shard spools"
)


class _Worker:
    """One shard's current worker incarnation (coordinator-side)."""

    def __init__(
        self,
        shard: int,
        incarnation: int,
        epoch: int,
        process,
        inbox,
        outbox,
        spool_dir: Path,
    ) -> None:
        self.shard = shard
        self.incarnation = incarnation
        self.epoch = epoch
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.spool_dir = spool_dir
        self.retired = False


class ServeCoordinator:
    """Shard hosts across resident detection workers; own the spools."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.root = Path(config.spool_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.epoch = 0
        self.shard_map = ShardMap(config.n_shards)
        self.restarts = 0
        self.rows_ingested = 0
        self.server: Optional[MetricsServer] = None
        #: Set by ``POST /drain`` or a signal handler; whoever runs the
        #: service (the CLI main loop, a test) waits on it and then
        #: calls :meth:`drain` — the HTTP handler itself cannot, since
        #: draining tears the server down.
        self.drain_requested = threading.Event()

        # _lock orders topology + spool writes (ingest, restart,
        # rebalance, drain).  _state_lock guards the verdict/reply
        # state that the supervisor thread and HTTP threads both touch;
        # it is always taken after _lock, never around a blocking call.
        self._lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._mp = mp.get_context("spawn")
        self._workers: Dict[int, _Worker] = {}
        self._writers: Dict[int, object] = {}
        self._spool_dirs: List[Path] = []
        self._hosts_per_shard: Dict[int, Set[str]] = defaultdict(set)
        self._accepted: Dict[Tuple[int, int, int], Dict] = {}
        self._last_final_end: Dict[Tuple[int, int], float] = {}
        self._duplicates = 0
        self._seq = 0
        self._eval_replies: Dict[int, Dict[int, Dict]] = {}
        self._reply_cond = threading.Condition(self._state_lock)
        self._draining = threading.Event()
        self._stop_supervisor = threading.Event()
        self._supervisor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the first epoch's workers and the control plane."""
        from .http import build_routes

        obs_metrics.enable()
        _EPOCH.set(self.epoch)
        with self._lock:
            self._spawn_epoch()
        self.server = MetricsServer(
            port=self.config.port,
            host=self.config.host,
            routes=build_routes(self),
            extra_summary=self._summary_state,
        )
        self._supervisor = threading.Thread(
            target=self._supervise,
            name="repro-serve-supervisor",
            daemon=True,
        )
        self._supervisor.start()
        logger.info(
            "serve coordinator up: %d shard(s), window=%ss, url=%s",
            self.shard_map.n_shards,
            self.config.window,
            self.server.url,
        )

    def close(self) -> None:
        """Stop the control plane, supervisor and workers (idempotent).

        A drained coordinator's workers are already gone; closing an
        undrained one stops them without finalising — ``close`` is the
        "just shut it down" path, :meth:`drain` the graceful one.
        """
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        with self._lock:
            if any(not worker.retired for worker in self._workers.values()):
                self._draining.set()
                self._stop_workers(finalize=False)
        if self.server is not None:
            self.server.close()
            self.server = None

    def __enter__(self) -> "ServeCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def url(self) -> Optional[str]:
        return self.server.url if self.server is not None else None

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _shard_dir(self, shard: int) -> Path:
        return self.root / f"epoch-{self.epoch:03d}" / f"shard-{shard:02d}"

    def _spawn_epoch(self) -> None:
        """Create this epoch's spools and one worker per shard."""
        for shard in range(self.shard_map.n_shards):
            spool_dir = self._shard_dir(shard)
            store = SegmentStore.create(spool_dir, exist_ok=True)
            writer_kwargs = {}
            if self.config.segment_rows is not None:
                writer_kwargs["segment_rows"] = self.config.segment_rows
            self._writers[shard] = store.writer(**writer_kwargs)
            self._spool_dirs.append(spool_dir)
            self._spawn_worker(shard, incarnation=0, replay_t0=None)

    def _spawn_worker(
        self, shard: int, incarnation: int, replay_t0: Optional[float]
    ) -> None:
        inbox = self._mp.Queue()
        outbox = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(
                shard,
                incarnation,
                self.config,
                inbox,
                outbox,
                str(self._shard_dir(shard)),
                replay_t0,
            ),
            name=f"repro-serve-worker-{shard}.{incarnation}",
            daemon=True,
        )
        process.start()
        self._workers[shard] = _Worker(
            shard,
            incarnation,
            self.epoch,
            process,
            inbox,
            outbox,
            self._shard_dir(shard),
        )
        _WORKERS.set(len(self._workers))

    def _restart_worker(self, worker: _Worker) -> None:
        """Replace a dead worker (caller holds ``_lock``)."""
        current = self._workers.get(worker.shard)
        if current is not worker or worker.retired:
            return  # already replaced (or deliberately retired)
        self._drain_outbox(worker)  # salvage shipped-but-unread messages
        worker.process.join(timeout=1.0)
        worker.retired = True
        # Flush the writer's buffered tail so the replacement's replay
        # sees every row ever accepted for this shard.
        self._writers[worker.shard].cut()
        replay_t0 = self._last_final_end.get((self.epoch, worker.shard))
        logger.warning(
            "worker for shard %d died (incarnation %d); restarting "
            "with replay from t0=%s",
            worker.shard,
            worker.incarnation,
            replay_t0,
        )
        self._spawn_worker(worker.shard, worker.incarnation + 1, replay_t0)
        self.restarts += 1
        _RESTARTS.inc()

    def _stop_workers(self, finalize: bool) -> None:
        """Finalise + stop every worker and reap it (caller holds lock)."""
        for worker in self._workers.values():
            try:
                if finalize:
                    self._seq += 1
                    worker.inbox.put(("finalize", self._seq, None))
                self._seq += 1
                worker.inbox.put(("stop", self._seq))
            except (OSError, ValueError):  # queue already broken: reap below
                pass
        deadline = time.monotonic() + 30.0
        for worker in self._workers.values():
            worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - last resort
                logger.warning(
                    "worker %d.%d did not stop; terminating",
                    worker.shard,
                    worker.incarnation,
                )
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            self._drain_outbox(worker)
            worker.retired = True
        for writer in self._writers.values():
            writer.cut()

    def rebalance(self, n_shards: int) -> Dict[str, object]:
        """Change the shard count: epoch barrier + fresh workers.

        Every in-flight window is finalised first (a synchronised early
        tumble — all workers share the absolute window grid, so the
        finalised windows line up), then the epoch increments and new
        spools/workers start.  Old spools are left in place for the
        drain rescore.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        with self._lock:
            if self._draining.is_set():
                raise RuntimeError("cannot rebalance while draining")
            previous = self.shard_map.n_shards
            self._stop_workers(finalize=True)
            self._workers = {}
            self._writers = {}
            self._hosts_per_shard = defaultdict(set)
            self.epoch += 1
            self.shard_map = ShardMap(n_shards)
            _EPOCH.set(self.epoch)
            self._spawn_epoch()
        logger.info(
            "rebalanced %d -> %d shard(s); now epoch %d",
            previous,
            n_shards,
            self.epoch,
        )
        return {
            "epoch": self.epoch,
            "n_shards": n_shards,
            "previous_n_shards": previous,
        }

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop_supervisor.is_set():
            for worker in list(self._workers.values()):
                self._drain_outbox(worker)
                if (
                    not worker.retired
                    and not worker.process.is_alive()
                    and not self._draining.is_set()
                ):
                    with self._lock:
                        self._restart_worker(worker)
            self._stop_supervisor.wait(0.05)

    def _drain_outbox(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.outbox.get_nowait()
            except queue_mod.Empty:
                return
            except (EOFError, OSError):  # queue broken by a killed writer
                return
            try:
                self._handle_message(worker, message)
            except Exception:  # pragma: no cover - never kill supervision
                logger.exception("bad worker message from shard %d", worker.shard)

    def _handle_message(self, worker: _Worker, message) -> None:
        kind, shard, incarnation, seq, payload, finals, delta = message
        if delta:
            obs_metrics.get_registry().merge_delta(delta)
        for verdict in finals:
            self._accept_final(worker.epoch, shard, verdict)
        if kind == "evaluated":
            with self._reply_cond:
                self._eval_replies.setdefault(seq, {})[shard] = payload
                self._reply_cond.notify_all()

    def _grid_index(self, evaluated_at: float) -> int:
        """The absolute window-grid slot a finalised verdict ends."""
        return round(
            (evaluated_at - self.config.window_origin) / self.config.window
        )

    def _accept_final(self, epoch: int, shard: int, verdict: Dict) -> None:
        end = float(verdict["evaluated_at"])
        key = (epoch, shard, self._grid_index(end))
        with self._state_lock:
            if key in self._accepted:
                self._duplicates += 1
                _VERDICTS.inc(result="duplicate")
                return
            self._accepted[key] = verdict
            previous = self._last_final_end.get((epoch, shard), float("-inf"))
            self._last_final_end[(epoch, shard)] = max(previous, end)
        _VERDICTS.inc(result="accepted")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, text: str) -> Dict[str, object]:
        """Parse an Argus-CSV payload, spool it, forward it to workers."""
        if self._draining.is_set():
            raise RuntimeError("service is draining; ingest is closed")
        flows, report = loads_report(text, errors=self.config.on_parse_error)
        batches: Dict[int, List] = defaultdict(list)
        with self._lock:
            for flow in flows:
                shard = self.shard_map.shard_of(flow.src)
                self._writers[shard].add(flow)
                self._hosts_per_shard[shard].add(flow.src)
                batches[shard].append(row_of(flow))
            for shard, rows in batches.items():
                self._seq += 1
                self._workers[shard].inbox.put(("flows", self._seq, rows))
            self.rows_ingested += len(flows)
            _SPOOLED.set(self.rows_ingested)
        _INGEST_REQUESTS.inc()
        _INGEST_ROWS.inc(len(flows))
        return {
            "rows_ok": len(flows),
            "rows_bad": report.rows_bad,
            "shards": {
                str(shard): len(rows) for shard, rows in sorted(batches.items())
            },
        }

    # ------------------------------------------------------------------
    # Live verdicts
    # ------------------------------------------------------------------
    def evaluate(self, timeout: float = 15.0) -> Dict[str, object]:
        """Score every shard's current window, without tumbling it."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            shards = list(self._workers)
            for worker in self._workers.values():
                worker.inbox.put(("evaluate", seq, None))
        deadline = time.monotonic() + timeout
        with self._reply_cond:
            while (
                len(self._eval_replies.get(seq, {})) < len(shards)
                and time.monotonic() < deadline
            ):
                self._reply_cond.wait(0.1)
            replies = self._eval_replies.pop(seq, {})
        live: Set[str] = set()
        for verdict in replies.values():
            live.update(verdict["suspects"])
        return {
            "shards": {str(s): replies.get(s) for s in sorted(shards)},
            "replied": sorted(replies),
            "suspects": sorted(live),
        }

    def verdicts_doc(self) -> Dict[str, object]:
        """Finalised-window verdicts and the cumulative suspect set."""
        with self._state_lock:
            items = sorted(self._accepted.items())
            duplicates = self._duplicates
        suspects: Set[str] = set()
        finalized = []
        for (epoch, shard, grid), verdict in items:
            suspects.update(verdict["suspects"])
            finalized.append(
                {"epoch": epoch, "shard": shard, "grid_window": grid, **verdict}
            )
        return {
            "finalized": finalized,
            "windows_finalized": len(finalized),
            "suspects": sorted(suspects),
            "suspects_count": len(suspects),
            "duplicate_verdicts": duplicates,
            "rows_ingested": self.rows_ingested,
        }

    def shards_doc(self) -> Dict[str, object]:
        """Topology and per-worker liveness (the recovery test's probe)."""
        with self._lock:
            workers = [
                {
                    "shard": worker.shard,
                    "incarnation": worker.incarnation,
                    "epoch": worker.epoch,
                    "pid": worker.process.pid,
                    "alive": worker.process.is_alive(),
                    "hosts": len(self._hosts_per_shard[worker.shard]),
                    "last_final_end": self._last_final_end.get(
                        (worker.epoch, worker.shard)
                    ),
                }
                for worker in sorted(
                    self._workers.values(), key=lambda w: w.shard
                )
            ]
        return {
            "epoch": self.epoch,
            "n_shards": self.shard_map.n_shards,
            "restarts": self.restarts,
            "draining": self.draining,
            "workers": workers,
        }

    def _summary_state(self) -> Dict[str, object]:
        with self._state_lock:
            windows = len(self._accepted)
        return {
            "epoch": self.epoch,
            "n_shards": self.shard_map.n_shards,
            "rows_ingested": self.rows_ingested,
            "windows_finalized": windows,
            "restarts": self.restarts,
            "draining": self.draining,
        }

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def _combined_store(self) -> FlowStore:
        """Every epoch's shard spools, unioned into one in-memory store."""
        combined = FlowStore()
        for spool_dir in self._spool_dirs:
            try:
                store = SegmentStore.open(spool_dir)
            except (StorageError, OSError):
                continue
            if store.total_rows == 0:
                continue
            combined.extend(store.view().records())
        return combined

    def drain(self) -> Tuple[PipelineResult, Dict[str, object]]:
        """SIGTERM path: finalise everything, batch-rescore the spools.

        Closes ingest, tumbles and stops every worker, cuts every
        spool, then runs :func:`find_plotters` over the union of all
        spooled rows under the service's pipeline config — producing
        the exact batch verdict for the service's whole lifetime of
        traffic.  Writes ``drain.json`` (suspects + order-independent
        checksum + funnel + service counters) and returns the pipeline
        result with the report.
        """
        self._draining.set()
        with self._lock:
            self._stop_workers(finalize=True)
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        # One final sweep: the supervisor is gone, so collect anything
        # the dying workers shipped after its last pass.
        for worker in self._workers.values():
            self._drain_outbox(worker)

        combined = self._combined_store()
        hosts = (
            None
            if self.config.internal_hosts is None
            else set(self.config.internal_hosts)
        )
        result = find_plotters(combined, hosts, self.config.pipeline)
        suspects = sorted(result.suspects)
        doc = self.verdicts_doc()
        report = {
            "suspects": suspects,
            "suspects_sha256": suspects_checksum(suspects),
            "funnel": result.funnel(),
            "rows_rescored": len(combined),
            "rows_ingested": self.rows_ingested,
            "windows_finalized": doc["windows_finalized"],
            "duplicate_verdicts": doc["duplicate_verdicts"],
            "restarts": self.restarts,
            "epochs": self.epoch + 1,
            "degradations": [str(d) for d in result.degradations],
        }
        atomic_write_text(
            self.root / "drain.json",
            json.dumps(report, indent=2, sort_keys=True) + "\n",
        )
        logger.info(
            "drained: %d rows rescored, %d suspect(s), checksum %s",
            len(combined),
            len(suspects),
            report["suspects_sha256"][:12],
        )
        return result, report
