"""The serve coordinator: ingest, supervision, drain, rebalance.

One :class:`ServeCoordinator` owns everything durable and everything
shared; workers are disposable.  The invariants it maintains:

**Spool-before-queue.**  ``ingest`` appends every accepted flow to its
shard's segment spool *before* putting it on the worker's inbox, under
the topology lock.  A worker can die at any instant without losing a
row: its replacement replays the spool from the last finalised window
boundary.  The writer's buffered tail lives in the coordinator
process, so not even an un-cut segment is exposed to worker death —
the spool is cut before every respawn.

**One verdict per window.**  Workers ship finalised-window verdicts;
the coordinator keys them by ``(epoch, shard, grid-index)`` on the
absolute window grid (``window_origin``) and accepts the first,
counting the rest as duplicates — restart replay can therefore never
double-report a window.

**Drain = batch.**  Per-shard online verdicts cannot equal a global
batch run (the pipeline's percentile thresholds are population-wide),
so the drained verdict is computed by re-scoring the *union* of every
epoch's shard spools with the exact batch pipeline
(:func:`~repro.detection.pipeline.find_plotters`) under the service's
own :class:`~repro.detection.pipeline.PipelineConfig`.  The storage
projection is lossless for features (pinned since PR 5), so this is
bit-identical to a batch run over the same flows.

**Rebalance is an epoch barrier.**  Changing the shard count finalises
every in-flight window (synchronised early tumble on the shared grid),
retires the workers, and starts a fresh epoch with new spools and a
new :class:`~repro.serve.sharding.ShardMap`; old epochs' spools stay
on disk, where the drain rescore — which is shard-agnostic — still
unions them in.

**The coordinator itself is now disposable.**  With durable acks (the
default) every acknowledged ingest chunk is segment-cut into its
spools and recorded in the coordinator log
(:mod:`repro.serve.journal`) *before* the HTTP 200, and every accepted
verdict and epoch barrier is journaled too.  ``start`` resumes from
that log: it rebuilds the dedupe set, the applied-chunk map and the
topology, enumerates every epoch's spools from disk, truncates any
spool suffix a crash left unjournaled (the owning chunk was never
acked; its client resends), and spawns workers replaying from the last
finalised window boundary — which is exactly what HA promotion
(:mod:`repro.serve.ha`) does under a new fencing incarnation.

**Backpressure and quarantine.**  ``max_backlog_rows`` bounds the rows
forwarded to workers but not yet acknowledged by them; over the
watermark, ingest raises :class:`BacklogFull` (HTTP 429 +
``Retry-After``) instead of queueing unboundedly.  A shard whose
workers die ``respawn_max_failures`` times inside ``respawn_window``
trips a per-shard circuit breaker and is **quarantined**: it keeps
spooling durably (the drain rescore still covers every row) but is no
longer respawned or scored live — reported, not crash-looped.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from collections import defaultdict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..detection.pipeline import PipelineResult, find_plotters
from ..flows.argus import loads_report
from ..flows.store import FlowStore
from ..obs import metrics as obs_metrics
from ..obs.http import MetricsServer
from ..obs.ledger import suspects_checksum
from ..obs.logconf import get_logger
from ..resilience import StageGuard, atomic_write_text, faults
from ..storage import SegmentStore
from ..storage.format import StorageError
from .config import ServeConfig
from .journal import COORD_LOG_NAME, CoordinatorLog, LogState
from .sharding import ShardMap
from .worker import row_of, worker_main

__all__ = ["ServeCoordinator", "BacklogFull", "NotLeader"]

logger = get_logger("serve.coordinator")

_INGEST_ROWS = obs_metrics.counter(
    "repro_serve_ingest_rows_total",
    "Flow rows accepted by the ingest endpoint",
)
_INGEST_REQUESTS = obs_metrics.counter(
    "repro_serve_ingest_requests_total",
    "POST /ingest requests handled",
)
_VERDICTS = obs_metrics.counter(
    "repro_serve_verdicts_total",
    "Finalised-window verdicts received from workers, by outcome",
    labels=("result",),
)
_RESTARTS = obs_metrics.counter(
    "repro_serve_worker_restarts_total",
    "Worker processes restarted after an unexpected death",
)
_WORKERS = obs_metrics.gauge(
    "repro_serve_workers", "Live detection worker processes"
)
_EPOCH = obs_metrics.gauge(
    "repro_serve_epoch", "Current shard-topology epoch"
)
_SPOOLED = obs_metrics.gauge(
    "repro_serve_spooled_rows", "Rows ingested into the shard spools"
)
_INCARNATION = obs_metrics.gauge(
    "repro_serve_incarnation",
    "Fencing incarnation this coordinator leads under (0 = non-HA)",
)
_BACKLOG = obs_metrics.gauge(
    "repro_serve_backlog_rows",
    "Rows forwarded to workers but not yet acknowledged by them",
)
_REJECTED = obs_metrics.counter(
    "repro_serve_ingest_rejected_total",
    "Ingest chunks rejected by admission control, by reason",
    labels=("reason",),
)
_DUP_CHUNKS = obs_metrics.counter(
    "repro_serve_duplicate_chunks_total",
    "Resent ingest chunks deduplicated by client sequence number",
)
_QUARANTINED = obs_metrics.gauge(
    "repro_serve_quarantined_shards",
    "Shards quarantined by the worker-respawn circuit breaker",
)
_SINK_ERRORS = obs_metrics.counter(
    "repro_serve_verdict_sink_errors_total",
    "Verdict-DB sink writes that failed (verdict still accepted)",
)


class BacklogFull(RuntimeError):
    """Ingest admission control rejected a chunk (HTTP 429).

    ``retry_after`` is the advisory backoff in seconds the HTTP layer
    publishes as the ``Retry-After`` header.
    """

    def __init__(self, backlog_rows: int, watermark: int) -> None:
        self.backlog_rows = backlog_rows
        self.watermark = watermark
        # Rough worker drain rate; the client treats this as a hint,
        # its RetryPolicy still owns the actual schedule.
        self.retry_after = max(0.2, min(30.0, backlog_rows / 20_000.0))
        super().__init__(
            f"ingest backlog {backlog_rows} rows over the "
            f"{watermark}-row watermark"
        )


class NotLeader(RuntimeError):
    """This coordinator has been fenced out of leadership (HTTP 409)."""


class _Worker:
    """One shard's current worker incarnation (coordinator-side)."""

    def __init__(
        self,
        shard: int,
        incarnation: int,
        epoch: int,
        process,
        inbox,
        outbox,
        spool_dir: Path,
    ) -> None:
        self.shard = shard
        self.incarnation = incarnation
        self.epoch = epoch
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.spool_dir = spool_dir
        self.retired = False


class ServeCoordinator:
    """Shard hosts across resident detection workers; own the spools."""

    def __init__(self, config: ServeConfig, *, incarnation: int = 0) -> None:
        self.config = config
        self.root = Path(config.spool_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.epoch = 0
        self.shard_map = ShardMap(config.n_shards)
        self.restarts = 0
        self.rows_ingested = 0
        #: Fencing counter this coordinator leads under (the lease
        #: fence in HA mode, 0 for a plain single coordinator).
        self.incarnation = incarnation
        #: HA hook: when set (by :mod:`repro.serve.ha`), ingest calls
        #: it before durable side effects and answers 409 once it
        #: returns ``False`` — a fenced-out ex-primary stops accepting
        #: writes the moment the standby takes over.
        self.fence_guard: Optional[Callable[[], bool]] = None
        #: Degradation reporting for the respawn circuit breakers.
        self.guard = StageGuard(name="serve")
        self.server: Optional[MetricsServer] = None
        #: Set by ``POST /drain`` or a signal handler; whoever runs the
        #: service (the CLI main loop, a test) waits on it and then
        #: calls :meth:`drain` — the HTTP handler itself cannot, since
        #: draining tears the server down.
        self.drain_requested = threading.Event()

        # _lock orders topology + spool writes (ingest, restart,
        # rebalance, drain).  _state_lock guards the verdict/reply
        # state that the supervisor thread and HTTP threads both touch;
        # it is always taken after _lock, never around a blocking call.
        self._lock = threading.RLock()
        self._state_lock = threading.Lock()
        self._mp = mp.get_context("spawn")
        self._workers: Dict[int, _Worker] = {}
        self._writers: Dict[int, object] = {}
        self._spool_dirs: List[Path] = []
        self._hosts_per_shard: Dict[int, Set[str]] = defaultdict(set)
        self._accepted: Dict[Tuple[int, int, int], Dict] = {}
        self._last_final_end: Dict[Tuple[int, int], float] = {}
        self._duplicates = 0
        #: client id -> (last applied chunk seq, its ack payload)
        self._applied: Dict[str, Tuple[int, Dict]] = {}
        self._duplicate_chunks = 0
        #: shard -> rows forwarded to the worker but not yet acked
        self._pending: Dict[int, int] = defaultdict(int)
        self._quarantined: Set[int] = set()
        self._breakers: Dict[int, object] = {}
        self._log: Optional[CoordinatorLog] = None
        self._seq = 0
        self._eval_replies: Dict[int, Dict[int, Dict]] = {}
        self._reply_cond = threading.Condition(self._state_lock)
        #: Optional query-plane sink: every accepted verdict (and the
        #: drain rescore) is recorded into this VerdictDB.  Sink
        #: failures degrade to logging — the verdict path never fails
        #: on a DB error.
        self._verdict_db = None
        self._draining = threading.Event()
        self._stop_supervisor = threading.Event()
        self._supervisor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, log_state: Optional[LogState] = None) -> None:
        """Resume from the coordinator log, then spawn workers + routes.

        ``log_state`` lets a warm standby hand over the journal state
        it has been tailing (promotion without re-reading the file);
        otherwise the log is read from disk.  On a fresh spool both
        paths are empty and this is a plain cold start.
        """
        from .http import build_routes

        obs_metrics.enable()
        if self.config.verdict_db is not None and self._verdict_db is None:
            try:
                from ..query.verdicts import VerdictDB

                self._verdict_db = VerdictDB(self.config.verdict_db)
            except Exception:
                _SINK_ERRORS.inc()
                logger.exception(
                    "cannot open verdict DB %s; serving without the sink",
                    self.config.verdict_db,
                )
        with self._lock:
            self._resume(log_state)
            self._log = CoordinatorLog(self.root / COORD_LOG_NAME)
            if self._log_epoch_needed:
                self._log.append(
                    {
                        "kind": "epoch",
                        "epoch": self.epoch,
                        "n_shards": self.shard_map.n_shards,
                    }
                )
            _EPOCH.set(self.epoch)
            _INCARNATION.set(self.incarnation)
            _SPOOLED.set(self.rows_ingested)
            self._spawn_epoch()
        self.server = MetricsServer(
            port=self.config.port,
            host=self.config.host,
            routes=build_routes(self),
            extra_summary=self._summary_state,
        )
        self._supervisor = threading.Thread(
            target=self._supervise,
            name="repro-serve-supervisor",
            daemon=True,
        )
        self._supervisor.start()
        logger.info(
            "serve coordinator up: %d shard(s), window=%ss, url=%s",
            self.shard_map.n_shards,
            self.config.window,
            self.server.url,
        )

    def _resume(self, log_state: Optional[LogState]) -> None:
        """Rebuild coordinator state from the journal (caller holds lock).

        Restores topology, the verdict dedupe set, the applied-chunk
        map and the ingest row count; enumerates every epoch's spool
        directories from disk; and — under durable acks — truncates
        any spool suffix whose chunk record never landed (the crash
        window between segment cut and journal append; the owning
        client never got its ack and resends).
        """
        state = log_state
        if state is None:
            state = CoordinatorLog.load_state(self.root / COORD_LOG_NAME)
        if state.drained:
            raise RuntimeError(
                f"{self.root}: spool was already drained; refusing to serve "
                "over a finalised report"
            )
        self._log_epoch_needed = state.epoch is None
        if state.epoch is not None:
            # The journaled topology wins over the config: promotion
            # must honour a rebalance the previous leader performed.
            self.epoch = state.epoch
            self.shard_map = ShardMap(state.n_shards or self.config.n_shards)
        self._accepted = dict(state.accepted)
        self._last_final_end = dict(state.last_final_end)
        self._applied = dict(state.applied)
        self.rows_ingested = state.rows_ingested
        self._spool_dirs = sorted(
            d
            for d in self.root.glob("epoch-*/shard-*")
            if d.is_dir()
        )
        if self.config.durable_acks:
            for shard in range(self.shard_map.n_shards):
                spool_dir = self._shard_dir(shard)
                expected = state.cum.get((self.epoch, shard), 0)
                try:
                    store = SegmentStore.open(spool_dir, repair=True)
                except (StorageError, OSError):
                    continue  # no spool yet: nothing to reconcile
                store.truncate_rows(expected)
        if state.records:
            logger.info(
                "resumed from coordinator log: epoch %d, %d row(s), "
                "%d finalised window(s), %d client(s), incarnation %d",
                self.epoch,
                self.rows_ingested,
                len(self._accepted),
                len(self._applied),
                self.incarnation,
            )

    def close(self) -> None:
        """Stop the control plane, supervisor and workers (idempotent).

        A drained coordinator's workers are already gone; closing an
        undrained one stops them without finalising — ``close`` is the
        "just shut it down" path, :meth:`drain` the graceful one.
        """
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        with self._lock:
            if any(not worker.retired for worker in self._workers.values()):
                self._draining.set()
                self._stop_workers(finalize=False)
        if self.server is not None:
            self.server.close()
            self.server = None
        if self._log is not None:
            self._log.close()
            self._log = None
        if self._verdict_db is not None:
            try:
                self._verdict_db.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            self._verdict_db = None

    def __enter__(self) -> "ServeCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def url(self) -> Optional[str]:
        return self.server.url if self.server is not None else None

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def verdict_db(self):
        """The attached :class:`~repro.query.verdicts.VerdictDB`, if
        any — the ``/query/*`` routes answer 404 without one."""
        return self._verdict_db

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _shard_dir(self, shard: int) -> Path:
        return self.root / f"epoch-{self.epoch:03d}" / f"shard-{shard:02d}"

    def _spawn_epoch(self) -> None:
        """Create this epoch's spools and one worker per shard.

        Idempotent against resume: spools that already exist on disk
        are reopened and the worker replays them from the last
        journaled finalised-window boundary — a promoted coordinator's
        workers rebuild exactly the unfinalised window state the dead
        primary's workers held.
        """
        for shard in range(self.shard_map.n_shards):
            spool_dir = self._shard_dir(shard)
            store = SegmentStore.create(spool_dir, exist_ok=True)
            writer_kwargs = {}
            if self.config.segment_rows is not None:
                writer_kwargs["segment_rows"] = self.config.segment_rows
            self._writers[shard] = store.writer(**writer_kwargs)
            if spool_dir not in self._spool_dirs:
                self._spool_dirs.append(spool_dir)
            self._breakers[shard] = self.guard.breaker(
                "serve-worker-respawn",
                max_failures=self.config.respawn_max_failures,
                window=self.config.respawn_window or None,
                from_mode="respawn",
                to_mode="quarantined",
                name=f"worker-respawn:{self.epoch}.{shard}",
            )
            replay_t0 = self._last_final_end.get((self.epoch, shard))
            self._spawn_worker(shard, incarnation=0, replay_t0=replay_t0)

    def _spawn_worker(
        self, shard: int, incarnation: int, replay_t0: Optional[float]
    ) -> None:
        inbox = self._mp.Queue()
        outbox = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(
                shard,
                incarnation,
                self.config,
                inbox,
                outbox,
                str(self._shard_dir(shard)),
                replay_t0,
            ),
            name=f"repro-serve-worker-{shard}.{incarnation}",
            daemon=True,
        )
        process.start()
        self._workers[shard] = _Worker(
            shard,
            incarnation,
            self.epoch,
            process,
            inbox,
            outbox,
            self._shard_dir(shard),
        )
        _WORKERS.set(len(self._workers))

    def _restart_worker(self, worker: _Worker) -> None:
        """Replace a dead worker (caller holds ``_lock``).

        Re-checks the draining/stop flags *under the lock*: ``close``
        sets them and then takes the same lock to stop workers, so
        without this check a supervisor pass that saw the worker dead
        just before ``close`` could spawn a replacement behind the
        shutdown — a leaked live process after ``close`` returned.
        """
        if self._draining.is_set() or self._stop_supervisor.is_set():
            return  # shutdown has begun; never spawn behind it
        current = self._workers.get(worker.shard)
        if current is not worker or worker.retired:
            return  # already replaced (or deliberately retired)
        self._drain_outbox(worker)  # salvage shipped-but-unread messages
        worker.process.join(timeout=1.0)
        worker.retired = True
        # Flush the writer's buffered tail so the replacement's replay
        # sees every row ever accepted for this shard.
        self._writers[worker.shard].cut()
        # The dead worker's unacked batches are replayed from the
        # spool, not re-forwarded, so they leave the backlog.
        with self._state_lock:
            self._pending[worker.shard] = 0
            _BACKLOG.set(sum(self._pending.values()))
        breaker = self._breakers[worker.shard]
        if breaker.record_failure(
            f"worker {worker.shard}.{worker.incarnation} died"
        ):
            # Poisoned shard: stop crash-looping.  Rows keep spooling
            # durably (the drain rescore still covers them); live
            # scoring for this shard stops until an operator
            # rebalances into a fresh epoch.
            self._quarantined.add(worker.shard)
            _QUARANTINED.set(len(self._quarantined))
            logger.error(
                "shard %d quarantined after %d worker death(s); "
                "spooling continues, live scoring suspended",
                worker.shard,
                self.config.respawn_max_failures,
            )
            return
        replay_t0 = self._last_final_end.get((self.epoch, worker.shard))
        logger.warning(
            "worker for shard %d died (incarnation %d); restarting "
            "with replay from t0=%s",
            worker.shard,
            worker.incarnation,
            replay_t0,
        )
        self._spawn_worker(worker.shard, worker.incarnation + 1, replay_t0)
        self.restarts += 1
        _RESTARTS.inc()

    def _stop_workers(self, finalize: bool) -> None:
        """Finalise + stop every worker and reap it (caller holds lock)."""
        for worker in self._workers.values():
            try:
                if finalize:
                    self._seq += 1
                    worker.inbox.put(("finalize", self._seq, None))
                self._seq += 1
                worker.inbox.put(("stop", self._seq))
            except (OSError, ValueError):  # queue already broken: reap below
                pass
        deadline = time.monotonic() + 30.0
        for worker in self._workers.values():
            worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - last resort
                logger.warning(
                    "worker %d.%d did not stop; terminating",
                    worker.shard,
                    worker.incarnation,
                )
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            self._drain_outbox(worker)
            worker.retired = True
        for writer in self._writers.values():
            writer.cut()

    def rebalance(self, n_shards: int) -> Dict[str, object]:
        """Change the shard count: epoch barrier + fresh workers.

        Every in-flight window is finalised first (a synchronised early
        tumble — all workers share the absolute window grid, so the
        finalised windows line up), then the epoch increments and new
        spools/workers start.  Old spools are left in place for the
        drain rescore.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        with self._lock:
            if self._draining.is_set():
                raise RuntimeError("cannot rebalance while draining")
            previous = self.shard_map.n_shards
            self._stop_workers(finalize=True)
            self._workers = {}
            self._writers = {}
            self._breakers = {}
            self._hosts_per_shard = defaultdict(set)
            with self._state_lock:
                self._pending = defaultdict(int)
                _BACKLOG.set(0)
            self._quarantined = set()
            _QUARANTINED.set(0)
            self.epoch += 1
            self.shard_map = ShardMap(n_shards)
            if self._log is not None:
                # Journal the barrier before any new-epoch spool exists:
                # a crash after this record resumes in the new epoch
                # with empty spools, one before it resumes in the old —
                # either way consistent.
                self._log.append(
                    {
                        "kind": "epoch",
                        "epoch": self.epoch,
                        "n_shards": n_shards,
                    }
                )
            _EPOCH.set(self.epoch)
            self._spawn_epoch()
        logger.info(
            "rebalanced %d -> %d shard(s); now epoch %d",
            previous,
            n_shards,
            self.epoch,
        )
        return {
            "epoch": self.epoch,
            "n_shards": n_shards,
            "previous_n_shards": previous,
        }

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop_supervisor.is_set():
            for worker in list(self._workers.values()):
                self._drain_outbox(worker)
                if (
                    not worker.retired
                    and not worker.process.is_alive()
                    and not self._draining.is_set()
                ):
                    with self._lock:
                        self._restart_worker(worker)
            self._stop_supervisor.wait(0.05)

    def _drain_outbox(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.outbox.get_nowait()
            except queue_mod.Empty:
                return
            except (EOFError, OSError):  # queue broken by a killed writer
                return
            try:
                self._handle_message(worker, message)
            except Exception:  # pragma: no cover - never kill supervision
                logger.exception("bad worker message from shard %d", worker.shard)

    def _handle_message(self, worker: _Worker, message) -> None:
        kind, shard, incarnation, seq, payload, finals, delta = message
        if delta:
            obs_metrics.get_registry().merge_delta(delta)
        for verdict in finals:
            self._accept_final(worker.epoch, shard, verdict)
        if kind == "ack":
            rows = int((payload or {}).get("rows", 0))
            with self._state_lock:
                self._pending[shard] = max(0, self._pending[shard] - rows)
                _BACKLOG.set(sum(self._pending.values()))
        elif kind == "evaluated":
            with self._reply_cond:
                self._eval_replies.setdefault(seq, {})[shard] = payload
                self._reply_cond.notify_all()

    def _grid_index(self, evaluated_at: float) -> int:
        """The absolute window-grid slot a finalised verdict ends."""
        return round(
            (evaluated_at - self.config.window_origin) / self.config.window
        )

    def _accept_final(self, epoch: int, shard: int, verdict: Dict) -> None:
        end = float(verdict["evaluated_at"])
        key = (epoch, shard, self._grid_index(end))
        with self._state_lock:
            if key in self._accepted:
                self._duplicates += 1
                _VERDICTS.inc(result="duplicate")
                return
            self._accepted[key] = verdict
            previous = self._last_final_end.get((epoch, shard), float("-inf"))
            self._last_final_end[(epoch, shard)] = max(previous, end)
        if self._log is not None:
            # The journaled verdict is what lets a promoted standby
            # resume the same dedupe set and replay boundary.
            self._log.append(
                {
                    "kind": "verdict",
                    "epoch": epoch,
                    "shard": shard,
                    "grid": key[2],
                    "verdict": verdict,
                }
            )
        if self._verdict_db is not None:
            # The DB's own (source, epoch, shard, window) identity
            # deduplicates a second time, so failover replays that
            # bypass this coordinator's in-memory set still record once.
            try:
                self._verdict_db.record_serve_verdict(
                    epoch, f"shard-{shard:02d}", verdict
                )
            except Exception:
                _SINK_ERRORS.inc()
                logger.exception(
                    "verdict-DB sink write failed (epoch %d shard %d)",
                    epoch,
                    shard,
                )
        _VERDICTS.inc(result="accepted")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def backlog_rows(self) -> int:
        """Rows forwarded to workers but not yet acknowledged by them."""
        with self._state_lock:
            return sum(self._pending.values())

    def ingest(
        self,
        text: str,
        *,
        client: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Dict[str, object]:
        """Parse an Argus-CSV payload, spool it, forward it to workers.

        ``client``/``seq`` opt the chunk into exactly-once delivery:
        an already-applied ``(client, seq)`` returns its original ack
        with ``duplicate: true`` and does nothing else, so a client
        that resends after a lost ack (coordinator death, dropped
        connection) can never double-ingest.  The durable-ack ordering
        is spool-append → segment cut → journal append → ack; every
        crash interleaving either truncates an unacked suffix at
        promotion or deduplicates the resend.
        """
        if self._draining.is_set():
            raise RuntimeError("service is draining; ingest is closed")
        if self.fence_guard is not None and not self.fence_guard():
            _REJECTED.inc(reason="fenced")
            raise NotLeader(
                "coordinator has been fenced out of leadership; rediscover "
                "the primary"
            )
        if client is not None and seq is None:
            raise ValueError("a client id requires a chunk sequence number")
        if client is not None:
            with self._state_lock:
                entry = self._applied.get(client)
                if entry is not None and seq <= entry[0]:
                    self._duplicate_chunks += 1
                    _DUP_CHUNKS.inc()
                    reply = dict(entry[1])
                    reply["duplicate"] = True
                    return reply
        if self.config.max_backlog_rows is not None:
            backlog = self.backlog_rows()
            if backlog > self.config.max_backlog_rows:
                _REJECTED.inc(reason="backlog")
                raise BacklogFull(backlog, self.config.max_backlog_rows)
        flows, report = loads_report(text, errors=self.config.on_parse_error)
        batches: Dict[int, List] = defaultdict(list)
        with self._lock:
            for flow in flows:
                shard = self.shard_map.shard_of(flow.src)
                self._writers[shard].add(flow)
                self._hosts_per_shard[shard].add(flow.src)
                batches[shard].append(row_of(flow))
            reply: Dict[str, object] = {
                "rows_ok": len(flows),
                "rows_bad": report.rows_bad,
                "shards": {
                    str(shard): len(rows)
                    for shard, rows in sorted(batches.items())
                },
            }
            if self.config.durable_acks:
                for shard in sorted(batches):
                    self._writers[shard].cut()
                # The injected coordinator SIGKILL strikes here — rows
                # durable, chunk not yet journaled — the exact window
                # promotion's orphan-segment truncation closes.
                faults.serve_coord_exit_once()
                if flows or client is not None:
                    self._log.append(
                        {
                            "kind": "chunk",
                            "client": client,
                            "seq": seq,
                            "epoch": self.epoch,
                            "rows": len(flows),
                            "cum": {
                                str(shard): self._writers[shard].store.total_rows
                                for shard in sorted(batches)
                            },
                            "reply": reply,
                        }
                    )
            for shard, rows in batches.items():
                if shard in self._quarantined:
                    continue  # durable in the spool; drain covers it
                self._seq += 1
                self._workers[shard].inbox.put(("flows", self._seq, rows))
                with self._state_lock:
                    self._pending[shard] += len(rows)
            with self._state_lock:
                _BACKLOG.set(sum(self._pending.values()))
                if client is not None:
                    previous = self._applied.get(client)
                    if previous is None or seq > previous[0]:
                        self._applied[client] = (seq, dict(reply))
            self.rows_ingested += len(flows)
            _SPOOLED.set(self.rows_ingested)
        _INGEST_REQUESTS.inc()
        _INGEST_ROWS.inc(len(flows))
        return reply

    # ------------------------------------------------------------------
    # Live verdicts
    # ------------------------------------------------------------------
    def evaluate(self, timeout: float = 15.0) -> Dict[str, object]:
        """Score every shard's current window, without tumbling it."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            shards = [
                shard
                for shard in self._workers
                if shard not in self._quarantined
            ]
            for shard in shards:
                self._workers[shard].inbox.put(("evaluate", seq, None))
        deadline = time.monotonic() + timeout
        with self._reply_cond:
            while (
                len(self._eval_replies.get(seq, {})) < len(shards)
                and time.monotonic() < deadline
            ):
                self._reply_cond.wait(0.1)
            replies = self._eval_replies.pop(seq, {})
        live: Set[str] = set()
        for verdict in replies.values():
            live.update(verdict["suspects"])
        return {
            "shards": {str(s): replies.get(s) for s in sorted(shards)},
            "replied": sorted(replies),
            "suspects": sorted(live),
        }

    def verdicts_doc(
        self,
        host: Optional[str] = None,
        since: Optional[float] = None,
    ) -> Dict[str, object]:
        """Finalised-window verdicts and the cumulative suspect set.

        ``host`` keeps only windows in which that host was evaluated
        (present in the window's ``reduced`` or ``suspects`` set);
        ``since`` keeps only windows finalised at/after that timestamp.
        Filters see the *deduplicated* verdict set — a window the
        dedupe path dropped as a duplicate can never reappear through a
        filter — and the ``duplicate_verdicts`` counter stays global so
        a filtered read still exposes replay pressure.
        """
        with self._state_lock:
            items = sorted(self._accepted.items())
            duplicates = self._duplicates
        suspects: Set[str] = set()
        finalized = []
        for (epoch, shard, grid), verdict in items:
            if since is not None and float(verdict["evaluated_at"]) < since:
                continue
            if host is not None and not (
                host in verdict.get("suspects", ())
                or host in verdict.get("reduced", ())
            ):
                continue
            suspects.update(verdict["suspects"])
            finalized.append(
                {"epoch": epoch, "shard": shard, "grid_window": grid, **verdict}
            )
        doc: Dict[str, object] = {
            "finalized": finalized,
            "windows_finalized": len(finalized),
            "suspects": sorted(suspects),
            "suspects_count": len(suspects),
            "duplicate_verdicts": duplicates,
            "duplicate_chunks": self._duplicate_chunks,
            "rows_ingested": self.rows_ingested,
            "incarnation": self.incarnation,
        }
        if host is not None or since is not None:
            doc["filter"] = {"host": host, "since": since}
        return doc

    def shards_doc(self) -> Dict[str, object]:
        """Topology and per-worker liveness (the recovery test's probe)."""
        with self._lock:
            workers = [
                {
                    "shard": worker.shard,
                    "incarnation": worker.incarnation,
                    "epoch": worker.epoch,
                    "pid": worker.process.pid,
                    "alive": worker.process.is_alive(),
                    "hosts": len(self._hosts_per_shard[worker.shard]),
                    "last_final_end": self._last_final_end.get(
                        (worker.epoch, worker.shard)
                    ),
                    "quarantined": worker.shard in self._quarantined,
                }
                for worker in sorted(
                    self._workers.values(), key=lambda w: w.shard
                )
            ]
            quarantined = sorted(self._quarantined)
        return {
            "epoch": self.epoch,
            "n_shards": self.shard_map.n_shards,
            "restarts": self.restarts,
            "draining": self.draining,
            "incarnation": self.incarnation,
            "backlog_rows": self.backlog_rows(),
            "quarantined": quarantined,
            "workers": workers,
        }

    def _summary_state(self) -> Dict[str, object]:
        with self._state_lock:
            windows = len(self._accepted)
        return {
            "epoch": self.epoch,
            "n_shards": self.shard_map.n_shards,
            "rows_ingested": self.rows_ingested,
            "windows_finalized": windows,
            "restarts": self.restarts,
            "draining": self.draining,
            "incarnation": self.incarnation,
            "backlog_rows": self.backlog_rows(),
            "quarantined_shards": len(self._quarantined),
        }

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def _combined_store(self) -> FlowStore:
        """Every epoch's shard spools, unioned into one in-memory store."""
        combined = FlowStore()
        for spool_dir in self._spool_dirs:
            try:
                store = SegmentStore.open(spool_dir)
            except (StorageError, OSError):
                continue
            if store.total_rows == 0:
                continue
            combined.extend(store.view().records())
        return combined

    def drain(self) -> Tuple[PipelineResult, Dict[str, object]]:
        """SIGTERM path: finalise everything, batch-rescore the spools.

        Closes ingest, tumbles and stops every worker, cuts every
        spool, then runs :func:`find_plotters` over the union of all
        spooled rows under the service's pipeline config — producing
        the exact batch verdict for the service's whole lifetime of
        traffic.  Writes ``drain.json`` (suspects + order-independent
        checksum + funnel + service counters) and returns the pipeline
        result with the report.
        """
        self._draining.set()
        with self._lock:
            self._stop_workers(finalize=True)
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        # One final sweep: the supervisor is gone, so collect anything
        # the dying workers shipped after its last pass.
        for worker in self._workers.values():
            self._drain_outbox(worker)

        combined = self._combined_store()
        hosts = (
            None
            if self.config.internal_hosts is None
            else set(self.config.internal_hosts)
        )
        result = find_plotters(combined, hosts, self.config.pipeline)
        suspects = sorted(result.suspects)
        if self._verdict_db is not None:
            # The drain rescore is the service's authoritative batch
            # verdict — record it with full stage evidence.
            try:
                self._verdict_db.record_batch(
                    result,
                    evaluated_at=time.time(),
                    source="drain",
                    epoch=self.epoch,
                    run_id=f"drain-{self.root.name}-{self.incarnation}",
                )
            except Exception:
                _SINK_ERRORS.inc()
                logger.exception("verdict-DB drain record failed")
        doc = self.verdicts_doc()
        report = {
            "suspects": suspects,
            "suspects_sha256": suspects_checksum(suspects),
            "funnel": result.funnel(),
            "rows_rescored": len(combined),
            "rows_ingested": self.rows_ingested,
            "windows_finalized": doc["windows_finalized"],
            "duplicate_verdicts": doc["duplicate_verdicts"],
            "duplicate_chunks": self._duplicate_chunks,
            "restarts": self.restarts,
            "epochs": self.epoch + 1,
            "incarnation": self.incarnation,
            "quarantined_shards": sorted(self._quarantined),
            "degradations": [str(d) for d in result.degradations]
            + [d.describe() for d in self.guard.degradations],
        }
        atomic_write_text(
            self.root / "drain.json",
            json.dumps(report, indent=2, sort_keys=True) + "\n",
        )
        if self._log is not None:
            # Terminal record: no standby may promote over a drained
            # spool — its report is already published.
            self._log.append({"kind": "drained"})
        logger.info(
            "drained: %d rows rescored, %d suspect(s), checksum %s",
            len(combined),
            len(suspects),
            report["suspects_sha256"][:12],
        )
        return result, report
