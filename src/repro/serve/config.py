"""Service configuration.

One frozen, picklable dataclass travels from the CLI through the
coordinator into every spawned worker — the same pattern as
:class:`~repro.detection.pipeline.PipelineConfig`, which it embeds, so
the service's detection thresholds can never drift from the batch
pipeline it must stay bit-identical to.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..detection.pipeline import PipelineConfig
from ..flows.argus import PARSE_ERROR_MODES

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything `repro serve` needs to run, in one picklable value.

    Parameters
    ----------
    spool_dir:
        Root directory of the service's durable state: per-shard
        segment spools live at ``<spool_dir>/epoch-XXX/shard-YY``, the
        drain report at ``<spool_dir>/drain.json`` and the discovery
        file at ``<spool_dir>/serve.json``.
    n_shards:
        Worker processes; hosts map to shards by stable blake2b hash
        (:func:`repro.serve.sharding.shard_of`).
    window:
        Tumbling-window length in seconds (the paper's D).
    window_origin:
        Anchor of the absolute window grid.  All workers — and every
        restarted incarnation of a worker — tumble at
        ``origin + k·window``, so verdicts line up across shards,
        restarts and rebalances.
    port / host:
        Control-plane bind address (``port=0`` = ephemeral; the bound
        port is published in ``serve.json``).
    segment_rows:
        Spool segment cut threshold (rows); ``None`` = the storage
        plane's default.
    pipeline:
        Detection thresholds, shared verbatim with
        :func:`~repro.detection.pipeline.find_plotters` — the drain
        rescore runs under exactly this config.
    internal_hosts:
        Explicit candidate population, or ``None`` (the default) to
        score every source address the service sees — matching the
        batch pipeline's ``hosts=None`` → ``store.initiators``.
    on_parse_error:
        Ingest-endpoint policy for malformed CSV rows
        (``strict`` | ``skip`` | ``quarantine``); a resident service
        defaults to ``skip`` — one bad row must not poison a POST.
    durable_acks:
        When true (the default), every acknowledged ingest chunk is
        segment-cut into its shard spools and journaled in the
        coordinator log *before* the HTTP 200 — an acked chunk
        survives coordinator SIGKILL, and resent chunks (by client
        sequence number) deduplicate exactly once.  ``False`` restores
        the PR 8 volatile path (rows buffered in the writer until a
        threshold/respawn cut; at-least-once across coordinator death)
        — measurably faster, and what the legacy bench series pins.
        HA mode requires durable acks.
    max_backlog_rows:
        Admission-control watermark: when the rows forwarded to
        workers but not yet acknowledged by them exceed this, ingest
        answers 429 with a ``Retry-After`` hint until the workers
        catch up.  ``None`` (default) = unbounded.
    lease_ttl:
        HA leadership lease TTL in seconds; failover after a primary
        death takes at most this plus the standby's poll interval.
    standby_poll:
        How often a warm standby re-tries the lease and tails the
        coordinator log.
    verdict_db:
        Path of a :class:`~repro.query.verdicts.VerdictDB` (SQLite) to
        record every finalised window verdict into, live — the query
        plane's cross-window history.  ``None`` (default) disables the
        sink.  DB failures never fail ingest or verdict acceptance:
        the sink degrades to logging and counting.
    respawn_max_failures / respawn_window:
        Per-shard worker-respawn circuit breaker: this many worker
        deaths inside the window quarantine the shard (it keeps
        spooling durably but is no longer respawned or scored live)
        instead of crash-looping.  ``respawn_window=0`` disables the
        window (every death counts forever).
    """

    spool_dir: str
    n_shards: int = 2
    window: float = 6 * 3600.0
    window_origin: float = 0.0
    port: int = 0
    host: str = "127.0.0.1"
    segment_rows: Optional[int] = None
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    internal_hosts: Optional[Tuple[str, ...]] = None
    on_parse_error: str = "skip"
    durable_acks: bool = True
    max_backlog_rows: Optional[int] = None
    lease_ttl: float = 5.0
    standby_poll: float = 0.25
    respawn_max_failures: int = 5
    respawn_window: float = 60.0
    verdict_db: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.window <= 0:
            raise ValueError("window length must be positive")
        if self.segment_rows is not None and self.segment_rows < 1:
            raise ValueError("segment_rows must be >= 1")
        if self.on_parse_error not in PARSE_ERROR_MODES:
            raise ValueError(
                f"on_parse_error must be one of {PARSE_ERROR_MODES}, "
                f"got {self.on_parse_error!r}"
            )
        if self.max_backlog_rows is not None and self.max_backlog_rows < 1:
            raise ValueError("max_backlog_rows must be >= 1 (or None)")
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.standby_poll <= 0:
            raise ValueError("standby_poll must be positive")
        if self.respawn_max_failures < 1:
            raise ValueError("respawn_max_failures must be >= 1")
        if self.respawn_window < 0:
            raise ValueError("respawn_window must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready form (what the run ledger records)."""
        return dataclasses.asdict(self)
