"""The coordinator log: one JSONL journal that makes promotion exact.

PR 8 made *workers* disposable — the per-shard spools replay their
state.  The coordinator itself still held three pieces of state only
in memory: the shard-topology epoch, the ``(epoch, shard, grid_index)``
verdict dedupe set, and which client chunks had been acknowledged.
``coord.log`` journals all three, append-only with an fsync per
record, so a *coordinator* death (SIGKILL, OOM) is as recoverable as a
worker death: the warm standby tails this file and promotes with the
same dedupe, the same epoch, and exactly-once chunk accounting.

Record kinds (one JSON object per line):

``{"kind": "epoch", "epoch": E, "n_shards": N}``
    Topology: appended at first start and at every rebalance barrier.
``{"kind": "chunk", "client": C|null, "seq": S|null, "epoch": E,
"rows": R, "cum": {shard: rows…}, "reply": {…}}``
    One acknowledged ingest chunk.  ``cum`` is each touched shard's
    *durable* spool row count after the chunk's segment cut — the
    reconciliation watermark: at promotion, spool rows beyond the last
    journaled ``cum`` belong to a chunk that was never acknowledged
    and are truncated (the client will resend).  ``reply`` is the ack
    payload, replayed verbatim for idempotent duplicate resends.
``{"kind": "verdict", "epoch": E, "shard": S, "grid": G,
"verdict": {…}}``
    One accepted finalised-window verdict (the dedupe set + the
    replay boundary ``last_final_end`` are both rebuilt from these).
``{"kind": "drained"}``
    Terminal: the spool has been drained and reported; no contender
    may promote over it again.

Ordering is the correctness argument: a chunk's segments are cut
*before* its record is appended, and the record is appended *before*
the client is acked.  Crash between cut and append → durable-but-
unjournaled suffix → truncated at promotion, client resends, applied
once.  Crash between append and ack → client resends, journal says
seen, chunk deduplicated.  No interleaving loses or duplicates a row.

The reader side tolerates a torn final line (a crash mid-append):
:class:`LogTail` simply does not advance past it; the writer
physically truncates it before appending again.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..obs.logconf import get_logger

__all__ = ["COORD_LOG_NAME", "LogState", "LogTail", "CoordinatorLog"]

COORD_LOG_NAME = "coord.log"

logger = get_logger("serve.journal")


@dataclass
class LogState:
    """Everything a promoted coordinator rebuilds from the journal."""

    epoch: Optional[int] = None
    n_shards: Optional[int] = None
    #: client id -> (last applied seq, the ack payload it got)
    applied: Dict[str, Tuple[int, Dict]] = field(default_factory=dict)
    #: (epoch, shard, grid_index) -> verdict (the dedupe set)
    accepted: Dict[Tuple[int, int, int], Dict] = field(default_factory=dict)
    #: (epoch, shard) -> end of the last finalised window
    last_final_end: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: (epoch, shard) -> journaled durable spool row count
    cum: Dict[Tuple[int, int], int] = field(default_factory=dict)
    rows_ingested: int = 0
    records: int = 0
    drained: bool = False

    def apply(self, record: Dict) -> None:
        kind = record.get("kind")
        self.records += 1
        if kind == "epoch":
            self.epoch = int(record["epoch"])
            self.n_shards = int(record["n_shards"])
        elif kind == "chunk":
            epoch = int(record["epoch"])
            self.rows_ingested += int(record["rows"])
            client = record.get("client")
            if client is not None:
                self.applied[str(client)] = (
                    int(record["seq"]),
                    dict(record.get("reply") or {}),
                )
            for shard, rows in (record.get("cum") or {}).items():
                self.cum[(epoch, int(shard))] = int(rows)
        elif kind == "verdict":
            epoch = int(record["epoch"])
            shard = int(record["shard"])
            grid = int(record["grid"])
            verdict = dict(record["verdict"])
            self.accepted[(epoch, shard, grid)] = verdict
            end = float(verdict["evaluated_at"])
            previous = self.last_final_end.get((epoch, shard), float("-inf"))
            self.last_final_end[(epoch, shard)] = max(previous, end)
        elif kind == "drained":
            self.drained = True
        # unknown kinds are skipped: the journal is forward-compatible

    def seen(self, client: str, seq: int) -> Optional[Dict]:
        """The original ack if ``(client, seq)`` was already applied."""
        entry = self.applied.get(client)
        if entry is not None and seq <= entry[0]:
            return entry[1]
        return None


class LogTail:
    """Incremental, torn-tail-tolerant reader of a coordinator log.

    The warm standby holds one of these: every poll calls
    :meth:`advance`, which reads any new *complete* lines and folds
    them into :attr:`state`.  An incomplete final line (the primary
    mid-append, or a crash) is left unread — the offset stays before
    it, so it is retried on the next poll.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.offset = 0
        self.state = LogState()

    def advance(self) -> int:
        """Fold in newly appended records; return how many."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self.offset)
                data = fh.read()
        except FileNotFoundError:
            return 0
        if not data:
            return 0
        complete = data.rfind(b"\n") + 1
        applied = 0
        for line in data[:complete].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                logger.warning(
                    "skipping undecodable journal line at %s+%d",
                    self.path,
                    self.offset,
                )
                continue
            self.state.apply(record)
            applied += 1
        self.offset += complete
        return applied


class CoordinatorLog:
    """The writer side: truncate any torn tail, then append+fsync.

    Opened by exactly one live coordinator at a time (leadership is
    the lease's job, not this file's); appends from multiple threads
    of that coordinator are serialised by an internal lock.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._truncate_torn_tail()
        self._fh = open(self.path, "ab")

    def _truncate_torn_tail(self) -> None:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            return
        if size == 0:
            return
        with open(self.path, "rb") as fh:
            data = fh.read()
        keep = data.rfind(b"\n") + 1
        if keep != size:
            logger.warning(
                "truncating torn journal tail: %s (%d -> %d bytes)",
                self.path,
                size,
                keep,
            )
            with open(self.path, "r+b") as fh:
                fh.truncate(keep)
                fh.flush()
                os.fsync(fh.fileno())

    @classmethod
    def load_state(cls, path: Union[str, Path]) -> LogState:
        """One-shot read of the journal into a :class:`LogState`."""
        tail = LogTail(path)
        tail.advance()
        return tail.state

    def append(self, record: Dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "CoordinatorLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
