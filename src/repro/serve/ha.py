"""Warm-standby coordinator pair: lease leadership, promote, drain.

Two (or more) ``repro serve --ha`` processes share one spool directory.
Exactly one holds the leadership lease
(:class:`~repro.resilience.lease.FileLease` under ``<spool>/ha/``) and
runs the full coordinator — HTTP plane, spools, workers.  The others
are *warm standbys*: they tail ``coord.log`` with a
:class:`~repro.serve.journal.LogTail` (so their in-memory
:class:`~repro.serve.journal.LogState` is always seconds fresh) and
re-try the lease every ``standby_poll`` seconds.

When the primary dies (SIGKILL, OOM, power) its lease expires after
``lease_ttl``; the first standby to acquire it promotes:

1. fold in the journal's final records (torn tail tolerated);
2. refuse if the journal says ``drained`` — the report is published,
   contention is over;
3. build a :class:`~repro.serve.coordinator.ServeCoordinator` whose
   ``incarnation`` *is* the lease fence, resume from the journaled
   state (same epoch, same verdict-dedupe set, same per-client chunk
   accounting; orphan spool suffixes from unacked chunks truncated),
   replay only the unfinalised window grid;
4. rewrite ``serve.json`` so clients rediscover the new primary;
5. start a :class:`~repro.resilience.lease.LeaseKeeper` heartbeat.

If the keeper ever finds itself fenced (its own heartbeat stalled long
enough for another node to take over — the split-brain drill), the
ex-primary closes *without draining* and rejoins as a standby: the
fence check in the ingest path has already turned its answers into
409s, so no client ack was lost to the fenced side.

A drain (SIGTERM or ``POST /drain``) runs under a *held* lease — the
keeper renews throughout — and the terminal ``drained`` journal record
plus the lease release end the contention: every standby exits once it
reads the record.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs.logconf import get_logger
from ..resilience import FileLease, LeaseKeeper, atomic_write_text
from .config import ServeConfig
from .coordinator import ServeCoordinator
from .journal import COORD_LOG_NAME, LogTail

__all__ = ["HA_DIR_NAME", "run_ha"]

#: Lease/fence state lives under ``<spool_dir>/ha/``.
HA_DIR_NAME = "ha"

logger = get_logger("serve.ha")

_FAILOVERS = obs_metrics.counter(
    "repro_serve_failovers_total",
    "Promotions of a standby over a dead or fenced ex-primary",
)
_PROMOTIONS = obs_metrics.counter(
    "repro_serve_promotions_total",
    "Coordinator promotions (first leadership included)",
)


def _write_discovery(
    config: ServeConfig, coordinator: ServeCoordinator, role: str
) -> None:
    atomic_write_text(
        Path(config.spool_dir) / "serve.json",
        json.dumps(
            {
                "url": coordinator.url,
                "port": coordinator.server.port,
                "pid": os.getpid(),
                "n_shards": config.n_shards,
                "window": config.window,
                "incarnation": coordinator.incarnation,
                "role": role,
            },
            sort_keys=True,
        )
        + "\n",
    )


def run_ha(
    config: ServeConfig,
    *,
    shutdown: Optional[threading.Event] = None,
    holder_id: Optional[str] = None,
    announce=None,
) -> Optional[Tuple[object, Dict]]:
    """Contend, serve, fail over; return the drain result if we drained.

    Blocks until one of:

    * this node drained (it held the lease and received SIGTERM or
      ``POST /drain``) → returns ``(PipelineResult, report_dict)``;
    * ``shutdown`` was set while this node was a standby, or the
      journal's terminal ``drained`` record appeared → returns
      ``None`` (another node owns the published report);

    A fenced ex-primary does **not** return: it closes without
    draining and rejoins the standby loop.

    Parameters
    ----------
    shutdown:
        Event a signal handler sets.  While primary it requests a
        drain; while standby it requests a clean exit.
    holder_id:
        Lease holder identity (defaults to ``host:pid``).
    announce:
        Optional ``callable(str)`` for operator-facing one-liners.
    """
    if not config.durable_acks:
        raise ValueError(
            "HA requires durable_acks=True: a standby can only promote "
            "exactly-once over a journaled ingest path"
        )
    shutdown = shutdown or threading.Event()
    say = announce or (lambda message: None)
    root = Path(config.spool_dir)
    root.mkdir(parents=True, exist_ok=True)
    lease = FileLease(
        root / HA_DIR_NAME, holder_id=holder_id, ttl=config.lease_ttl
    )
    log_path = root / COORD_LOG_NAME

    while not shutdown.is_set():
        # ---- standby: tail the journal, contend for the lease -------
        tail = LogTail(log_path)
        fence: Optional[int] = None
        while not shutdown.is_set():
            tail.advance()
            if tail.state.drained:
                say("journal is drained; standing down")
                return None
            fence = lease.try_acquire()
            if fence is not None:
                break
            time.sleep(config.standby_poll)
        if fence is None:  # shutdown while standby
            return None

        # ---- promote ------------------------------------------------
        tail.advance()  # the dead primary's final complete records
        if tail.state.drained:
            lease.release(fence)
            say("journal is drained; standing down")
            return None
        _PROMOTIONS.inc()
        if fence > 1:
            _FAILOVERS.inc()
        say(
            f"acquired leadership lease (fence={fence}); promoting over "
            f"{tail.state.records} journal record(s)"
        )
        coordinator = ServeCoordinator(config, incarnation=fence)
        coordinator.fence_guard = lambda f=fence: lease.held_by_us(f)
        lost = threading.Event()
        try:
            coordinator.start(log_state=tail.state)
        except Exception:
            lease.release(fence)
            raise
        keeper = LeaseKeeper(lease, fence, on_lost=lost.set)
        keeper.start()
        _write_discovery(config, coordinator, role="primary")
        say(f"serving as primary on {coordinator.url} (fence={fence})")

        # ---- primary main loop --------------------------------------
        try:
            while True:
                if shutdown.is_set():
                    coordinator.drain_requested.set()
                if coordinator.drain_requested.is_set() or lost.is_set():
                    break
                coordinator.drain_requested.wait(timeout=0.1)
            if lost.is_set() and not coordinator.drain_requested.is_set():
                # Fenced: another node owns the spool now.  Close
                # without draining (the finally below) — our unacked
                # work is theirs to truncate, our acked work is in
                # the journal.
                logger.warning(
                    "fenced out of leadership (fence=%d); demoting", fence
                )
                say("fenced out of leadership; rejoining as standby")
                continue
            # Drain under a held lease: the keeper renews throughout,
            # so no standby can promote over a half-written report.
            say("draining")
            result, report = coordinator.drain()
            keeper.stop()
            lease.release(fence)
            return result, report
        finally:
            keeper.stop()
            coordinator.close()
    return None
