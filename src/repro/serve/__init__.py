"""`repro serve` — the resident tracker/worker detection service.

The paper's classifier is meant to watch a live border, not a pcap
archive: flows arrive continuously, windows tumble on the clock, and
an operator asks "who looks like a Plotter *right now*?".  This
package turns the repo's batch-and-library planes into that resident
service:

* a :class:`~repro.serve.coordinator.ServeCoordinator` process owns
  ingest, shards internal hosts across persistent detection worker
  processes (:mod:`repro.serve.worker`, one
  :class:`~repro.detection.incremental.OnlineDetector` each), and
  spools every accepted flow into per-shard ``.rseg`` segment stores
  (:mod:`repro.storage`) *before* forwarding it — the spool, not any
  worker, is the durability boundary;
* the control plane is the PR 7 telemetry endpoint grown routes
  (:func:`repro.serve.http.build_routes` on
  :class:`repro.obs.http.MetricsServer`): ``POST /ingest``,
  ``GET /verdicts``, ``GET /shards``, ``POST /evaluate``,
  ``POST /rebalance``, ``POST /drain`` next to the built-in
  ``/metrics`` / ``/healthz`` / ``/summary``;
* workers ship finalised-window verdicts and metric deltas home
  (:meth:`~repro.obs.metrics.MetricsRegistry.delta_since`); a killed
  worker is restarted and replays its shard spool from the last
  finalised window boundary, on the same window grid
  (``window_origin``), so no ingested flow is ever lost to a crash;
* SIGTERM (or ``POST /drain``) finalises every in-flight window and
  then re-scores the union of all shard spools with the exact batch
  pipeline (:func:`repro.detection.pipeline.find_plotters`) — the
  drained verdict is bit-identical to a batch run over the same
  flows, which is the service's acceptance invariant;
* the coordinator itself is disposable (PR 9): every acked ingest
  chunk is journaled in ``coord.log`` (:mod:`repro.serve.journal`), a
  warm standby (:mod:`repro.serve.ha`) tails it and promotes under a
  fenced leadership lease when the primary dies, ingest applies
  backpressure (429 + ``Retry-After``) past a backlog watermark, and
  :class:`~repro.serve.client.ServeClient` packages the
  retry/rediscovery/resend discipline that makes the whole path
  exactly-once.

See ``docs/service.md`` for the architecture and recovery semantics.
"""

from .client import ServeClient, ServeError
from .config import ServeConfig
from .coordinator import BacklogFull, NotLeader, ServeCoordinator
from .ha import run_ha
from .journal import CoordinatorLog, LogState, LogTail
from .sharding import ShardMap, rebalance_moves, shard_of

__all__ = [
    "BacklogFull",
    "CoordinatorLog",
    "LogState",
    "LogTail",
    "NotLeader",
    "ServeClient",
    "ServeConfig",
    "ServeCoordinator",
    "ServeError",
    "ShardMap",
    "rebalance_moves",
    "run_ha",
    "shard_of",
]
