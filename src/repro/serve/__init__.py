"""`repro serve` — the resident tracker/worker detection service.

The paper's classifier is meant to watch a live border, not a pcap
archive: flows arrive continuously, windows tumble on the clock, and
an operator asks "who looks like a Plotter *right now*?".  This
package turns the repo's batch-and-library planes into that resident
service:

* a :class:`~repro.serve.coordinator.ServeCoordinator` process owns
  ingest, shards internal hosts across persistent detection worker
  processes (:mod:`repro.serve.worker`, one
  :class:`~repro.detection.incremental.OnlineDetector` each), and
  spools every accepted flow into per-shard ``.rseg`` segment stores
  (:mod:`repro.storage`) *before* forwarding it — the spool, not any
  worker, is the durability boundary;
* the control plane is the PR 7 telemetry endpoint grown routes
  (:func:`repro.serve.http.build_routes` on
  :class:`repro.obs.http.MetricsServer`): ``POST /ingest``,
  ``GET /verdicts``, ``GET /shards``, ``POST /evaluate``,
  ``POST /rebalance``, ``POST /drain`` next to the built-in
  ``/metrics`` / ``/healthz`` / ``/summary``;
* workers ship finalised-window verdicts and metric deltas home
  (:meth:`~repro.obs.metrics.MetricsRegistry.delta_since`); a killed
  worker is restarted and replays its shard spool from the last
  finalised window boundary, on the same window grid
  (``window_origin``), so no ingested flow is ever lost to a crash;
* SIGTERM (or ``POST /drain``) finalises every in-flight window and
  then re-scores the union of all shard spools with the exact batch
  pipeline (:func:`repro.detection.pipeline.find_plotters`) — the
  drained verdict is bit-identical to a batch run over the same
  flows, which is the service's acceptance invariant.

See ``docs/service.md`` for the architecture and recovery semantics.
"""

from .config import ServeConfig
from .coordinator import ServeCoordinator
from .sharding import ShardMap, rebalance_moves, shard_of

__all__ = [
    "ServeConfig",
    "ServeCoordinator",
    "ShardMap",
    "rebalance_moves",
    "shard_of",
]
