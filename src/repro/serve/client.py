"""Ingest client with retries, failover rediscovery and exact resend.

The server side of exactly-once ingest (the coordinator journal) only
closes the loop if clients follow one discipline: **number your
chunks, and resend the same chunk with the same number until it is
acknowledged**.  :class:`ServeClient` packages that discipline:

* every chunk gets a monotonically increasing per-client sequence
  number, sent as ``POST /ingest?client=ID&seq=N``;
* failures retry under a jittered-backoff
  :class:`~repro.resilience.retry.RetryPolicy` — the *same* sequence
  number every time, so a chunk whose ack was lost (coordinator
  SIGKILL after the journal append, a dropped connection) is
  deduplicated server-side and answered with the original ack
  (``duplicate: true``);
* a 409 (fenced ex-primary) or a connection error triggers primary
  rediscovery: the client re-reads ``<spool_dir>/serve.json`` — the
  discovery file the *current* primary rewrites on promotion — and
  retries against whatever URL it now names;
* a 429 sleeps the server's ``Retry-After`` hint before the policy's
  own backoff, so a saturated coordinator is never hammered.

The transport is injectable (``transport=``) so tests drive the full
retry/rediscovery/resend state machine against an in-process stub
without sockets.
"""

from __future__ import annotations

import json
import os
import socket
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union
from urllib.parse import quote

from ..obs.logconf import get_logger
from ..resilience import RetryPolicy

__all__ = ["ServeClient", "ServeError"]

logger = get_logger("serve.client")

#: ``transport(method, url, body, timeout)`` →
#: ``(status, headers, payload_dict)``.  Connection-level failures
#: raise ``OSError`` (or ``urllib.error.URLError``).
Transport = Callable[
    [str, str, Optional[bytes], float], Tuple[int, Dict[str, str], Dict]
]

#: Never sleep a Retry-After hint longer than this (a misbehaving or
#: saturated server must not park the client for minutes).
_MAX_RETRY_AFTER = 5.0


class ServeError(RuntimeError):
    """A non-retryable server answer (4xx other than 409/429)."""

    def __init__(self, status: int, payload: Dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"serve returned {status}: {payload.get('error', payload)}"
        )


def _default_transport(
    method: str, url: str, body: Optional[bytes], timeout: float
) -> Tuple[int, Dict[str, str], Dict]:
    request = urllib.request.Request(
        url,
        data=body,
        method=method,
        headers={"Content-Type": "text/csv; charset=utf-8"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status = response.status
            headers = {k: v for k, v in response.headers.items()}
    except urllib.error.HTTPError as err:
        raw = err.read()
        status = err.code
        headers = {k: v for k, v in (err.headers or {}).items()}
    try:
        payload = json.loads(raw.decode("utf-8")) if raw else {}
    except (ValueError, UnicodeDecodeError):
        payload = {"error": raw.decode("utf-8", errors="replace")}
    if not isinstance(payload, dict):
        payload = {"value": payload}
    return status, headers, payload


class ServeClient:
    """Talk to a (possibly failing-over) serve plane, exactly once.

    Parameters
    ----------
    spool_dir:
        The service's spool root; the client rediscovers the current
        primary from ``<spool_dir>/serve.json`` after a 409 or a
        connection failure.  Optional if ``url`` is given and the
        service never fails over.
    url:
        Initial base URL (skips the first discovery read).
    client_id:
        Stable identity for the dedupe key; defaults to
        ``host-pid-random`` — unique per client instance, stable
        across every retry it makes.
    policy:
        Retry policy for ingest attempts (default: 8 attempts,
        0.1 s→2 s jittered backoff — comfortably covers a warm-standby
        failover at the default lease TTL).
    timeout:
        Per-request socket timeout in seconds.
    transport / sleep:
        Injection points for tests.
    """

    def __init__(
        self,
        spool_dir: Optional[Union[str, Path]] = None,
        *,
        url: Optional[str] = None,
        client_id: Optional[str] = None,
        policy: Optional[RetryPolicy] = None,
        timeout: float = 10.0,
        transport: Optional[Transport] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if spool_dir is None and url is None:
            raise ValueError("need spool_dir (for discovery) or url")
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.client_id = client_id or (
            f"{socket.gethostname()}-{os.getpid()}-{os.urandom(4).hex()}"
        )
        self.policy = policy or RetryPolicy(
            max_attempts=8,
            base_delay=0.1,
            multiplier=2.0,
            max_delay=2.0,
            jitter=0.5,
            # Only transport-level trouble is worth another attempt; a
            # 400-class ServeError will fail identically every time.
            retryable=lambda exc: isinstance(exc, ConnectionError),
        )
        self.timeout = timeout
        self._transport = transport or _default_transport
        self._sleep = sleep
        self._url = url
        self._seq = 0
        self.stats: Dict[str, int] = {
            "sent": 0,
            "resent": 0,
            "duplicates": 0,
            "rejected_429": 0,
            "rediscoveries": 0,
        }

    # -- discovery ------------------------------------------------------
    def discover(self) -> str:
        """The current primary's base URL (cached until invalidated)."""
        if self._url is not None:
            return self._url
        if self.spool_dir is None:
            raise ConnectionError("no URL and no spool_dir to discover from")
        discovery = self.spool_dir / "serve.json"
        try:
            doc = json.loads(discovery.read_text(encoding="utf-8"))
            self._url = str(doc["url"]).rstrip("/")
        except (OSError, ValueError, KeyError) as exc:
            raise ConnectionError(
                f"cannot discover primary from {discovery}: {exc}"
            ) from exc
        return self._url

    def _invalidate(self) -> None:
        if self.spool_dir is not None:
            # Only count it as a rediscovery when one is possible.
            self._url = None
            self.stats["rediscoveries"] += 1

    # -- ingest ---------------------------------------------------------
    @property
    def seq(self) -> int:
        """The last sequence number assigned (0 before the first post)."""
        return self._seq

    def post(self, text: str) -> Dict:
        """Ingest one Argus-CSV chunk; returns the (deduplicated) ack.

        Retries with the same sequence number until acknowledged; a
        resend the server already applied comes back as the original
        ack with ``duplicate: true``.  Raises
        :class:`~repro.resilience.retry.RetryError` when the policy is
        exhausted, :class:`ServeError` on a non-retryable rejection.
        """
        self._seq += 1
        seq = self._seq
        body = text.encode("utf-8")
        first_wire_attempt = True

        def attempt() -> Dict:
            nonlocal first_wire_attempt
            self.stats["sent"] += 1
            if not first_wire_attempt:
                self.stats["resent"] += 1
            first_wire_attempt = False
            return self._post_once(body, seq)

        reply = self.policy.call(attempt, name="serve-ingest")
        if reply.get("duplicate"):
            self.stats["duplicates"] += 1
        return reply

    def _post_once(self, body: bytes, seq: int) -> Dict:
        base = self.discover()
        url = f"{base}/ingest?client={quote(self.client_id)}&seq={seq}"
        try:
            status, headers, payload = self._transport(
                "POST", url, body, self.timeout
            )
        except (urllib.error.URLError, OSError) as exc:
            # Primary gone (refused/reset mid-failover): rediscover.
            self._invalidate()
            raise ConnectionError(f"primary unreachable: {exc}") from exc
        if status == 200:
            return payload
        if status == 429:
            self.stats["rejected_429"] += 1
            hint = headers.get("Retry-After") or payload.get("retry_after")
            try:
                delay = min(float(hint), _MAX_RETRY_AFTER)
            except (TypeError, ValueError):
                delay = 0.5
            logger.debug(
                "serve backlogged; honouring Retry-After %.1fs (seq=%d)",
                delay,
                seq,
            )
            self._sleep(delay)
            raise ConnectionError(
                f"backlog full (retry after {delay:.1f}s)"
            )
        if status == 409:
            # Fenced ex-primary answered: the lease moved.
            self._invalidate()
            raise ConnectionError(f"not the leader: {payload.get('error')}")
        if status == 503:
            self._invalidate()
            raise ConnectionError(f"unavailable: {payload.get('error')}")
        if status >= 500:
            raise ConnectionError(f"server error {status}: {payload}")
        raise ServeError(status, payload)

    # -- reads / control ------------------------------------------------
    def request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Dict:
        """One non-ingest request (``GET /verdicts``, ``POST /drain``…).

        Retries connection failures and 409s with rediscovery under
        the same policy, but carries no sequence number — only use it
        for idempotent or at-most-once control operations.
        """

        def attempt() -> Dict:
            base = self.discover()
            try:
                status, _, payload = self._transport(
                    method, f"{base}{path}", body, self.timeout
                )
            except (urllib.error.URLError, OSError) as exc:
                self._invalidate()
                raise ConnectionError(f"primary unreachable: {exc}") from exc
            if status in (409, 503) or status >= 500:
                self._invalidate()
                raise ConnectionError(f"{path} returned {status}: {payload}")
            if status >= 400:
                raise ServeError(status, payload)
            return payload

        return self.policy.call(attempt, name=f"serve-{method}-{path}")

    def verdicts(self) -> Dict:
        return self.request("GET", "/verdicts")

    def shards(self) -> Dict:
        return self.request("GET", "/shards")
