"""``repro serve`` — run the resident detection service.

Starts a :class:`~repro.serve.coordinator.ServeCoordinator`, publishes
a discovery file (``<spool-dir>/serve.json`` with the bound URL and
pid, written atomically so a poller never reads a torn file), then
blocks until SIGTERM/SIGINT or ``POST /drain``.  The drain finalises
every in-flight window, batch-rescores the spools, writes
``<spool-dir>/drain.json`` and — through the shared
:class:`~repro.obs.session.ObsSession` lifecycle — records the whole
run (funnel, suspects, checksum, degradations) into the run ledger.

With ``--ha`` the process joins a warm-standby pair instead of
unconditionally serving: it contends for the leadership lease under
``<spool-dir>/ha/``, tails the coordinator journal while standing by,
and promotes with the lease fence as its incarnation when the lease
falls to it (see :mod:`repro.serve.ha`).  SIGTERM drains a primary and
cleanly exits a standby.

Telemetry flags are the same four every CLI here speaks
(:func:`~repro.obs.session.add_observability_args`); ``--prom-port``
is unnecessary since the service port *is* a metrics endpoint, but it
keeps working for operators who want a second, read-only one.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from ..detection.pipeline import PipelineConfig
from ..obs.session import ObsSession, add_observability_args
from ..resilience import atomic_write_text
from ..stats.emd import PAIRWISE_BACKENDS
from .config import ServeConfig
from .coordinator import ServeCoordinator
from .ha import run_ha

__all__ = ["build_parser", "main"]

#: Name of the discovery file published under ``--spool-dir``.
DISCOVERY_NAME = "serve.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the resident Trader/Plotter detection service: shard "
            "hosts across persistent OnlineDetector workers, spool "
            "ingested flows durably, serve live verdicts over HTTP, "
            "and on drain produce the exact batch-pipeline verdict."
        ),
    )
    parser.add_argument(
        "--spool-dir",
        required=True,
        metavar="DIR",
        help="root of the service's durable state (per-shard segment "
        "spools, serve.json discovery file, drain.json report)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="detection worker processes (default: 2)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=6 * 3600.0,
        metavar="SECONDS",
        help="tumbling-window length D (default: 21600 = 6h)",
    )
    parser.add_argument(
        "--window-origin",
        type=float,
        default=0.0,
        metavar="T",
        help="anchor of the absolute window grid (default: 0)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="PORT",
        help="control-plane port (default: 0 = ephemeral; the bound "
        "port is published in serve.json)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="control-plane bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--segment-rows",
        type=int,
        default=None,
        metavar="N",
        help="spool segment cut threshold in rows (default: storage "
        "plane default)",
    )
    parser.add_argument(
        "--hm-backend",
        choices=sorted(PAIRWISE_BACKENDS),
        default="auto",
        help="pairwise-EMD engine for theta_hm (default: auto)",
    )
    parser.add_argument(
        "--on-parse-error",
        choices=("strict", "skip", "quarantine"),
        default="skip",
        help="ingest policy for malformed CSV rows (default: skip)",
    )
    parser.add_argument(
        "--ha",
        action="store_true",
        help="join the warm-standby pair on this spool dir: contend "
        "for the leadership lease, tail the coordinator journal while "
        "standing by, promote on takeover",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="HA leadership lease TTL; failover takes at most this "
        "plus the standby poll interval (default: 5)",
    )
    parser.add_argument(
        "--standby-poll",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="standby lease-retry / journal-tail interval (default: 0.25)",
    )
    parser.add_argument(
        "--max-backlog-rows",
        type=int,
        default=None,
        metavar="N",
        help="admission-control watermark: reject ingest with 429 + "
        "Retry-After while more than N forwarded rows await worker "
        "acks (default: unbounded)",
    )
    parser.add_argument(
        "--verdict-db",
        default=None,
        metavar="PATH",
        help="record every finalised window verdict (and the drain "
        "rescore) into this SQLite verdict database — the query "
        "plane's cross-window history; also enables the /query/* "
        "routes (default: off)",
    )
    parser.add_argument(
        "--volatile-acks",
        action="store_true",
        help="restore the pre-HA volatile ack path (no per-chunk "
        "segment cut or journal append before the 200): faster, "
        "at-least-once across coordinator death, incompatible "
        "with --ha",
    )
    add_observability_args(parser)
    return parser


#: Drain-report keys copied into the run ledger's ``serve`` annotation.
_ANNOTATED_KEYS = (
    "rows_ingested",
    "rows_rescored",
    "windows_finalized",
    "duplicate_verdicts",
    "duplicate_chunks",
    "restarts",
    "epochs",
    "incarnation",
    "quarantined_shards",
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.ha and args.volatile_acks:
        parser.error("--ha requires durable acks (drop --volatile-acks)")
    config = ServeConfig(
        spool_dir=args.spool_dir,
        n_shards=args.shards,
        window=args.window,
        window_origin=args.window_origin,
        port=args.port,
        host=args.host,
        segment_rows=args.segment_rows,
        pipeline=PipelineConfig(hm_backend=args.hm_backend),
        on_parse_error=args.on_parse_error,
        durable_acks=not args.volatile_acks,
        max_backlog_rows=args.max_backlog_rows,
        lease_ttl=args.lease_ttl,
        standby_poll=args.standby_poll,
        verdict_db=args.verdict_db,
    )
    session = ObsSession.from_args(
        args,
        kind="serve",
        config=config.to_dict(),
        command=["repro", "serve"] + list(argv or sys.argv[1:]),
    )
    if args.ha:
        return _main_ha(config, session)
    return _main_solo(config, session)


def _main_ha(config: ServeConfig, session: ObsSession) -> int:
    shutdown = threading.Event()

    def _request_shutdown(signum, frame):
        shutdown.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)

    with session:
        outcome = run_ha(
            config,
            shutdown=shutdown,
            announce=lambda message: print(
                f"repro serve [ha]: {message}", file=sys.stderr
            ),
        )
        if outcome is None:
            # Stood down without draining (standby shutdown, or the
            # journal was already drained by another node).
            session.annotate(serve={"role": "standby"})
            return 0
        result, report = outcome
        session.record_result(result)
        session.annotate(
            serve={key: report[key] for key in _ANNOTATED_KEYS}
        )
        print(json.dumps(report, sort_keys=True))
    return 0


def _main_solo(config: ServeConfig, session: ObsSession) -> int:
    coordinator = ServeCoordinator(config)

    def _request_drain(signum, frame):
        coordinator.drain_requested.set()

    signal.signal(signal.SIGTERM, _request_drain)
    signal.signal(signal.SIGINT, _request_drain)

    with session:
        coordinator.start()
        discovery = Path(config.spool_dir) / DISCOVERY_NAME
        atomic_write_text(
            discovery,
            json.dumps(
                {
                    "url": coordinator.url,
                    "port": coordinator.server.port,
                    "pid": os.getpid(),
                    "n_shards": config.n_shards,
                    "window": config.window,
                    "incarnation": coordinator.incarnation,
                    "role": "solo",
                },
                sort_keys=True,
            )
            + "\n",
        )
        print(f"repro serve listening on {coordinator.url}", file=sys.stderr)
        try:
            coordinator.drain_requested.wait()
            result, report = coordinator.drain()
            session.record_result(result)
            session.annotate(
                serve={key: report[key] for key in _ANNOTATED_KEYS}
            )
            print(json.dumps(report, sort_keys=True))
        finally:
            coordinator.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
