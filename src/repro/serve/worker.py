"""The per-shard detection worker process.

Each worker owns one :class:`~repro.detection.incremental.OnlineDetector`
over its shard's hosts and speaks a tiny command protocol with the
coordinator over a pair of multiprocessing queues (fresh queues per
incarnation — a SIGKILLed producer can leave a queue unusable, so a
replacement worker never inherits its predecessor's):

inbox (coordinator → worker)
    ``("flows", seq, rows)`` — ingest projected flow rows;
    ``("evaluate", seq, at)`` — score the current (unfinished) window;
    ``("finalize", seq, at)`` — tumble the current window early
    (drain / rebalance barrier);
    ``("stop", seq)`` — ship everything unshipped and exit.

outbox (worker → coordinator), one shape for every message:
    ``(kind, shard, incarnation, seq, payload, finals, delta)`` where
    ``finals`` is the list of finalised-window verdicts not yet
    shipped and ``delta`` is the worker registry's metric delta since
    the previous ship (:meth:`~repro.obs.metrics.MetricsRegistry.delta_since`)
    — the same delta channel the parallel extraction pool uses.

Workers are intentionally stateless beyond the current window: the
coordinator owns the per-shard spool, so a killed worker's replacement
simply replays the spool from the last finalised window boundary
(``replay_t0``) on the same window grid (``window_origin``) and ends up
scoring the identical window the dead worker was filling.  Flows are
projected onto the storage plane's five columns before they travel
(:func:`row_of` / :func:`record_of`), so live ingest and spool replay
feed the detector byte-for-byte the same records.
"""

from __future__ import annotations

import json
import os
from queue import Empty
from typing import List, Optional, Tuple

from ..detection.incremental import OnlineDetector
from ..flows.record import FlowRecord, FlowState, Protocol
from ..obs import metrics as obs_metrics
from ..resilience import faults
from ..storage import SegmentStore
from ..storage.format import StorageError
from .config import ServeConfig

__all__ = ["row_of", "record_of", "replay_records", "worker_main"]

#: The projected row a flow travels as: (src, dst, start, src_bytes,
#: success) — exactly the columns the storage plane keeps and the
#: features consume.
Row = Tuple[str, str, float, int, bool]


def row_of(flow: FlowRecord) -> Row:
    """Project a flow onto the wire/storage columns."""
    return (
        flow.src,
        flow.dst,
        flow.start,
        flow.src_bytes,
        not flow.state.failed,
    )


def record_of(row: Row) -> FlowRecord:
    """Rebuild the synthetic record a projected row stands for.

    Identical construction to
    :meth:`repro.storage.view.StoreView._records`, so a record ingested
    live equals the record a spool replay would rebuild for the same
    row — the detector cannot tell the two paths apart.
    """
    src, dst, start, src_bytes, success = row
    return FlowRecord(
        src=src,
        dst=dst,
        sport=0,
        dport=0,
        proto=Protocol.TCP,
        start=start,
        end=start,
        src_bytes=src_bytes,
        state=FlowState.ESTABLISHED if success else FlowState.TIMEOUT,
    )


def replay_records(
    spool_dir: str, replay_t0: Optional[float]
) -> List[FlowRecord]:
    """The shard spool's rows from ``replay_t0`` on, time-ordered.

    The gather returns rows grouped by host; tumbling-window ingest
    needs global time order (a late host group would straddle an
    already-tumbled boundary), so the records are stable-sorted by
    start — per-host order is already start-sorted and survives.
    Returns ``[]`` when the spool is missing, unreadable or empty: a
    fresh worker with nothing to replay.
    """
    try:
        store = SegmentStore.open(spool_dir)
    except (StorageError, OSError):
        return []
    if store.total_rows == 0:
        return []
    records = store.view(t0=replay_t0).records()
    records.sort(key=lambda record: record.start)
    return records


def worker_main(
    shard: int,
    incarnation: int,
    config: ServeConfig,
    inbox,
    outbox,
    spool_dir: str,
    replay_t0: Optional[float],
) -> None:
    """Run one shard's detection loop until told to stop (or killed)."""
    obs_metrics.enable()
    registry = obs_metrics.get_registry()
    baseline = registry.state()

    score_all = config.internal_hosts is None
    detector = OnlineDetector(
        internal_hosts=(
            set() if score_all else set(config.internal_hosts)
        ),
        window=config.window,
        config=config.pipeline,
        window_origin=config.window_origin,
    )

    def ingest(record: FlowRecord) -> None:
        if score_all:
            detector.internal_hosts.add(record.src)
        detector.ingest(record)

    replayed = replay_records(spool_dir, replay_t0)
    for record in replayed:
        ingest(record)

    shipped = 0

    def ship(kind: str, seq: int, payload: object) -> None:
        nonlocal baseline, shipped
        finals = [
            json.loads(verdict.to_json())
            for verdict in detector.history[shipped:]
        ]
        shipped = len(detector.history)
        delta = registry.delta_since(baseline)
        baseline = registry.state()
        outbox.put((kind, shard, incarnation, seq, payload, finals, delta))

    ship("hello", 0, {"pid": os.getpid(), "replayed": len(replayed)})

    # Orphan watchdog: if the coordinator is SIGKILLed it can never
    # send "stop", and a worker blocked forever on the inbox would
    # linger as an orphan holding the coordinator's inherited pipes
    # (hanging anything that waits for their EOF).  A reparented
    # worker's state is unreachable anyway — the promoted standby
    # spawns fresh workers over the same spool — so exit quietly.
    parent = os.getppid()
    while True:
        try:
            message = inbox.get(timeout=1.0)
        except Empty:
            if os.getppid() != parent:
                return
            continue
        command, seq = message[0], message[1]
        if command == "flows":
            rows = message[2]
            for row in rows:
                ingest(record_of(row))
            # The injected OOM-kill strikes here — after a batch is in
            # window state but before anything ships — so recovery
            # tests exercise the full replay path, not a lucky
            # already-shipped corner.
            faults.serve_worker_exit_once()
            ship("ack", seq, {"rows": len(rows)})
        elif command == "evaluate":
            verdict = detector.evaluate(message[2])
            ship("evaluated", seq, json.loads(verdict.to_json()))
        elif command == "finalize":
            verdict = detector.finalize_window(message[2])
            ship(
                "finalized",
                seq,
                None if verdict is None else json.loads(verdict.to_json()),
            )
        elif command == "stop":
            ship("stopped", seq, None)
            break
        else:  # pragma: no cover - protocol misuse is a programming error
            ship("error", seq, {"unknown_command": str(command)})
