"""Stable host → shard assignment.

The shard function must be deterministic *across processes and runs*:
a restarted coordinator, a replaying worker and the test suite all
have to agree on where a host lives.  Python's builtin ``hash`` is
salted per process, so the assignment hashes the host address with
blake2b instead — stable everywhere, uniform enough that shards stay
balanced without any coordination state.

Sharding by *host* (not by flow) is what makes per-shard detection
sound: every flow a host initiates lands in the same shard's spool and
the same worker's window state, so per-host features are computed from
complete evidence no matter how many shards there are.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

__all__ = ["shard_of", "ShardMap", "rebalance_moves"]


def shard_of(host: str, n_shards: int) -> int:
    """The shard index for ``host`` — stable across processes and runs."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    digest = hashlib.blake2b(host.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


class ShardMap:
    """The host partition for one shard-count epoch."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)

    def shard_of(self, host: str) -> int:
        return shard_of(host, self.n_shards)

    def partition(self, hosts: Iterable[str]) -> Dict[int, List[str]]:
        """Hosts grouped by shard (every shard present, sorted hosts)."""
        groups: Dict[int, List[str]] = {i: [] for i in range(self.n_shards)}
        for host in hosts:
            groups[self.shard_of(host)].append(host)
        for members in groups.values():
            members.sort()
        return groups

    def __repr__(self) -> str:
        return f"ShardMap(n_shards={self.n_shards})"


def rebalance_moves(
    hosts: Iterable[str], old_n: int, new_n: int
) -> List[Tuple[str, int, int]]:
    """Hosts whose shard changes when the shard count does.

    Returns sorted ``(host, old_shard, new_shard)`` triples — the plan
    a rebalance executes (and the thing its tests pin: deterministic,
    empty when ``old_n == new_n``, total over the moved hosts).
    """
    moves: List[Tuple[str, int, int]] = []
    for host in sorted(set(hosts)):
        old = shard_of(host, old_n)
        new = shard_of(host, new_n)
        if old != new:
            moves.append((host, old, new))
    return moves
