"""The service control plane: routes mounted on the metrics server.

`repro serve` does not grow a second HTTP stack — it mounts handlers
on the PR 7 :class:`~repro.obs.http.MetricsServer` (see its ``routes``
parameter), so ``/metrics``, ``/healthz`` and ``/summary`` come for
free on the same port as the service endpoints:

==========  =============  ==================================================
method      path           meaning
==========  =============  ==================================================
``POST``    ``/ingest``    Argus-CSV body → spool + forward to workers
``GET``     ``/verdicts``  finalised-window verdicts, cumulative suspects
``GET``     ``/shards``    topology, worker pids/incarnations, restarts
``POST``    ``/evaluate``  score every shard's current window (no tumble)
``POST``    ``/rebalance`` ``{"n_shards": N}`` → epoch barrier + respawn
``POST``    ``/drain``     request SIGTERM-equivalent drain (async, 202)
==========  =============  ==================================================

``/drain`` only *requests* the drain: the handler runs inside the very
server the drain tears down, so it flips
:attr:`~repro.serve.coordinator.ServeCoordinator.drain_requested` and
returns immediately; whoever runs the service (the CLI main loop)
performs the actual drain.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from ..obs.http import RouteHandler
from .coordinator import ServeCoordinator

__all__ = ["build_routes"]


def build_routes(
    coordinator: ServeCoordinator,
) -> Dict[Tuple[str, str], RouteHandler]:
    """The ``(method, path) -> handler`` map for one coordinator."""

    def ingest(body, query):
        if coordinator.draining:
            return 503, {"error": "service is draining; ingest is closed"}
        if not body:
            return 400, {"error": "empty ingest body (expected Argus CSV)"}
        return 200, coordinator.ingest(body.decode("utf-8"))

    def verdicts(body, query):
        return 200, coordinator.verdicts_doc()

    def shards(body, query):
        return 200, coordinator.shards_doc()

    def evaluate(body, query):
        if coordinator.draining:
            return 503, {"error": "service is draining"}
        return 200, coordinator.evaluate()

    def rebalance(body, query):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            n_shards = int(payload["n_shards"])
        except (ValueError, KeyError, UnicodeDecodeError):
            return 400, {"error": 'expected JSON body {"n_shards": N}'}
        try:
            return 200, coordinator.rebalance(n_shards)
        except (ValueError, RuntimeError) as exc:
            return 409, {"error": str(exc)}

    def drain(body, query):
        coordinator.drain_requested.set()
        return 202, {"draining": True}

    return {
        ("POST", "/ingest"): ingest,
        ("GET", "/verdicts"): verdicts,
        ("GET", "/shards"): shards,
        ("POST", "/evaluate"): evaluate,
        ("POST", "/rebalance"): rebalance,
        ("POST", "/drain"): drain,
    }
