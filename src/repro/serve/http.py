"""The service control plane: routes mounted on the metrics server.

`repro serve` does not grow a second HTTP stack — it mounts handlers
on the PR 7 :class:`~repro.obs.http.MetricsServer` (see its ``routes``
parameter), so ``/metrics``, ``/healthz`` and ``/summary`` come for
free on the same port as the service endpoints:

==================  ==================  ==================================
method              path                meaning
==================  ==================  ==================================
``POST``            ``/ingest``         Argus-CSV body → spool + forward
``GET``             ``/verdicts``       finalised-window verdicts
``GET``             ``/shards``         topology, worker pids, restarts
``POST``            ``/evaluate``       score current windows (no tumble)
``POST``            ``/rebalance``      ``{"n_shards": N}`` → new epoch
``POST``            ``/drain``          request drain (async, 202)
``GET``             ``/query/why``      evidence trail (``?host=H``)
``GET``             ``/query/history``  verdict history (``?host=H``)
==================  ==================  ==================================

``GET /verdicts`` accepts ``?host=H&since=T``: ``host`` keeps only
windows in which H was evaluated (in ``reduced`` or ``suspects``),
``since`` keeps only windows finalised at/after epoch-seconds T.
Filters apply to the *deduplicated* verdict set.

The ``/query/*`` routes are the serve plane's door into the query
subsystem's verdict DB; they answer 404 unless the service was started
with ``verdict_db`` configured (``repro serve --verdict-db PATH``).

``POST /ingest`` accepts two optional query parameters,
``?client=ID&seq=N``: a stable client id plus a monotonically
increasing per-client sequence number.  With them, a resent chunk
(after a timeout, a 5xx, or a coordinator failover) is deduplicated
exactly once and answered with the original ack —
:class:`~repro.serve.client.ServeClient` sets them automatically.
Ingest signals pushback with real status codes: **429** (+
``Retry-After`` seconds) when the worker backlog is over the
admission watermark, **409** when this coordinator has lost its HA
leadership lease (re-read ``serve.json`` and retry against the new
primary), **503** while draining.

``/drain`` only *requests* the drain: the handler runs inside the very
server the drain tears down, so it flips
:attr:`~repro.serve.coordinator.ServeCoordinator.drain_requested` and
returns immediately; whoever runs the service (the CLI main loop)
performs the actual drain.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple
from urllib.parse import parse_qs

from ..obs.http import RouteHandler
from .coordinator import BacklogFull, NotLeader, ServeCoordinator

__all__ = ["build_routes"]


def build_routes(
    coordinator: ServeCoordinator,
) -> Dict[Tuple[str, str], RouteHandler]:
    """The ``(method, path) -> handler`` map for one coordinator."""

    def ingest(body, query):
        if coordinator.draining:
            return 503, {"error": "service is draining; ingest is closed"}
        if not body:
            return 400, {"error": "empty ingest body (expected Argus CSV)"}
        params = parse_qs(query)
        client = (params.get("client") or [None])[0]
        raw_seq = (params.get("seq") or [None])[0]
        seq = None
        if raw_seq is not None:
            try:
                seq = int(raw_seq)
            except ValueError:
                return 400, {"error": f"seq must be an integer, got {raw_seq!r}"}
        try:
            return 200, coordinator.ingest(
                body.decode("utf-8"), client=client, seq=seq
            )
        except BacklogFull as exc:
            return (
                429,
                {
                    "error": str(exc),
                    "backlog_rows": exc.backlog_rows,
                    "max_backlog_rows": exc.watermark,
                    "retry_after": exc.retry_after,
                },
                {"Retry-After": f"{exc.retry_after:.1f}"},
            )
        except NotLeader as exc:
            return 409, {"error": str(exc), "not_leader": True}
        except ValueError as exc:
            # Bad client/seq combination, or a strict-mode parse error
            # — the request is malformed, not the service.
            return 400, {"error": str(exc)}

    def verdicts(body, query):
        params = parse_qs(query)
        host = (params.get("host") or [None])[0]
        raw_since = (params.get("since") or [None])[0]
        since = None
        if raw_since is not None:
            try:
                since = float(raw_since)
            except ValueError:
                return 400, {
                    "error": f"since must be a timestamp, got {raw_since!r}"
                }
        return 200, coordinator.verdicts_doc(host=host, since=since)

    def _query_params(query):
        params = parse_qs(query)
        host = (params.get("host") or [None])[0]
        if not host:
            return None, (400, {"error": "host query parameter is required"})
        return params, None

    def query_why(body, query):
        db = coordinator.verdict_db
        if db is None:
            return 404, {"error": "no verdict DB attached (--verdict-db)"}
        params, err = _query_params(query)
        if err is not None:
            return err
        host = params["host"][0]
        raw_window = (params.get("window") or [None])[0]
        try:
            window = int(raw_window) if raw_window is not None else None
        except ValueError:
            return 400, {"error": f"window must be an id, got {raw_window!r}"}
        doc = db.why(host, window)
        if doc is None:
            return 404, {"error": f"no recorded verdicts for {host!r}"}
        return 200, doc

    def query_history(body, query):
        db = coordinator.verdict_db
        if db is None:
            return 404, {"error": "no verdict DB attached (--verdict-db)"}
        params, err = _query_params(query)
        if err is not None:
            return err
        host = params["host"][0]
        raw_since = (params.get("since") or [None])[0]
        try:
            since = float(raw_since) if raw_since is not None else None
        except ValueError:
            return 400, {
                "error": f"since must be a timestamp, got {raw_since!r}"
            }
        return 200, {"host": host, "windows": db.history(host, since=since)}

    def shards(body, query):
        return 200, coordinator.shards_doc()

    def evaluate(body, query):
        if coordinator.draining:
            return 503, {"error": "service is draining"}
        return 200, coordinator.evaluate()

    def rebalance(body, query):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            n_shards = int(payload["n_shards"])
        except (ValueError, KeyError, UnicodeDecodeError):
            return 400, {"error": 'expected JSON body {"n_shards": N}'}
        try:
            return 200, coordinator.rebalance(n_shards)
        except (ValueError, RuntimeError) as exc:
            return 409, {"error": str(exc)}

    def drain(body, query):
        coordinator.drain_requested.set()
        return 202, {"draining": True}

    return {
        ("POST", "/ingest"): ingest,
        ("GET", "/verdicts"): verdicts,
        ("GET", "/shards"): shards,
        ("POST", "/evaluate"): evaluate,
        ("POST", "/rebalance"): rebalance,
        ("POST", "/drain"): drain,
        ("GET", "/query/why"): query_why,
        ("GET", "/query/history"): query_history,
    }
