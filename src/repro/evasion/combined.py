"""Combined evasion: a botmaster who attacks every test at once.

§VI quantifies the cost of evading each test *separately*.  A rational
adversary applies all the behavioural changes together — inflating
per-flow volume past τ_vol, padding new-IP contacts past τ_churn, and
jittering repeat-contact timing against θ_hm — and pays all the costs
together (more conspicuous traffic, scanning-like contact patterns,
minutes of command latency).  This module composes the three
transformations and reports the total traffic overhead the evasion
adds, so the defender's "evasion is expensive" claim can be priced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..datasets.honeynet import HoneynetTrace
from .churn_inflation import pad_trace
from .jitter import jitter_trace
from .volume_inflation import inflate_trace

__all__ = ["EvasionPlan", "EvasionCost", "apply_evasion_plan"]


@dataclass(frozen=True)
class EvasionPlan:
    """The behavioural changes the botmaster ships in the next binary.

    ``volume_factor`` multiplies uploaded bytes per flow;
    ``churn_target`` is the new-IP fraction to pad up to (``None`` to
    skip); ``jitter`` is the ±d half-width applied to repeat contacts.
    """

    volume_factor: float = 1.0
    churn_target: Optional[float] = None
    jitter: float = 0.0
    pad_bytes: int = 64

    def __post_init__(self) -> None:
        if self.volume_factor < 1.0:
            raise ValueError("evasion never *shrinks* flows; factor >= 1")
        if self.churn_target is not None and not 0.0 <= self.churn_target < 1.0:
            raise ValueError("churn target must lie in [0, 1)")
        if self.jitter < 0.0:
            raise ValueError("jitter half-width must be non-negative")
        if self.pad_bytes <= 0:
            raise ValueError("pad flows must carry at least one byte")


@dataclass(frozen=True)
class EvasionCost:
    """The overhead the plan added, measured on the transformed trace."""

    extra_upload_bytes: int
    extra_flows: int
    upload_overhead: float  # fraction of the original upload volume
    flow_overhead: float  # fraction of the original flow count


def apply_evasion_plan(
    trace: HoneynetTrace,
    plan: EvasionPlan,
    rng: random.Random,
    address_factory: Callable[[random.Random], str],
    horizon: Optional[float] = None,
) -> "tuple[HoneynetTrace, EvasionCost]":
    """Apply a full evasion plan; return the new trace and its cost.

    Order matters and mirrors what the binary would do: flows are
    padded (volume), extra one-time contacts are added (churn), and
    finally the timing of repeat contacts is randomised (jitter) —
    jitter applies to the padded flows too, since the binary emits them
    all.
    """
    bot_set = set(trace.bots)

    def bot_upload(t: HoneynetTrace) -> int:
        return sum(f.src_bytes for f in t.store if f.src in bot_set)

    def bot_flows(t: HoneynetTrace) -> int:
        return sum(1 for f in t.store if f.src in bot_set)

    base_bytes = bot_upload(trace)
    base_flows = bot_flows(trace)

    evaded = trace
    if plan.volume_factor > 1.0:
        evaded = inflate_trace(evaded, plan.volume_factor)
    if plan.churn_target is not None:
        evaded = pad_trace(
            evaded, plan.churn_target, rng, address_factory,
            pad_bytes=plan.pad_bytes,
        )
    if plan.jitter > 0.0:
        evaded = jitter_trace(evaded, plan.jitter, rng, horizon)

    new_bytes = bot_upload(evaded)
    new_flows = bot_flows(evaded)
    cost = EvasionCost(
        extra_upload_bytes=new_bytes - base_bytes,
        extra_flows=new_flows - base_flows,
        upload_overhead=(
            (new_bytes - base_bytes) / base_bytes if base_bytes else 0.0
        ),
        flow_overhead=(
            (new_flows - base_flows) / base_flows if base_flows else 0.0
        ),
    )
    return evaded, cost
