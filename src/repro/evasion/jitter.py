"""Interstitial-time jitter evasion (§VI, Figure 12).

To escape θ_hm a botmaster can have every bot add (or subtract) a random
delay before each connection to a previously-contacted peer, drawn
uniformly from ±d.  The paper simulates exactly this on its Plotter
traces and measures how the true-positive rate decays with d; this
module is that transformation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..datasets.honeynet import HoneynetTrace
from ..flows.record import FlowRecord
from ..flows.store import FlowStore

__all__ = ["jitter_flows", "jitter_trace"]


def jitter_flows(
    flows: List[FlowRecord],
    d: float,
    rng: random.Random,
    horizon: Optional[float] = None,
) -> List[FlowRecord]:
    """Apply ±d uniform start-time jitter to repeat-contact flows.

    Only flows to destinations the host has *already contacted* are
    delayed, as in the paper ("before every connection a Plotter makes
    to a peer with which it had previously communicated").  First
    contacts keep their timing — delaying those would change peer
    discovery, not hide periodicity.

    A connection delayed past the observation window (or advanced past
    its start) is simply *not observed* and is dropped — clamping it to
    the boundary would pile flows onto one timestamp and hand the
    botnet a brand-new shared timing fingerprint (zero-gap spikes),
    which is a simulation artifact, not an evasion property.
    """
    if d < 0:
        raise ValueError("jitter range d must be non-negative")
    seen: set = set()
    jittered: List[FlowRecord] = []
    for flow in sorted(flows, key=lambda f: f.start):
        if flow.dst in seen and d > 0:
            delta = rng.uniform(-d, d)
            new_start = flow.start + delta
            if new_start < 0:
                seen.add(flow.dst)
                continue  # moved before the capture: unobserved
            if horizon is not None and new_start > horizon:
                seen.add(flow.dst)
                continue  # moved past the window: unobserved
            jittered.append(flow.shifted(new_start - flow.start))
        else:
            jittered.append(flow)
        seen.add(flow.dst)
    return jittered


def jitter_trace(
    trace: HoneynetTrace,
    d: float,
    rng: random.Random,
    horizon: Optional[float] = None,
) -> HoneynetTrace:
    """A copy of a honeynet trace with per-bot jitter applied.

    Only the bots' *initiated* connections are delayed (those are the
    ones the evading binary controls); inbound flows from remote peers
    pass through untouched.
    """
    flows: List[FlowRecord] = []
    for bot in trace.bots:
        flows.extend(jitter_flows(trace.store.flows_from(bot), d, rng, horizon))
    bot_set = set(trace.bots)
    flows.extend(f for f in trace.store if f.src not in bot_set)
    return HoneynetTrace(
        botnet=trace.botnet, bots=trace.bots, store=FlowStore(flows)
    )
