"""Volume-inflation evasion (§VI, Figure 11(a)).

To escape θ_vol a Plotter must push its average uploaded bytes per flow
*above* τ_vol.  Because τ_vol is the median over all surviving hosts,
the Plotter cannot observe the value it must beat; the paper quantifies
the cost as the multiplicative factor between the threshold and the
median Plotter's current value (~5× for Storm, ~1.3× for Nugache).
"""

from __future__ import annotations

from typing import List

from ..datasets.honeynet import HoneynetTrace
from ..flows.record import FlowRecord
from ..flows.store import FlowStore

__all__ = ["inflate_flows", "inflate_trace", "required_inflation_factor"]


def inflate_flows(flows: List[FlowRecord], factor: float) -> List[FlowRecord]:
    """Scale the uploaded bytes of every flow by ``factor``.

    Models a bot padding its messages; packet counts are left alone
    (padding rides in bigger datagrams), which is conservative in the
    bot's favour.
    """
    if factor < 0:
        raise ValueError("inflation factor must be non-negative")
    return [flow.scaled_volume(factor) for flow in flows]


def inflate_trace(trace: HoneynetTrace, factor: float) -> HoneynetTrace:
    """A copy of a honeynet trace with every bot's upload volume scaled.

    Inbound flows from remote peers are not the bot's to pad; they pass
    through unchanged.
    """
    flows: List[FlowRecord] = []
    for bot in trace.bots:
        flows.extend(inflate_flows(trace.store.flows_from(bot), factor))
    bot_set = set(trace.bots)
    flows.extend(f for f in trace.store if f.src not in bot_set)
    return HoneynetTrace(
        botnet=trace.botnet, bots=trace.bots, store=FlowStore(flows)
    )


def required_inflation_factor(current: float, threshold: float) -> float:
    """The factor by which a value must grow to reach ``threshold``.

    This is the Figure 11(a) quantity: threshold ÷ the (median)
    Plotter's average flow size.  Values ≤ 1 mean the host already
    clears the threshold.
    """
    if current <= 0:
        raise ValueError("current average flow size must be positive")
    return max(threshold / current, 0.0)
