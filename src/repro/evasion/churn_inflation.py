"""Churn-inflation evasion (§VI, Figure 11(b)).

To escape θ_churn a Plotter must raise its fraction of newly-contacted
IPs above τ_churn while still talking to its real peers.  The only way
to do that without dropping peers is to *add* one-time contacts to
fresh addresses — which is exactly the scanning-like behaviour that
makes the bot conspicuous elsewhere.  The paper quantifies the cost as
the factor by which the new-IP fraction must grow (≥1.5×).
"""

from __future__ import annotations

import math
import random
from typing import Callable, List

from ..datasets.honeynet import HoneynetTrace
from ..flows.record import FlowRecord, FlowState, Protocol
from ..flows.store import FlowStore

__all__ = [
    "required_new_contacts",
    "required_churn_factor",
    "pad_with_new_contacts",
    "pad_trace",
]


def required_churn_factor(current_fraction: float, threshold: float) -> float:
    """The multiplicative growth in new-IP fraction needed to evade.

    The Figure 11(b) quantity: τ_churn ÷ the (median) Plotter's current
    new-IP fraction.  Values ≤ 1 mean the host already evades.
    """
    if current_fraction <= 0:
        return math.inf
    return max(threshold / current_fraction, 0.0)


def required_new_contacts(
    n_existing_dests: int, current_new: int, target_fraction: float
) -> int:
    """One-time contacts needed to reach ``target_fraction`` new IPs.

    With ``n_existing_dests`` total destinations of which
    ``current_new`` are new, adding ``k`` fresh one-time destinations
    (all new by construction) yields fraction
    ``(current_new + k) / (n_existing_dests + k)``; solve for the least
    integer ``k`` reaching the target.  Returns 0 when already above,
    raises ``ValueError`` for an unreachable target (≥ 1).
    """
    if not 0.0 <= target_fraction < 1.0:
        raise ValueError("target fraction must lie in [0, 1)")
    if n_existing_dests <= 0:
        return 0
    current = current_new / n_existing_dests
    if current >= target_fraction:
        return 0
    k = (target_fraction * n_existing_dests - current_new) / (1.0 - target_fraction)
    # Guard against float slop pushing an exact solution over the next
    # integer (e.g. 800.0000000003 -> 801).
    return int(math.ceil(k - 1e-9))


def pad_with_new_contacts(
    flows: List[FlowRecord],
    host: str,
    count: int,
    rng: random.Random,
    address_factory: Callable[[random.Random], str],
    grace_period: float = 3600.0,
    pad_bytes: int = 64,
) -> List[FlowRecord]:
    """Add ``count`` one-time contacts to fresh addresses after hour one.

    The padding flows are spread over the remainder of the host's
    activity window, *after* the churn metric's grace period (contacts
    inside it would not count as new).  ``pad_bytes`` sets their size:
    the default mimics small control messages, but a bot evading the
    volume test *simultaneously* must pad with large flows — small pads
    drag its average bytes/flow back under τ_vol (see the combined-
    evasion experiment).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not flows:
        return list(flows)
    ordered = sorted(flows, key=lambda f: f.start)
    t0 = ordered[0].start
    t1 = max(f.start for f in ordered)
    window_start = t0 + grace_period
    if t1 <= window_start:
        t1 = window_start + 1.0
    padded = list(flows)
    for _ in range(count):
        start = rng.uniform(window_start, t1)
        padded.append(
            FlowRecord(
                src=host,
                dst=address_factory(rng),
                sport=rng.randint(1024, 65000),
                dport=rng.randint(1024, 65000),
                proto=Protocol.UDP,
                start=start,
                end=start + 2.0,
                src_bytes=pad_bytes,
                dst_bytes=0,
                src_pkts=max(1, pad_bytes // 800),
                dst_pkts=0,
                state=FlowState.TIMEOUT,
            )
        )
    return padded


def pad_trace(
    trace: HoneynetTrace,
    target_fraction: float,
    rng: random.Random,
    address_factory: Callable[[random.Random], str],
    grace_period: float = 3600.0,
    pad_bytes: int = 64,
) -> HoneynetTrace:
    """Pad every bot of a trace up to the target new-IP fraction."""
    from ..flows.metrics import new_ip_fraction

    flows: List[FlowRecord] = []
    for bot in trace.bots:
        bot_flows = trace.store.flows_from(bot)
        dests = {f.dst for f in bot_flows}
        current = new_ip_fraction(bot_flows, grace_period)
        count = required_new_contacts(
            len(dests), int(round(current * len(dests))), target_fraction
        )
        flows.extend(
            pad_with_new_contacts(
                bot_flows, bot, count, rng, address_factory, grace_period,
                pad_bytes,
            )
        )
    bot_set = set(trace.bots)
    flows.extend(f for f in trace.store if f.src not in bot_set)
    return HoneynetTrace(
        botnet=trace.botnet, bots=trace.bots, store=FlowStore(flows)
    )
