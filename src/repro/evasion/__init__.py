"""Evasion transformations and cost measures (§VI of the paper)."""

from .jitter import jitter_flows, jitter_trace
from .volume_inflation import (
    inflate_flows,
    inflate_trace,
    required_inflation_factor,
)
from .combined import EvasionCost, EvasionPlan, apply_evasion_plan
from .churn_inflation import (
    pad_trace,
    pad_with_new_contacts,
    required_churn_factor,
    required_new_contacts,
)

__all__ = [
    "EvasionCost",
    "EvasionPlan",
    "apply_evasion_plan",
    "jitter_flows",
    "jitter_trace",
    "inflate_flows",
    "inflate_trace",
    "required_inflation_factor",
    "pad_trace",
    "pad_with_new_contacts",
    "required_churn_factor",
    "required_new_contacts",
]
