"""Statistics substrate: histograms, EMD, clustering, thresholds, ROC."""

from .histogram import Histogram, build_histogram, freedman_diaconis_width
from .emd import (
    PAIRWISE_BACKENDS,
    PARALLEL_MIN_HOSTS,
    PRUNED_MIN_HOSTS,
    VECTORIZED_MIN_HOSTS,
    emd,
    emd_1d,
    emd_transport,
    pairwise_emd,
    resolve_backend,
    signature_arrays,
)
from .emdindex import (
    EmdIndex,
    PruneReport,
    build_index,
    pruned_matrix,
    pruned_partition,
)
from .clustering import (
    DEFAULT_CUT_FRACTION,
    Dendrogram,
    Merge,
    average_linkage,
    cluster_by_emd_cut,
    cluster_diameter,
    cluster_diameters,
    cut_top_links,
)
from .thresholds import (
    median_threshold,
    percentile_threshold,
    select_above,
    select_below,
)
from .roc import (
    PERCENTILE_SWEEP,
    RocCurve,
    RocPoint,
    confusion_rates,
    roc_from_selections,
)
from .ecdf import ecdf, ecdf_at, quantile_series
from .bootstrap import ConfidenceInterval, bootstrap_mean_ci
from .dendro import (
    cophenetic_correlation,
    cophenetic_matrix,
    render_dendrogram,
)

__all__ = [
    "Histogram",
    "build_histogram",
    "freedman_diaconis_width",
    "emd",
    "emd_1d",
    "emd_transport",
    "pairwise_emd",
    "resolve_backend",
    "signature_arrays",
    "PAIRWISE_BACKENDS",
    "VECTORIZED_MIN_HOSTS",
    "PARALLEL_MIN_HOSTS",
    "PRUNED_MIN_HOSTS",
    "EmdIndex",
    "PruneReport",
    "build_index",
    "pruned_matrix",
    "pruned_partition",
    "DEFAULT_CUT_FRACTION",
    "Dendrogram",
    "Merge",
    "average_linkage",
    "cluster_by_emd_cut",
    "cluster_diameter",
    "cluster_diameters",
    "cut_top_links",
    "median_threshold",
    "percentile_threshold",
    "select_above",
    "select_below",
    "PERCENTILE_SWEEP",
    "RocCurve",
    "RocPoint",
    "confusion_rates",
    "roc_from_selections",
    "ecdf",
    "ecdf_at",
    "quantile_series",
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "cophenetic_correlation",
    "cophenetic_matrix",
    "render_dendrogram",
]
