"""Statistics substrate: histograms, EMD, clustering, thresholds, ROC."""

from .histogram import Histogram, build_histogram, freedman_diaconis_width
from .emd import (
    PAIRWISE_BACKENDS,
    emd,
    emd_1d,
    emd_transport,
    pairwise_emd,
    signature_arrays,
)
from .clustering import (
    DEFAULT_CUT_FRACTION,
    Dendrogram,
    Merge,
    average_linkage,
    cluster_by_emd_cut,
    cluster_diameter,
    cluster_diameters,
    cut_top_links,
)
from .thresholds import (
    median_threshold,
    percentile_threshold,
    select_above,
    select_below,
)
from .roc import (
    PERCENTILE_SWEEP,
    RocCurve,
    RocPoint,
    confusion_rates,
    roc_from_selections,
)
from .ecdf import ecdf, ecdf_at, quantile_series
from .bootstrap import ConfidenceInterval, bootstrap_mean_ci
from .dendro import (
    cophenetic_correlation,
    cophenetic_matrix,
    render_dendrogram,
)

__all__ = [
    "Histogram",
    "build_histogram",
    "freedman_diaconis_width",
    "emd",
    "emd_1d",
    "emd_transport",
    "pairwise_emd",
    "signature_arrays",
    "PAIRWISE_BACKENDS",
    "DEFAULT_CUT_FRACTION",
    "Dendrogram",
    "Merge",
    "average_linkage",
    "cluster_by_emd_cut",
    "cluster_diameter",
    "cluster_diameters",
    "cut_top_links",
    "median_threshold",
    "percentile_threshold",
    "select_above",
    "select_below",
    "PERCENTILE_SWEEP",
    "RocCurve",
    "RocPoint",
    "confusion_rates",
    "roc_from_selections",
    "ecdf",
    "ecdf_at",
    "quantile_series",
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "cophenetic_correlation",
    "cophenetic_matrix",
    "render_dendrogram",
]
