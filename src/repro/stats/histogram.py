"""Histogram density approximation with Freedman–Diaconis binning.

§IV-C of the paper approximates each host's interstitial-time distribution
with a histogram whose bin width follows Freedman & Diaconis [48]:

    b = 2 * IQR(v) * |v|^(-1/3)

chosen to minimise the mean-squared error between the histogram and the
true density.  Using a data-dependent bin width (rather than a fixed one)
is also an evasion-resistance argument in the paper: a Plotter cannot
easily predict how its traffic will be binned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Histogram", "freedman_diaconis_width", "build_histogram"]


def freedman_diaconis_width(samples: Sequence[float]) -> float:
    """The Freedman–Diaconis bin width ``2 * IQR * n^(-1/3)``.

    Falls back to a width that yields a single bin when the IQR is zero
    (e.g. perfectly regular machine timers, where more than half of the
    samples are identical) or when there are fewer than two samples.
    """
    data = np.asarray(samples, dtype=float)
    if data.size < 2:
        return 1.0
    q75, q25 = np.percentile(data, [75.0, 25.0])
    iqr = float(q75 - q25)
    if iqr <= 0.0:
        spread = float(data.max() - data.min())
        return spread if spread > 0.0 else 1.0
    return 2.0 * iqr * float(data.size) ** (-1.0 / 3.0)


@dataclass(frozen=True)
class Histogram:
    """A normalised histogram: bin centers plus unit-mass weights.

    The EMD comparison in §IV-C treats each host's histogram as a
    "signature" — a set of (position, weight) pairs — so the bin grids of
    two hosts need not align.
    """

    centers: Tuple[float, ...]
    weights: Tuple[float, ...]
    bin_width: float

    def __post_init__(self) -> None:
        if len(self.centers) != len(self.weights):
            raise ValueError("centers and weights must have equal length")
        if len(self.centers) == 0:
            raise ValueError("histogram must have at least one bin")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ValueError(f"weights must sum to 1, got {total}")
        if any(b > a for a, b in zip(self.centers[1:], self.centers)):
            raise ValueError("bin centers must be sorted ascending")

    @property
    def support(self) -> Tuple[float, float]:
        """Smallest and largest bin center."""
        return (self.centers[0], self.centers[-1])

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The signature as float64 ``(positions, weights)`` arrays.

        The conversion is cached on the instance: the distance engine
        reads every histogram O(n_hosts) times per clustering pass, and
        tuples-to-ndarray is pure overhead to repeat.  The arrays are
        shared — callers must not mutate them.
        """
        cached = self.__dict__.get("_arrays")
        if cached is None:
            cached = (
                np.asarray(self.centers, dtype=float),
                np.asarray(self.weights, dtype=float),
            )
            object.__setattr__(self, "_arrays", cached)
        return cached

    def mean(self) -> float:
        """Mean of the represented distribution."""
        return float(sum(c * w for c, w in zip(self.centers, self.weights)))

    def cdf_at(self, x: float) -> float:
        """Mass at bin centers ``<= x``."""
        total = 0.0
        for c, w in zip(self.centers, self.weights):
            if c <= x:
                total += w
            else:
                break
        return total


def build_histogram(samples: Sequence[float]) -> Histogram:
    """Build a Freedman–Diaconis histogram from raw samples.

    Empty bins are dropped (they carry no mass and would only slow the
    EMD computation).  Raises ``ValueError`` for an empty sample set —
    callers are expected to skip hosts with no interstitial samples.
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot build a histogram from zero samples")
    if data.size == 1 or float(data.max() - data.min()) == 0.0:
        return Histogram(
            centers=(float(data[0]),), weights=(1.0,), bin_width=1.0
        )

    width = freedman_diaconis_width(data)
    lo = float(data.min())
    hi = float(data.max())
    n_bins = max(1, int(math.ceil((hi - lo) / width)))
    # Guard against pathological widths producing an absurd bin count.
    n_bins = min(n_bins, max(1, int(data.size) * 4), 100_000)
    counts, edges = np.histogram(data, bins=n_bins, range=(lo, hi))
    centers_all = (edges[:-1] + edges[1:]) / 2.0
    mask = counts > 0
    weights = counts[mask].astype(float)
    weights /= weights.sum()
    # Re-normalise exactly to counter floating-point drift.
    weights[-1] += 1.0 - weights.sum()
    return Histogram(
        centers=tuple(float(c) for c in centers_all[mask]),
        weights=tuple(float(w) for w in weights),
        bin_width=float(edges[1] - edges[0]) if len(edges) > 1 else 1.0,
    )
