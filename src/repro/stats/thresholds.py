"""Dynamic (data-dependent) threshold helpers.

Every threshold in the paper — τ_vol, τ_churn, τ_hm, and the failed-
connection cutoff of the initial data reduction — is set *relative to the
current traffic*: a percentile (typically the median) of the metric over
all hosts under consideration.  §VI argues this is itself an evasion
obstacle, since a Plotter cannot observe the statistic it must beat.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, TypeVar

import numpy as np

__all__ = ["percentile_threshold", "median_threshold", "select_below", "select_above"]

K = TypeVar("K")


def percentile_threshold(values: Sequence[float], percentile: float) -> float:
    """The ``percentile``-th percentile of ``values`` (linear interpolation).

    Raises ``ValueError`` on an empty sequence — a threshold computed from
    no data would silently select everything or nothing.
    """
    if len(values) == 0:
        raise ValueError("cannot take a percentile of zero values")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    return float(np.percentile(np.asarray(values, dtype=float), percentile))


def median_threshold(values: Sequence[float]) -> float:
    """The median — the paper's default dynamic threshold."""
    return percentile_threshold(values, 50.0)


def select_below(metric: Dict[K, float], threshold: float) -> Set[K]:
    """Keys whose metric is strictly below ``threshold``.

    Used by θ_vol (avg flow size < τ_vol) and θ_churn
    (new-IP fraction < τ_churn).
    """
    return {k for k, v in metric.items() if v < threshold}


def select_above(metric: Dict[K, float], threshold: float) -> Set[K]:
    """Keys whose metric is strictly above ``threshold``.

    Used by the initial data reduction (failed-connection rate above the
    median ⇒ "possibly P2P").
    """
    return {k for k, v in metric.items() if v > threshold}
