"""Empirical CDF utilities for the paper's distribution figures.

Figures 1, 5 and 10 are cumulative-distribution plots over per-host
metrics; :func:`ecdf` produces the (x, F(x)) series those figures show.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ecdf", "ecdf_at", "quantile_series"]


def ecdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF of ``values`` as sorted (value, fraction<=) pairs.

    Duplicate values are collapsed to a single step.  Returns an empty
    list for empty input.
    """
    if len(values) == 0:
        return []
    data = np.sort(np.asarray(values, dtype=float))
    n = data.size
    xs: List[float] = []
    fs: List[float] = []
    for i, x in enumerate(data):
        if i + 1 < n and data[i + 1] == x:
            continue
        xs.append(float(x))
        fs.append((i + 1) / n)
    return list(zip(xs, fs))


def ecdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of ``values`` less than or equal to ``x``."""
    if len(values) == 0:
        raise ValueError("ECDF of an empty sample is undefined")
    data = np.asarray(values, dtype=float)
    return float(np.count_nonzero(data <= x) / data.size)


def quantile_series(
    values: Sequence[float], probs: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9)
) -> List[Tuple[float, float]]:
    """(probability, quantile) pairs — a compact CDF summary for reports."""
    if len(values) == 0:
        raise ValueError("quantiles of an empty sample are undefined")
    data = np.asarray(values, dtype=float)
    return [(float(p), float(np.quantile(data, p))) for p in probs]
