"""Earth Mover's Distance between histogram signatures.

§IV-C compares per-host interstitial-time histograms with the Earth
Mover's Distance (EMD) [49]: the minimum cost of transforming one
distribution into the other, where moving mass ``m`` over ground distance
``d`` costs ``m * d``.  The general formulation is a transportation
problem [50]; for one-dimensional signatures with ground distance
``|x - y|`` and equal total mass it has a closed form — the area between
the two CDFs.

Three per-pair solvers are provided:

* :func:`emd_1d` — the exact O(n log n) closed form used in production;
* :func:`emd_transport` — a scipy ``linprog`` transportation solve, kept
  as an independent oracle for the property tests.

θ_hm needs the full pairwise matrix over a host population, which is the
pipeline's hot path.  :func:`pairwise_emd` dispatches between backends:

* ``"loop"`` — the original per-pair Python loop, kept as the reference
  implementation;
* ``"vectorized"`` — pads all signatures into dense ``(n_hosts,
  max_bins)`` position/weight arrays and evaluates the merged-CDF
  integral for whole blocks of pairs with numpy array ops (no per-pair
  Python calls);
* ``"parallel"`` — the vectorized kernel fanned out over a
  ``multiprocessing`` pool in chunks of pairs, for host populations
  large enough to amortise worker startup;
* ``"pruned"`` — candidate-pruned: pairs whose exact EMD is derivable
  without the kernel (disjoint-support pairs, where 1-D EMD collapses
  to the difference of means) are filled from the closed form and only
  the surviving overlapping pairs go through the cache-blocked kernel
  (see :mod:`repro.stats.emdindex`; θ_hm additionally uses the index's
  certified group decomposition, which skips inter-group pairs
  entirely);
* ``"auto"`` (default) — escalates loop → vectorized → parallel →
  pruned by population size (see :func:`resolve_backend`).

All backends produce the exact distance — they integrate the same
merged CDF (or an algebraically equal closed form), differing only in
summation order (float dust at the 1e-15 scale); equivalence is pinned
by the test suite at ``atol=1e-12``.  ``exact=True`` is the escape
hatch that forbids the pruned engine (resolving it to the best
non-pruned backend) for correctness bisects.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..obs import metrics as obs_metrics
from .histogram import Histogram

__all__ = [
    "emd_1d",
    "emd_transport",
    "emd",
    "pairwise_emd",
    "resolve_backend",
    "signature_arrays",
    "PAIRWISE_BACKENDS",
    "VECTORIZED_MIN_HOSTS",
    "PARALLEL_MIN_HOSTS",
    "PRUNED_MIN_HOSTS",
]

#: Backends accepted by :func:`pairwise_emd`.
PAIRWISE_BACKENDS = ("auto", "loop", "vectorized", "parallel", "pruned")

#: ``"auto"`` escalation boundaries, in host counts.  Below
#: ``VECTORIZED_MIN_HOSTS`` the per-pair Python loop wins (dense
#: packing and scratch allocation outweigh a handful of pairs); from
#: ``PARALLEL_MIN_HOSTS`` a multi-core machine amortises pool startup
#: over the O(n²) work split; from ``PRUNED_MIN_HOSTS`` the
#: candidate-pruning index amortises its O(n·bins) build cost.
VECTORIZED_MIN_HOSTS = 4
PARALLEL_MIN_HOSTS = 1500
PRUNED_MIN_HOSTS = 4000

# Backwards-compatible private alias (pre-pruning releases named it so).
_PARALLEL_MIN_HOSTS = PARALLEL_MIN_HOSTS

#: Target float64 elements per vectorized block.  Chosen so one block's
#: working set (~6 arrays of this size) stays cache-resident: larger
#: blocks go memory-bound and were measured 3-4x slower at 500 hosts.
_BLOCK_ELEMENTS = 131_072

# Kernel telemetry (no-ops while repro.obs is disabled; the per-block
# timing additionally hoists the enabled check out of the hot loop so
# disabled-mode cost is one boolean per _condensed_blocks call).
# Metrics are process-local: under the parallel backend the workers'
# block counters stay in the workers — the parent records the coarse
# facts (backend, pair count) that matter for capacity planning.
_BACKEND_SELECTED = obs_metrics.counter(
    "repro_emd_backend_selected_total",
    "pairwise_emd invocations by resolved backend",
    labels=("backend",),
)
_PAIRS_TOTAL = obs_metrics.counter(
    "repro_emd_pairs_total",
    "Host pairs whose EMD was computed, by resolved backend",
    labels=("backend",),
)
_BLOCKS_TOTAL = obs_metrics.counter(
    "repro_emd_blocks_total", "Cache-sized kernel blocks evaluated"
)
_BLOCK_SECONDS = obs_metrics.histogram(
    "repro_emd_block_seconds",
    "Wall-clock time per merged-CDF kernel block",
    buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
             0.025, 0.05, 0.1, 0.25, 1.0),
)


def _as_signature(hist: Histogram) -> Tuple[np.ndarray, np.ndarray]:
    return hist.as_arrays()


def emd_1d(a: Histogram, b: Histogram) -> float:
    """Exact 1-D EMD with ground distance ``|x - y|``.

    Computed as the integral of the absolute difference between the two
    signatures' CDFs over the merged support — the standard closed form
    of the transportation problem on the line.
    """
    pos_a, w_a = _as_signature(a)
    pos_b, w_b = _as_signature(b)
    positions = np.concatenate([pos_a, pos_b])
    masses = np.concatenate([w_a, -w_b])
    order = np.argsort(positions, kind="mergesort")
    positions = positions[order]
    masses = masses[order]
    # Running signed mass after each point; cost accrues over each gap.
    cdf_diff = np.cumsum(masses)[:-1]
    gaps = np.diff(positions)
    return float(np.sum(np.abs(cdf_diff) * gaps))


def emd_transport(a: Histogram, b: Histogram) -> float:
    """EMD via an explicit transportation linear program (oracle).

    Minimise ``sum_ij c_ij f_ij`` subject to row sums equal to the source
    weights and column sums equal to the sink weights, ``f_ij >= 0``,
    with ``c_ij = |x_i - y_j|``.  Exponential in neither n nor m, but much
    slower than :func:`emd_1d`; used to cross-validate it in tests.
    """
    pos_a, w_a = _as_signature(a)
    pos_b, w_b = _as_signature(b)
    n, m = len(pos_a), len(pos_b)
    cost = np.abs(pos_a[:, None] - pos_b[None, :]).ravel()

    # Equality constraints: each source bin ships exactly its weight,
    # each sink bin receives exactly its weight.
    a_eq = np.zeros((n + m, n * m))
    for i in range(n):
        a_eq[i, i * m:(i + 1) * m] = 1.0
    for j in range(m):
        a_eq[n + j, j::m] = 1.0
    b_eq = np.concatenate([w_a, w_b])

    result = linprog(cost, A_eq=a_eq, b_eq=b_eq, method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"transportation LP failed: {result.message}")
    return float(result.fun)


def emd(a: Histogram, b: Histogram) -> float:
    """The production EMD between two histogram signatures."""
    return emd_1d(a, b)


# ----------------------------------------------------------------------
# Dense signature packing
# ----------------------------------------------------------------------
def signature_arrays(
    histograms: Sequence[Histogram],
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack signatures into dense ``(n_hosts, max_bins)`` arrays.

    Rows shorter than ``max_bins`` are padded with zero-weight bins
    placed at the row's own last center: zero mass leaves the merged CDF
    unchanged, and a position inside the row's support keeps every gap
    non-negative and finite, so padded rows integrate to exactly the
    same EMD as the ragged originals.
    """
    n = len(histograms)
    if n == 0:
        return np.zeros((0, 0)), np.zeros((0, 0))
    max_bins = max(len(h.centers) for h in histograms)
    positions = np.empty((n, max_bins), dtype=float)
    weights = np.zeros((n, max_bins), dtype=float)
    for i, hist in enumerate(histograms):
        k = len(hist.centers)
        positions[i, :k] = hist.centers
        positions[i, k:] = hist.centers[-1]
        weights[i, :k] = hist.weights
    return positions, weights


def _colmajor_pairs(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Upper-triangle pair indices ordered by column: (i<j, j) for j=1..n-1.

    With hosts pre-sorted by bin count this ordering keeps consecutive
    pairs at similar signature widths, so the width-adaptive blocks of
    :func:`_condensed_blocks` shed most of the dense padding.
    """
    cols = np.repeat(np.arange(n), np.arange(n))
    rows = np.concatenate([np.arange(j) for j in range(n)]) if n > 1 else (
        np.zeros(0, dtype=int)
    )
    return rows, cols


def _pairwise_loop(histograms: Sequence[Histogram]) -> np.ndarray:
    n = len(histograms)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            d = emd_1d(histograms[i], histograms[j])
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix


def _block_rows(max_bins: int) -> int:
    return max(16, _BLOCK_ELEMENTS // max(1, 2 * max_bins))


def _condensed_blocks(
    positions: np.ndarray,
    weights: np.ndarray,
    bins: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """Condensed distances for the given pair list, in adaptive blocks.

    Each block of pairs is evaluated with the merged-CDF closed form of
    :func:`emd_1d`, batched: one row per pair holding the concatenated
    signatures as complex numbers — position in the real part, signed
    mass (+a, -b) in the imaginary part — so a single in-place
    lexicographic sort merges every row's support, and the CDF integral
    is pure array arithmetic.  (Ties sort by mass instead of input
    order, but equal positions contribute over zero-length gaps, so only
    summation-order float dust can differ from the loop backend.)

    Blocks are truncated to the widest signature actually present on
    each side (``bins`` gives every row's real bin count), which only
    drops zero-weight padding — the integral is unchanged.  Works for
    any pair ordering; orderings that group similar widths (see
    :func:`_colmajor_pairs` over bin-sorted hosts) benefit most.  All
    scratch is preallocated once and reused across blocks: per-block
    heap churn at these sizes bounces on the allocator's mmap threshold
    and was measured ~40% slower.
    """
    n_pairs = len(rows)
    out = np.empty(n_pairs, dtype=float)
    if n_pairs == 0:
        return out
    max_width = 2 * int(bins.max())
    step = _block_rows(max_width // 2)
    merged_scratch = np.empty(step * max_width, dtype=complex)
    cdf_scratch = np.empty(step * max_width, dtype=float)
    gap_scratch = np.empty(step * max_width, dtype=float)
    instrumented = obs_metrics.is_enabled()
    for start in range(0, n_pairs, step):
        if instrumented:
            block_t0 = time.perf_counter()
        stop = min(start + step, n_pairs)
        i = rows[start:stop]
        j = cols[start:stop]
        w_i = int(bins[i].max())
        w_j = int(bins[j].max())
        width = w_i + w_j
        block = stop - start
        merged = merged_scratch[: block * width].reshape(block, width)
        merged.real[:, :w_i] = positions[i, :w_i]
        merged.real[:, w_i:] = positions[j, :w_j]
        merged.imag[:, :w_i] = weights[i, :w_i]
        np.negative(weights[j, :w_j], out=merged.imag[:, w_i:])
        merged.sort(axis=1)
        cdf = cdf_scratch[: block * (width - 1)].reshape(block, width - 1)
        np.cumsum(merged.imag[:, :-1], axis=1, out=cdf)
        np.abs(cdf, out=cdf)
        gaps = gap_scratch[: block * (width - 1)].reshape(block, width - 1)
        np.subtract(merged.real[:, 1:], merged.real[:, :-1], out=gaps)
        out[start:stop] = np.einsum("ij,ij->i", cdf, gaps)
        if instrumented:
            _BLOCKS_TOTAL.inc()
            _BLOCK_SECONDS.observe(time.perf_counter() - block_t0)
    return out


def _sorted_signatures(
    histograms: Sequence[Histogram],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dense signatures with hosts sorted by bin count.

    Returns ``(order, positions, weights, bins)`` where ``order`` maps
    sorted rows back to the caller's host indices.
    """
    bins = np.array([len(h.centers) for h in histograms], dtype=np.int64)
    order = np.argsort(bins, kind="stable")
    positions, weights = signature_arrays([histograms[k] for k in order])
    return order, positions, weights, bins[order]


def condensed_for_pairs(
    histograms: Sequence[Histogram],
    rows: np.ndarray,
    cols: np.ndarray,
) -> np.ndarray:
    """Exact EMDs for an explicit pair list, via the blocked kernel.

    The entry point the candidate-pruning index uses: after bounds
    analysis decides which pairs survive, only those ``(rows[k],
    cols[k])`` pairs are evaluated — with exactly the same merged-CDF
    kernel as the full backends.  Hosts are packed densely in caller
    order; orderings that keep consecutive pairs at similar signature
    widths get the best block truncation.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if len(rows) == 0:
        return np.zeros(0, dtype=float)
    positions, weights = signature_arrays(histograms)
    bins = np.array([len(h.centers) for h in histograms], dtype=np.int64)
    return _condensed_blocks(positions, weights, bins, rows, cols)


def _pairwise_vectorized(histograms: Sequence[Histogram]) -> np.ndarray:
    n = len(histograms)
    matrix = np.zeros((n, n), dtype=float)
    if n < 2:
        return matrix
    order, positions, weights, bins = _sorted_signatures(histograms)
    rows, cols = _colmajor_pairs(n)
    condensed = _condensed_blocks(positions, weights, bins, rows, cols)
    o_rows = order[rows]
    o_cols = order[cols]
    matrix[o_rows, o_cols] = condensed
    matrix[o_cols, o_rows] = condensed
    return matrix


# ----------------------------------------------------------------------
# Parallel backend
# ----------------------------------------------------------------------
# Workers receive the dense arrays once through the pool initializer
# (inherited for free under fork, pickled once per worker under spawn)
# instead of per task, so each chunk submission ships only two ints.
_WORKER_STATE: dict = {}


def _parallel_init(
    positions: np.ndarray, weights: np.ndarray, bins: np.ndarray, n: int
) -> None:
    _WORKER_STATE["positions"] = positions
    _WORKER_STATE["weights"] = weights
    _WORKER_STATE["bins"] = bins
    _WORKER_STATE["pairs"] = _colmajor_pairs(n)


def _parallel_chunk(bounds: Tuple[int, int]) -> np.ndarray:
    start, stop = bounds
    rows, cols = _WORKER_STATE["pairs"]
    return _condensed_blocks(
        _WORKER_STATE["positions"],
        _WORKER_STATE["weights"],
        _WORKER_STATE["bins"],
        rows[start:stop],
        cols[start:stop],
    )


def _pairwise_parallel(
    histograms: Sequence[Histogram],
    n_workers: Optional[int] = None,
) -> np.ndarray:
    n = len(histograms)
    matrix = np.zeros((n, n), dtype=float)
    if n < 2:
        return matrix
    workers = n_workers or os.cpu_count() or 1
    if workers <= 1:
        return _pairwise_vectorized(histograms)

    order, positions, weights, bins = _sorted_signatures(histograms)
    rows, cols = _colmajor_pairs(n)
    n_pairs = len(rows)
    # Several chunks per worker so an uneven pair distribution still
    # load-balances, but never smaller than one cache-sized block.
    step = max(
        _block_rows(positions.shape[1]), -(-n_pairs // (4 * workers))
    )
    chunks = [
        (start, min(start + step, n_pairs))
        for start in range(0, n_pairs, step)
    ]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_parallel_init,
        initargs=(positions, weights, bins, n),
    ) as pool:
        parts: List[np.ndarray] = list(pool.map(_parallel_chunk, chunks))
    condensed = np.concatenate(parts) if parts else np.zeros(0)
    o_rows = order[rows]
    o_cols = order[cols]
    matrix[o_rows, o_cols] = condensed
    matrix[o_cols, o_rows] = condensed
    return matrix


def resolve_backend(
    backend: str,
    n_hosts: int,
    cores: Optional[int] = None,
    exact: bool = False,
) -> str:
    """The concrete engine ``pairwise_emd`` will run for this request.

    Resolution is a pure function of the request — host count, core
    count, the ``exact`` escape hatch — so callers (``cluster_hosts``,
    the benchmarks, the boundary unit tests) can observe and pin the
    escalation instead of inferring it from counters.  ``"auto"``
    escalates loop → vectorized → parallel → pruned at
    ``VECTORIZED_MIN_HOSTS`` / ``PARALLEL_MIN_HOSTS`` /
    ``PRUNED_MIN_HOSTS``; parallel additionally needs more than one
    core.  ``exact=True`` forbids the pruned engine: an explicit or
    escalated ``"pruned"`` resolves to the best non-pruned backend for
    the same population instead.
    """
    if backend not in PAIRWISE_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {PAIRWISE_BACKENDS}"
        )
    if cores is None:
        cores = os.cpu_count() or 1
    if exact and backend == "pruned":
        backend = "auto"
    if backend != "auto":
        return backend
    if not exact and n_hosts >= PRUNED_MIN_HOSTS:
        return "pruned"
    if n_hosts >= PARALLEL_MIN_HOSTS and cores > 1:
        return "parallel"
    if n_hosts >= VECTORIZED_MIN_HOSTS:
        return "vectorized"
    return "loop"


def pairwise_emd(
    histograms: Sequence[Histogram],
    backend: str = "auto",
    n_workers: Optional[int] = None,
    exact: bool = False,
) -> np.ndarray:
    """Symmetric matrix of EMDs between all pairs of histograms.

    ``backend`` selects the engine (see module docstring): ``"loop"``
    is the per-pair reference, ``"vectorized"`` the batched merged-CDF
    kernel, ``"parallel"`` the multiprocessing fan-out, ``"pruned"``
    the candidate-pruned engine (closed-form fill for disjoint-support
    pairs, kernel for the rest), and ``"auto"`` escalates between them
    by population size (see :func:`resolve_backend`).  Every backend
    returns the exact matrix.  ``n_workers`` caps the pool for the
    parallel backend; ``exact=True`` forbids the pruned engine.
    """
    backend = resolve_backend(backend, len(histograms), exact=exact)
    n = len(histograms)
    _BACKEND_SELECTED.inc(backend=backend)
    _PAIRS_TOTAL.inc(n * (n - 1) // 2, backend=backend)
    if backend == "loop":
        return _pairwise_loop(histograms)
    if backend == "vectorized":
        return _pairwise_vectorized(histograms)
    if backend == "pruned":
        from .emdindex import pruned_matrix

        return pruned_matrix(histograms)
    return _pairwise_parallel(histograms, n_workers=n_workers)
