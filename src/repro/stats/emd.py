"""Earth Mover's Distance between histogram signatures.

§IV-C compares per-host interstitial-time histograms with the Earth
Mover's Distance (EMD) [49]: the minimum cost of transforming one
distribution into the other, where moving mass ``m`` over ground distance
``d`` costs ``m * d``.  The general formulation is a transportation
problem [50]; for one-dimensional signatures with ground distance
``|x - y|`` and equal total mass it has a closed form — the area between
the two CDFs.

Both solvers are provided:

* :func:`emd_1d` — the exact O(n log n) closed form used in production;
* :func:`emd_transport` — a scipy ``linprog`` transportation solve, kept
  as an independent oracle for the property tests.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from .histogram import Histogram

__all__ = ["emd_1d", "emd_transport", "emd"]


def _as_signature(hist: Histogram) -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.asarray(hist.centers, dtype=float),
        np.asarray(hist.weights, dtype=float),
    )


def emd_1d(a: Histogram, b: Histogram) -> float:
    """Exact 1-D EMD with ground distance ``|x - y|``.

    Computed as the integral of the absolute difference between the two
    signatures' CDFs over the merged support — the standard closed form
    of the transportation problem on the line.
    """
    pos_a, w_a = _as_signature(a)
    pos_b, w_b = _as_signature(b)
    positions = np.concatenate([pos_a, pos_b])
    masses = np.concatenate([w_a, -w_b])
    order = np.argsort(positions, kind="mergesort")
    positions = positions[order]
    masses = masses[order]
    # Running signed mass after each point; cost accrues over each gap.
    cdf_diff = np.cumsum(masses)[:-1]
    gaps = np.diff(positions)
    return float(np.sum(np.abs(cdf_diff) * gaps))


def emd_transport(a: Histogram, b: Histogram) -> float:
    """EMD via an explicit transportation linear program (oracle).

    Minimise ``sum_ij c_ij f_ij`` subject to row sums equal to the source
    weights and column sums equal to the sink weights, ``f_ij >= 0``,
    with ``c_ij = |x_i - y_j|``.  Exponential in neither n nor m, but much
    slower than :func:`emd_1d`; used to cross-validate it in tests.
    """
    pos_a, w_a = _as_signature(a)
    pos_b, w_b = _as_signature(b)
    n, m = len(pos_a), len(pos_b)
    cost = np.abs(pos_a[:, None] - pos_b[None, :]).ravel()

    # Equality constraints: each source bin ships exactly its weight,
    # each sink bin receives exactly its weight.
    a_eq = np.zeros((n + m, n * m))
    for i in range(n):
        a_eq[i, i * m:(i + 1) * m] = 1.0
    for j in range(m):
        a_eq[n + j, j::m] = 1.0
    b_eq = np.concatenate([w_a, w_b])

    result = linprog(cost, A_eq=a_eq, b_eq=b_eq, method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"transportation LP failed: {result.message}")
    return float(result.fun)


def emd(a: Histogram, b: Histogram) -> float:
    """The production EMD between two histogram signatures."""
    return emd_1d(a, b)


def pairwise_emd(histograms: Sequence[Histogram]) -> np.ndarray:
    """Symmetric matrix of EMDs between all pairs of histograms."""
    n = len(histograms)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            d = emd_1d(histograms[i], histograms[j])
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix


__all__.append("pairwise_emd")
